//! Watch the optimizer work: the same query planned naively and fully
//! optimized against a three-source federation, with EXPLAIN output
//! and measured virtual latencies side by side.
//!
//! ```sh
//! cargo run --release --example federation_explain
//! ```

use drugtree::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three assay sources (as if federating BindingDB + ChEMBL assays +
    // a lab database), each behind ~120 ms of simulated web latency.
    let bundle = SyntheticBundle::generate(
        &WorkloadSpec::default()
            .leaves(256)
            .ligands(48)
            .seed(5)
            .assay_sources(3),
    );

    let queries = [
        "activities in subtree('clade1')",
        "activities in subtree('clade1') where p_activity >= 6.5",
        "activities where p_activity >= 7.5 top 10 by p_activity desc",
        "aggregate count in tree",
    ];

    for text in queries {
        println!("=== {text}\n");
        let mut latencies = Vec::new();
        for (label, config) in [
            ("naive", OptimizerConfig::naive()),
            ("optimized", OptimizerConfig::full()),
        ] {
            let system = DrugTree::builder()
                .dataset(bundle.build_dataset())
                .optimizer(config)
                .with_matview()
                .build()?;
            println!("--- {label} plan:");
            println!("{}", system.explain(text)?);
            let result = system.query(text)?;
            println!(
                "--- {label} measured: {} rows, {:?} virtual latency, {} round-trips\n",
                result.rows.len(),
                result.metrics.virtual_cost,
                result.metrics.source_requests
            );
            latencies.push((label, result.metrics.virtual_cost));
        }
        if let [(_, naive), (_, optimized)] = latencies[..] {
            let speedup = naive.as_secs_f64() / optimized.as_secs_f64().max(1e-12);
            println!(">>> speedup: {speedup:.1}x\n");
        }
    }
    Ok(())
}
