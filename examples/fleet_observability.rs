//! Fleet observability end to end: a Zipf session fleet runs with a
//! [`FleetObserver`] installed (rolling SLO windows + slow-query log +
//! JSONL trace export), the export lands in a file, and `TopReport`
//! folds it back into the workload summary that `drugtree top
//! <export.jsonl>` prints.
//!
//! ```sh
//! cargo run --release --example fleet_observability
//! ```

use drugtree::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bundle =
        SyntheticBundle::generate(&WorkloadSpec::default().leaves(256).ligands(64).seed(1101));

    // A fleet of 16 Zipf-correlated sessions, each mixing browsing
    // gestures with explicit search-box queries.
    let mut workloads = zipf_sessions(
        &bundle.tree,
        &bundle.index,
        16,
        &GestureConfig {
            len: 48,
            seed: 1101,
            zipf_theta: 1.0,
            revisit_prob: 0.3,
        },
    );
    let pool = [
        "activities in tree where p_activity >= 6",
        "activities similar to 'CCO' >= 0.6",
        "activities in tree top 5 by p_activity",
        "aggregate max_p_activity in tree",
        "count per leaf in tree",
    ];
    for w in &mut workloads {
        let mut next = w.session;
        for (i, gesture) in w.script.iter_mut().enumerate() {
            if i % 4 == 3 {
                *gesture = Gesture::RunQuery(Box::new(Query::parse(pool[next % pool.len()])?));
                next += 1;
            }
        }
    }

    // Windows + slow log + file export, all on the virtual clock.
    let export_path = std::env::temp_dir().join("drugtree-fleet-export.jsonl");
    let sink = Arc::new(JsonlFileSink::create(&export_path)?);
    let observer = Arc::new(
        FleetObserver::with_windows(
            Duration::from_secs(2),
            16,
            SloPolicy::default().with_session_target(Duration::from_millis(100)),
        )
        .with_slowlog(8)
        .with_export(Arc::clone(&sink) as Arc<dyn Sink>),
    );

    // The serving API: a FleetBuilder over one shared executor, with
    // per-class deadlines and p95 hedging switched on. The per-class
    // shed/hedge/deadline rollup lands in the export as
    // `{"event":"serve"}` records, which `drugtree top` renders.
    let report = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .with_observer(Arc::clone(&observer) as Arc<dyn Observer>)
        .build()?
        .fleet()
        .with_sessions(workloads)
        .with_deadline_policy(DeadlinePolicy::uniform(Duration::from_millis(250)))
        .with_hedging(HedgePolicy {
            enabled: true,
            quantile: 0.95,
            warmup: 16,
        })
        .run()?;
    sink.flush()?;

    println!(
        "fleet done: {} gestures / {} sessions, virtual makespan {:?}",
        report.gestures,
        report.sessions,
        report.virtual_makespan()
    );
    println!("export: {}\n", export_path.display());

    // What `drugtree top <export.jsonl>` prints.
    let content = std::fs::read_to_string(&export_path)?;
    let top = TopReport::from_lines(content.lines());
    print!("{}", top.render());

    // The slow log keeps the worst plan shapes with dedup counts.
    if let Some(slowlog) = observer.slowlog() {
        println!("\nslow-query log (top entries):");
        for entry in slowlog.entries().iter().take(3) {
            println!(
                "  {:016x} x{:<4} {:>9} {}",
                entry.fingerprint,
                entry.count,
                format!("{:?}", entry.charged),
                entry.query
            );
        }
    }
    Ok(())
}
