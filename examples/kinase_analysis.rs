//! A drug-discovery scenario on hand-curated data: build the protein
//! tree *from sequences* (the full paper pipeline: fetch → align →
//! neighbor joining), overlay inhibitor assay data from two federated
//! sources, and ask the questions a medicinal chemist would.
//!
//! ```sh
//! cargo run --release --example kinase_analysis
//! ```

// Example over hand-curated literal data: a panic means a typo here.
#![allow(clippy::expect_used)]

use drugtree::prelude::*;
use drugtree_chem::affinity::{ActivityRecord, ActivityType};
use drugtree_sources::assay_db::assay_source;
use drugtree_sources::latency::LatencyModel;
use drugtree_sources::ligand_db::{ligand_source, LigandRecord};
use drugtree_sources::protein_db::{protein_source, ProteinRecord};
use drugtree_sources::source::SourceCapabilities;
use std::sync::Arc;

/// A toy kinase family: two subfamilies with distinct sequence motifs.
fn proteins() -> Vec<ProteinRecord> {
    let records = [
        // Subfamily A (serine/threonine-like motif block).
        ("KINA1", "MGSNKSKPKDASQRRRSLEPAENVHGAGGGAF"),
        ("KINA2", "MGSNKSKPKDASQRRRSLEPSENVHGAGGGAF"),
        ("KINA3", "MGSNKSKPKDPSQRRRSLEPAENVHGAGGAAF"),
        // Subfamily B (tyrosine-like motif block).
        ("KINB1", "MGLLSSKRQVSEKGKYWWFNEELLTTTHHPVQ"),
        ("KINB2", "MGLLSSKRQVSEKGKYWWFNEELLSTTHHPVQ"),
        ("KINB3", "MGLLSSKRQVTEKGKYWWFNEELLTTAHHPVQ"),
    ];
    records
        .iter()
        .map(|(acc, seq)| ProteinRecord {
            accession: acc.to_string(),
            name: format!("kinase {acc}"),
            organism: "Homo sapiens".into(),
            sequence: seq.to_string(),
            gene: Some(acc.to_string()),
        })
        .collect()
}

fn ligands() -> Vec<LigandRecord> {
    [
        ("STAU", "staurosporine-like", "Cn1cnc2c1c(=O)n(C)c(=O)n2C"),
        ("IMAT", "imatinib-like", "Cc1ccc(cc1)C(=O)Nc1ccccc1"),
        ("QUER", "quercetin-like", "Oc1ccc(cc1)c1oc2ccccc2c1O"),
        ("ETHA", "fragment", "CCO"),
    ]
    .iter()
    .map(|(id, name, smiles)| LigandRecord::from_smiles(*id, *name, *smiles).expect("valid SMILES"))
    .collect()
}

fn assays() -> (Vec<ActivityRecord>, Vec<ActivityRecord>) {
    let rec = |acc: &str, lig: &str, ty, nm: f64, src: &str, year| ActivityRecord {
        protein_accession: acc.into(),
        ligand_id: lig.into(),
        activity_type: ty,
        value_nm: nm,
        source: src.into(),
        year,
    };
    // Lab A: the staurosporine-like compound hits subfamily A hard.
    let lab_a = vec![
        rec("KINA1", "STAU", ActivityType::Ki, 2.0, "lab-a", 2011),
        rec("KINA2", "STAU", ActivityType::Ki, 5.0, "lab-a", 2011),
        rec("KINA3", "STAU", ActivityType::Ki, 12.0, "lab-a", 2012),
        rec("KINA1", "QUER", ActivityType::Ic50, 800.0, "lab-a", 2010),
        rec("KINB1", "STAU", ActivityType::Ki, 4000.0, "lab-a", 2012),
    ];
    // Lab B: the imatinib-like compound is subfamily-B selective.
    let lab_b = vec![
        rec("KINB1", "IMAT", ActivityType::Ic50, 25.0, "lab-b", 2013),
        rec("KINB2", "IMAT", ActivityType::Ic50, 40.0, "lab-b", 2013),
        rec("KINB3", "IMAT", ActivityType::Ic50, 90.0, "lab-b", 2012),
        rec("KINA1", "IMAT", ActivityType::Ic50, 9000.0, "lab-b", 2013),
        rec("KINB2", "ETHA", ActivityType::Kd, 500000.0, "lab-b", 2009),
    ];
    (lab_a, lab_b)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let caps = SourceCapabilities::full();
    let (lab_a, lab_b) = assays();
    let system = DrugTree::builder()
        .register_source(Arc::new(protein_source(
            "uniprot-sim",
            &proteins(),
            caps,
            LatencyModel::intranet(1),
        )?))
        .register_source(Arc::new(ligand_source(
            "chembl-sim",
            &ligands(),
            caps,
            LatencyModel::intranet(2),
        )?))
        .register_source(Arc::new(assay_source(
            "lab-a",
            &lab_a,
            caps,
            LatencyModel::web_api(3),
        )?))
        .register_source(Arc::new(assay_source(
            "lab-b",
            &lab_b,
            caps,
            LatencyModel::web_api(4),
        )?))
        .build()?;

    println!("{}\n", system.report());
    println!("tree (from sequence alignment + neighbor joining):");
    println!("  {}\n", to_newick(&system.dataset().tree));

    // Did sequence clustering recover the two subfamilies?
    let d = system.dataset();
    let ranks: Vec<(u32, &str)> = (0..d.leaf_count() as u32)
        .filter_map(|r| d.accession_of_rank(r).map(|a| (r, a)))
        .collect();
    println!("leaf order: {ranks:?}\n");

    // Q1: the most potent inhibitors anywhere in the family.
    let best = system.query("activities top 3 by p_activity desc")?;
    println!("Q1 three most potent measurements:");
    for row in &best.rows {
        println!(
            "  {} vs {}: {} {} nM (pActivity {:.2})",
            row[1],
            row[2],
            row[3],
            row[4],
            row[5].as_f64().unwrap_or(0.0)
        );
    }

    // Q2: potent, drug-like hits only (ligand join filters on MW).
    let hits = system.query("activities where p_activity >= 7 and mw < 500")?;
    println!("\nQ2 potent drug-like hits: {} rows", hits.rows.len());

    // Q3: per-subfamily aggregate — what a collapsed tree displays.
    let agg = system.query("aggregate max_p_activity in tree")?;
    println!("\nQ3 per-clade best potency:");
    for row in &agg.rows {
        println!("  clade {}: {}", row[0], row[3]);
    }

    // Q4: chemotype search — anything similar to the imatinib scaffold?
    let sim = system.query("activities similar to 'IMAT' >= 0.5")?;
    println!(
        "\nQ4 imatinib-like chemotype activity records: {}",
        sim.rows.len()
    );

    // Show the federation at work: both labs were consulted once, then
    // the cache takes over.
    let before = system.report().cache;
    system.query("activities where p_activity >= 7 and mw < 500")?;
    let after = system.report().cache;
    println!(
        "\ncache: hits {} -> {} (drill-downs and repeats are free)",
        before.hits, after.hits
    );
    Ok(())
}
