//! Quickstart: stand up a synthetic DrugTree deployment and query it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use drugtree::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a synthetic deployment: a 128-leaf protein family,
    //    32 ligands, clade-correlated assay records behind a simulated
    //    web-API latency source.
    let bundle =
        SyntheticBundle::generate(&WorkloadSpec::default().leaves(128).ligands(32).seed(7));
    println!(
        "generated: {} proteins, {} ligands, {} activity records",
        bundle.proteins.len(),
        bundle.ligands.len(),
        bundle.activities.len()
    );

    // 2. Assemble the system with the full optimizer.
    let system = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .build()?;
    println!("\n{}\n", system.report());

    // 3. Text queries.
    for text in [
        "activities in subtree('clade1') where p_activity >= 6.5",
        "activities where p_activity >= 7 top 5 by p_activity desc",
        "aggregate count in tree",
        "count per leaf in subtree('clade2')",
    ] {
        let result = system.query(text)?;
        println!(
            "{text}\n  -> {} rows, {:?} virtual latency, {} source round-trips, cache_hit={:?}",
            result.rows.len(),
            result.metrics.virtual_cost,
            result.metrics.source_requests,
            result.metrics.cache_hit,
        );
    }

    // 4. The same subtree again: the semantic cache answers instantly.
    let again = system.query("activities in subtree('clade1') where p_activity >= 6.5")?;
    println!(
        "\nrepeat query: cache_hit={:?}, virtual latency {:?}",
        again.metrics.cache_hit, again.metrics.virtual_cost
    );

    // 5. EXPLAIN shows what the optimizer did.
    println!(
        "\nEXPLAIN:\n{}",
        system.explain("activities in subtree('clade1') where p_activity >= 6.5")?
    );

    Ok(())
}
