//! The self-driving layer end to end: an [`AdaptiveRuntime`] watches
//! one deployment, auto-materializes the hot aggregate past its
//! break-even, learns cardinalities from executed plans (EXPLAIN flips
//! from `nominal` to `learned`), lets a mobile session classify its
//! own gesture pattern and switch prefetch policy — and exports every
//! decision as `{"event":"adapt"}` JSONL records that
//! `drugtree advisor <export.jsonl>` renders.
//!
//! ```sh
//! cargo run --release --example self_driving
//! ```

use drugtree::prelude::*;
use drugtree_mobile::gestures::lateral_script;
use drugtree_mobile::prefetch::Prefetcher;
use drugtree_query::parser::parse_query;
use drugtree_query::{AdaptiveConfig, AdaptiveRuntime};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bundle =
        SyntheticBundle::generate(&WorkloadSpec::default().leaves(128).ligands(32).seed(2201));

    // Every adaptation decision lands in this JSONL export.
    let export_path = std::env::temp_dir().join("drugtree-adapt-export.jsonl");
    let sink = Arc::new(JsonlFileSink::create(&export_path)?);
    let runtime = Arc::new(
        AdaptiveRuntime::new(AdaptiveConfig::default())
            .with_export(Arc::clone(&sink) as Arc<dyn Sink>),
    );

    let system = DrugTree::builder()
        .dataset(bundle.build_dataset())
        .optimizer(OptimizerConfig::full())
        .with_adaptive(Arc::clone(&runtime))
        .build()?;

    // Loop 1 — auto-materialization: a refreshing dashboard re-runs a
    // whole-tree aggregate; the advisor accumulates the foregone cost,
    // builds the view when it crosses break-even, and later refreshes
    // are served from it.
    let aggregate = parse_query("aggregate count in tree")?;
    for _ in 0..24 {
        system.executor().invalidate();
        system.execute(&aggregate)?;
        if runtime.snapshot().view_built {
            break;
        }
    }
    for _ in 0..3 {
        system.executor().invalidate();
        system.execute(&aggregate)?;
    }

    // Loop 2 — learned statistics: two sightings give an affinity
    // filter's control point servable coverage, so the third plan
    // estimates from measured data instead of the nominal histograms.
    let filter = "activities in tree where p_activity >= 6.5";
    for _ in 0..2 {
        system.executor().invalidate();
        system.query(filter)?;
    }
    let explain = system.explain(filter)?;
    for line in explain.lines().filter(|l| l.contains("selectivity-source")) {
        println!("EXPLAIN: {}", line.trim());
    }

    // Loop 3 — adaptive prefetch: a sideways-browsing session
    // classifies itself as lateral and switches prefetch on (a
    // drill-down session would leave it off).
    let mut session = system.mobile_session(NetworkProfile::CELL_4G);
    session.set_session_id(7);
    session.enable_adaptive_prefetch(Prefetcher {
        fan_out: 2,
        ..Prefetcher::default()
    });
    let script = lateral_script(
        &bundle.tree,
        &bundle.index,
        &GestureConfig {
            len: 40,
            seed: 7,
            zipf_theta: 0.0,
            revisit_prob: 0.0,
        },
    );
    for g in &script {
        session.apply(g)?;
    }
    drop(session);
    sink.flush()?;

    let snapshot = runtime.snapshot();
    println!(
        "auto-built view: {} ({} hits), learned control points: {}, prefetch switches: {}\n",
        snapshot.view_built,
        snapshot.advisor.hits,
        snapshot.learned.points,
        snapshot.prefetch_switches,
    );

    // What `drugtree advisor <export.jsonl>` prints.
    let content = std::fs::read_to_string(&export_path)?;
    print!("{}", AdvisorReport::from_lines(content.lines()).render());
    Ok(())
}
