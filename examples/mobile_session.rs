//! Simulate interactive mobile browsing sessions across network
//! profiles — the experience the paper's "lags" complaint is about.
//!
//! ```sh
//! cargo run --release --example mobile_session
//! ```

use drugtree::prelude::*;
use std::time::Duration;

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bundle =
        SyntheticBundle::generate(&WorkloadSpec::default().leaves(512).ligands(64).seed(21));
    let script_cfg = GestureConfig {
        len: 120,
        seed: 3,
        zipf_theta: 1.0,
        revisit_prob: 0.35,
    };
    let script = drill_down_script(&bundle.tree, &bundle.index, &script_cfg);

    println!(
        "{} leaves, {} activity records, {}-gesture script\n",
        bundle.spec.leaves,
        bundle.activities.len(),
        script.len()
    );
    println!(
        "{:<6} {:>6} {:>12} {:>12} {:>12} {:>10}",
        "net", "qrs", "p50 first", "p95 first", "p95 full", "hit-rate"
    );

    for profile in NetworkProfile::ALL {
        // Fresh system per profile so caches start cold.
        let system = DrugTree::builder()
            .dataset(bundle.build_dataset())
            .optimizer(OptimizerConfig::full())
            .build()?;
        let mut session = system.mobile_session(profile);

        let mut first: Vec<Duration> = Vec::new();
        let mut full: Vec<Duration> = Vec::new();
        let mut hits = 0usize;
        let mut queries = 0usize;
        for gesture in &script {
            let r = session.apply(gesture)?;
            first.push(r.first_usable);
            full.push(r.complete);
            if let Some(hit) = r.cache_hit {
                queries += 1;
                hits += usize::from(hit);
            }
        }
        first.sort();
        full.sort();
        println!(
            "{:<6} {:>6} {:>12?} {:>12?} {:>12?} {:>9.0}%",
            profile.name,
            queries,
            percentile(&first, 0.5),
            percentile(&first, 0.95),
            percentile(&full, 0.95),
            100.0 * hits as f64 / queries.max(1) as f64,
        );
    }

    // Progressive vs blocking delivery on the slowest link.
    println!("\nblocking vs progressive on EDGE:");
    for progressive in [false, true] {
        let system = DrugTree::builder()
            .dataset(bundle.build_dataset())
            .optimizer(OptimizerConfig::full())
            .build()?;
        let mut session = system.mobile_session(NetworkProfile::EDGE);
        session.set_progressive(progressive);
        let mut first = Vec::new();
        for gesture in &script {
            first.push(session.apply(gesture)?.first_usable);
        }
        first.sort();
        println!(
            "  progressive={progressive}: p50 first-usable {:?}, p95 {:?}",
            percentile(&first, 0.5),
            percentile(&first, 0.95)
        );
    }
    Ok(())
}
