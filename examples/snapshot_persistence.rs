//! Snapshot persistence: integrate once, reload instantly.
//!
//! The from-sources pipeline costs real round-trips (fetch proteins,
//! align, build the tree, fetch ligands). A deployment runs it once,
//! snapshots the integrated local state to disk, and later sessions
//! restore in milliseconds — re-attaching only the live assay sources.
//!
//! ```sh
//! cargo run --release --example snapshot_persistence
//! ```

use drugtree::prelude::*;
use drugtree::{load_system, save_system};
use drugtree_sources::clock::VirtualClock;
use drugtree_sources::federation::SourceRegistry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bundle =
        SyntheticBundle::generate(&WorkloadSpec::default().leaves(256).ligands(48).seed(33));

    // --- Session 1: the full from-sources pipeline (fetch proteins +
    // ligands, align, neighbor-join), then snapshot. ---
    let sources = bundle.build_dataset().registry.clone();
    let mut builder = DrugTree::builder();
    for source in sources.all() {
        builder = builder.register_source(source.clone());
    }
    let started = drugtree_sources::clock::wall_now();
    let system1 = builder.build()?;
    let integration_wall = started.elapsed();
    let dataset = system1.dataset();
    let integration_virtual = dataset.clock.now();
    let json = save_system(dataset)?;
    let path = std::env::temp_dir().join("drugtree_snapshot.json");
    std::fs::write(&path, &json)?;
    println!(
        "session 1: integrated {} leaves / {} ligands in {integration_wall:?} wall \
         ({integration_virtual} virtual source latency); snapshot = {} KiB at {}",
        dataset.leaf_count(),
        bundle.ligands.len(),
        json.len() / 1024,
        path.display()
    );
    drop(system1);

    // --- Session 2: restore from disk, attach live sources, query. ---
    let restored_json = std::fs::read_to_string(&path)?;
    // A fresh registry stands in for re-connecting to the live services.
    let registry: SourceRegistry = bundle.build_dataset().registry.clone();
    let started = drugtree_sources::clock::wall_now();
    let dataset = load_system(&restored_json, registry, VirtualClock::new())?;
    let restore_wall = started.elapsed();

    let system = DrugTree::builder()
        .dataset(dataset)
        .optimizer(OptimizerConfig::full())
        .build()?;
    println!(
        "session 2: restored in {restore_wall:?} wall time — no alignment pass, \
         no protein/ligand round-trips"
    );

    let r = system.query("activities where p_activity >= 7 top 5 by p_activity desc")?;
    println!(
        "query over restored system: {} rows, {:?} virtual latency",
        r.rows.len(),
        r.metrics.virtual_cost
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
