//! Offline stand-in for `criterion`: runs each benchmark closure a
//! small fixed number of iterations and prints a rough mean time.
//! No statistics, warm-up, or reports — just enough to compile and
//! smoke-run the workspace benches offline.

use std::time::Instant;

pub use std::hint::black_box;

const ITERS: u32 = 25;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { total_nanos: 0, iters: 0 };
        f(&mut b);
        let mean = if b.iters == 0 { 0 } else { b.total_nanos / u128::from(b.iters) };
        println!("bench {id:<50} ~{mean} ns/iter ({} iters)", b.iters);
        self
    }
}

#[derive(Debug)]
pub struct Bencher {
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..ITERS {
            let start = Instant::now();
            black_box(f());
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
