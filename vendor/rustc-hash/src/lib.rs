//! Offline stand-in for `rustc-hash`: a fast, non-cryptographic
//! hasher with the same public type names (`FxHashMap`, `FxHashSet`,
//! `FxHasher`, `FxBuildHasher`).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-and-rotate hasher in the spirit of the real FxHasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}
