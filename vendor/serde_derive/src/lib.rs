//! Offline stand-in for `serde_derive`: generates impls of the
//! stand-in `serde::Serialize` / `serde::Deserialize` traits (a
//! `Content`-tree model) for plain structs and enums.
//!
//! Supported shape: non-generic structs (named, tuple, unit) and
//! enums (unit, tuple, struct variants) — exactly what this workspace
//! derives. The only `#[serde(...)]` attribute supported is
//! `#[serde(default)]` on a named struct field (a missing key
//! deserializes as `Default::default()`). Anything fancier fails
//! loudly at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

enum Body {
    UnitStruct,
    TupleStruct(usize),
    NamedStruct(Vec<Field>),
    Enum(Vec<Variant>),
}

/// A named field: its identifier and whether `#[serde(default)]` was
/// attached.
struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                match toks.get(*i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        has_default |= serde_default_attr(g.stream());
                        *i += 1;
                    }
                    _ => panic!("serde stand-in derive: malformed attribute"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    has_default
}

/// `true` for the attribute body `serde(default)`; panics on any other
/// `serde(...)` form; `false` for non-serde attributes (docs, lints).
fn serde_default_attr(stream: TokenStream) -> bool {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => match toks.get(1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                match inner.first() {
                    Some(TokenTree::Ident(id)) if inner.len() == 1 && id.to_string() == "default" => {
                        true
                    }
                    _ => panic!(
                        "serde stand-in derive: only #[serde(default)] is supported, found #[serde({})]",
                        g.stream()
                    ),
                }
            }
            _ => panic!("serde stand-in derive: malformed #[serde] attribute"),
        },
        _ => false,
    }
}

fn ident_at(toks: &[TokenTree], i: usize, what: &str) -> String {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stand-in derive: expected {what}, found {other:?}"),
    }
}

/// Skips tokens until a comma at angle-bracket depth zero, consuming
/// the comma. Used to skip a field type or an enum discriminant.
fn skip_to_top_level_comma(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < toks.len() {
        if let TokenTree::Punct(p) = &toks[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let default = skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i, "field name");
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde stand-in derive: expected `:` after field `{name}`, found {other:?}"),
        }
        skip_to_top_level_comma(&toks, &mut i);
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut in_segment = false;
    for t in &toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if in_segment {
                        count += 1;
                    }
                    in_segment = false;
                    continue;
                }
                _ => {}
            }
        }
        in_segment = true;
    }
    if in_segment {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i, "variant name");
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant, then the trailing comma.
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                i += 1;
                skip_to_top_level_comma(&toks, &mut i);
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!("serde stand-in derive: unexpected token after variant `{name}`: {other:?}"),
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> (String, Body) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = ident_at(&toks, i, "`struct` or `enum`");
    i += 1;
    let name = ident_at(&toks, i, "item name");
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde stand-in derive: generics are not supported (on `{name}`)");
        }
    }
    let body = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("serde stand-in derive: unexpected struct body: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde stand-in derive: unexpected enum body: {other:?}"),
        },
        other => panic!("serde stand-in derive: expected struct or enum, found `{other}`"),
    };
    (name, body)
}

/// Which accessor the generated Deserialize impl uses for a field.
fn deser_getter(f: &Field) -> &'static str {
    if f.default {
        "field_or_default"
    } else {
        "field"
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    let mut out = String::new();
    let _ = write!(
        out,
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize_content(&self) -> ::serde::Content {{\n"
    );
    match &body {
        Body::UnitStruct => out.push_str("::serde::Content::Null\n"),
        Body::TupleStruct(1) => {
            out.push_str("::serde::Serialize::serialize_content(&self.0)\n");
        }
        Body::TupleStruct(n) => {
            out.push_str("::serde::Content::Seq(::std::vec![\n");
            for k in 0..*n {
                let _ = write!(out, "::serde::Serialize::serialize_content(&self.{k}),\n");
            }
            out.push_str("])\n");
        }
        Body::NamedStruct(fields) => {
            out.push_str("::serde::Content::Map(::std::vec![\n");
            for f in fields {
                let f = &f.name;
                let _ = write!(
                    out,
                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize_content(&self.{f})),\n"
                );
            }
            out.push_str("])\n");
        }
        Body::Enum(variants) => {
            out.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        let _ = write!(
                            out,
                            "{name}::{vn} => ::serde::Content::Str(::std::string::String::from(\"{vn}\")),\n"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|k| format!("_f{k}")).collect();
                        let _ = write!(out, "{name}::{vn}({}) => ", binders.join(", "));
                        if *n == 1 {
                            let _ = write!(
                                out,
                                "::serde::Content::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::serialize_content(_f0))]),\n"
                            );
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_content({b})"))
                                .collect();
                            let _ = write!(
                                out,
                                "::serde::Content::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Content::Seq(::std::vec![{}]))]),\n",
                                items.join(", ")
                            );
                        }
                    }
                    VariantKind::Named(fields) => {
                        let names: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let _ = write!(out, "{name}::{vn} {{ {} }} => ", names.join(", "));
                        let items: Vec<String> = names
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize_content({f}))"
                                )
                            })
                            .collect();
                        let _ = write!(
                            out,
                            "::serde::Content::Map(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Content::Map(::std::vec![{}]))]),\n",
                            items.join(", ")
                        );
                    }
                }
            }
            out.push_str("}\n");
        }
    }
    out.push_str("}\n}\n");
    out.parse().expect("serde stand-in derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, body) = parse_item(input);
    let mut out = String::new();
    let _ = write!(
        out,
        "impl ::serde::Deserialize for {name} {{\n\
         fn deserialize_content(_c: &::serde::Content) -> ::std::result::Result<Self, ::std::string::String> {{\n"
    );
    match &body {
        Body::UnitStruct => {
            let _ = write!(out, "Ok({name})\n");
        }
        Body::TupleStruct(1) => {
            let _ = write!(out, "Ok({name}(::serde::Deserialize::deserialize_content(_c)?))\n");
        }
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize_content(&_s[{k}usize])?"))
                .collect();
            let _ = write!(
                out,
                "match _c {{\n\
                 ::serde::Content::Seq(_s) if _s.len() == {n}usize => Ok({name}({})),\n\
                 _ => Err(::std::string::String::from(\"expected {n}-tuple for {name}\")),\n\
                 }}\n",
                items.join(", ")
            );
        }
        Body::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    let (n, getter) = (&f.name, deser_getter(f));
                    format!("{n}: ::serde::{getter}(_m, \"{n}\")?")
                })
                .collect();
            let _ = write!(
                out,
                "match _c {{\n\
                 ::serde::Content::Map(_m) => Ok({name} {{ {} }}),\n\
                 _ => Err(::std::string::String::from(\"expected map for {name}\")),\n\
                 }}\n",
                items.join(", ")
            );
        }
        Body::Enum(variants) => {
            out.push_str("match _c {\n::serde::Content::Str(_s) => match _s.as_str() {\n");
            for v in variants {
                if matches!(v.kind, VariantKind::Unit) {
                    let vn = &v.name;
                    let _ = write!(out, "\"{vn}\" => Ok({name}::{vn}),\n");
                }
            }
            let _ = write!(
                out,
                "_ => Err(::std::format!(\"unknown unit variant `{{}}` for {name}\", _s)),\n}},\n"
            );
            out.push_str(
                "::serde::Content::Map(_m) if _m.len() == 1 => {\nlet (_k, _v) = &_m[0];\nmatch _k.as_str() {\n",
            );
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {}
                    VariantKind::Tuple(1) => {
                        let _ = write!(
                            out,
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::deserialize_content(_v)?)),\n"
                        );
                    }
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::deserialize_content(&_s[{k}usize])?"))
                            .collect();
                        let _ = write!(
                            out,
                            "\"{vn}\" => match _v {{\n\
                             ::serde::Content::Seq(_s) if _s.len() == {n}usize => Ok({name}::{vn}({})),\n\
                             _ => Err(::std::string::String::from(\"bad payload for {name}::{vn}\")),\n\
                             }},\n",
                            items.join(", ")
                        );
                    }
                    VariantKind::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                let (n, getter) = (&f.name, deser_getter(f));
                                format!("{n}: ::serde::{getter}(_vm, \"{n}\")?")
                            })
                            .collect();
                        let _ = write!(
                            out,
                            "\"{vn}\" => match _v {{\n\
                             ::serde::Content::Map(_vm) => Ok({name}::{vn} {{ {} }}),\n\
                             _ => Err(::std::string::String::from(\"bad payload for {name}::{vn}\")),\n\
                             }},\n",
                            items.join(", ")
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "_ => Err(::std::format!(\"unknown variant `{{}}` for {name}\", _k)),\n\
                 }}\n}}\n\
                 _ => Err(::std::string::String::from(\"expected variant for {name}\")),\n\
                 }}\n"
            );
        }
    }
    out.push_str("}\n}\n");
    out.parse().expect("serde stand-in derive: generated invalid Deserialize impl")
}
