//! `Option` strategies.

use crate::strategy::{NewTree, Single, Strategy};
use crate::test_runner::TestRunner;

#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_tree(&self, runner: &mut TestRunner) -> NewTree<Option<S::Value>> {
        if runner.next_u64() & 1 == 0 {
            Ok(Single(None))
        } else {
            Ok(Single(Some(self.inner.new_tree(runner)?.0)))
        }
    }
}

pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
