//! Strategy combinators: generation only, no shrinking. `new_tree`
//! produces a [`Single`] value tree whose `current()` clones the
//! generated value.

use crate::string::generate_from_pattern;
use crate::test_runner::TestRunner;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

pub trait ValueTree {
    type Value;
    fn current(&self) -> Self::Value;
}

/// The only value-tree shape this stand-in produces.
#[derive(Debug, Clone)]
pub struct Single<T>(pub T);

impl<T: Clone> ValueTree for Single<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.clone()
    }
}

pub type NewTree<T> = Result<Single<T>, String>;

pub trait Strategy {
    type Value;

    fn new_tree(&self, runner: &mut TestRunner) -> NewTree<Self::Value>;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Builds `depth` recursion layers over `self` as the leaf
    /// strategy; the size/branch hints are accepted for API parity
    /// and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut strat = base.clone();
        for _ in 0..depth {
            let layer = recurse(strat).boxed();
            strat = Union::new(vec![(1, base.clone()), (2, layer)]).boxed();
        }
        strat
    }
}

pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_tree(&self, runner: &mut TestRunner) -> NewTree<T> {
        self.0.new_tree(runner)
    }
}

#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_tree(&self, _runner: &mut TestRunner) -> NewTree<T> {
        Ok(Single(self.0.clone()))
    }
}

#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_tree(&self, runner: &mut TestRunner) -> NewTree<U> {
        let v = self.source.new_tree(runner)?.0;
        Ok(Single((self.f)(v)))
    }
}

/// Weighted choice between boxed strategies of a common value type.
pub struct Union<T> {
    choices: Vec<(u32, BoxedStrategy<T>)>,
}

impl<T> Union<T> {
    pub fn new(choices: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one choice");
        assert!(choices.iter().any(|(w, _)| *w > 0), "prop_oneof! needs a positive weight");
        Self { choices }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self { choices: self.choices.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_tree(&self, runner: &mut TestRunner) -> NewTree<T> {
        let total: u64 = self.choices.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = runner.next_u64() % total;
        for (w, s) in &self.choices {
            let w = u64::from(*w);
            if pick < w {
                return s.new_tree(runner);
            }
            pick -= w;
        }
        self.choices[self.choices.len() - 1].1.new_tree(runner)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_tree(&self, runner: &mut TestRunner) -> NewTree<$t> {
                if self.start >= self.end {
                    return Err(format!("empty range strategy {:?}", self));
                }
                Ok(Single(runner.int_in(self.start as i128, self.end as i128 - 1) as $t))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_tree(&self, runner: &mut TestRunner) -> NewTree<$t> {
                if self.start() > self.end() {
                    return Err(format!("empty range strategy {:?}", self));
                }
                Ok(Single(runner.int_in(*self.start() as i128, *self.end() as i128) as $t))
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_tree(&self, runner: &mut TestRunner) -> NewTree<$t> {
                if !(self.start < self.end) {
                    return Err(format!("empty range strategy {:?}", self));
                }
                let u = runner.unit_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                Ok(Single(if v < self.end { v } else { self.start }))
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_tree(&self, runner: &mut TestRunner) -> NewTree<$t> {
                if !(self.start() <= self.end()) {
                    return Err(format!("empty range strategy {:?}", self));
                }
                let u = runner.unit_f64() as $t;
                Ok(Single(self.start() + u * (self.end() - self.start())))
            }
        }
    )*};
}

float_strategy!(f32, f64);

/// String strategies from a regex-like pattern (see `crate::string`
/// for the supported subset).
impl Strategy for &'static str {
    type Value = String;

    fn new_tree(&self, runner: &mut TestRunner) -> NewTree<String> {
        generate_from_pattern(self, runner).map(Single)
    }
}

impl Strategy for String {
    type Value = String;

    fn new_tree(&self, runner: &mut TestRunner) -> NewTree<String> {
        generate_from_pattern(self, runner).map(Single)
    }
}

macro_rules! tuple_strategy {
    ($(($($t:ident $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);

            fn new_tree(&self, runner: &mut TestRunner) -> NewTree<Self::Value> {
                Ok(Single(($(self.$idx.new_tree(runner)?.0,)+)))
            }
        }
    )+};
}

tuple_strategy!(
    (A 0),
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5),
);
