//! Deterministic test runner: a seeded xorshift64* stream drives all
//! strategies. No shrinking — a failing case reports its index and
//! message.

#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest runs 256; 64 keeps offline suites quick while
        // still exercising the strategies.
        Self { cases: 64 }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    Fail(String),
    Reject,
}

pub type TestCaseResult = Result<(), TestCaseError>;

#[derive(Debug, Clone)]
pub struct TestRunner {
    state: u64,
}

impl TestRunner {
    pub fn new(_config: ProptestConfig) -> Self {
        Self::deterministic()
    }

    pub fn deterministic() -> Self {
        Self { state: 0x9E37_79B9_7F4A_7C15 }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi]` (inclusive); `lo <= hi` required.
    pub(crate) fn int_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + (u128::from(self.next_u64()) % span) as i128
    }
}
