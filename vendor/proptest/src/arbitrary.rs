//! `any::<T>()` strategies for primitive types.

use crate::strategy::{NewTree, Single, Strategy};
use crate::test_runner::TestRunner;
use std::marker::PhantomData;

pub trait Arbitrary: Sized {
    fn generate(runner: &mut TestRunner) -> Self;
}

impl Arbitrary for bool {
    fn generate(runner: &mut TestRunner) -> Self {
        runner.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn generate(runner: &mut TestRunner) -> Self {
                runner.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn generate(runner: &mut TestRunner) -> Self {
        runner.unit_f64()
    }
}

impl Arbitrary for char {
    fn generate(runner: &mut TestRunner) -> Self {
        char::from_u32(0x20 + (runner.next_u64() % 95) as u32).unwrap_or(' ')
    }
}

pub struct AnyStrategy<T>(PhantomData<T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        Self(PhantomData)
    }
}

impl<T: Arbitrary + Clone> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_tree(&self, runner: &mut TestRunner) -> NewTree<T> {
        Ok(Single(T::generate(runner)))
    }
}

pub fn any<T: Arbitrary + Clone>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}
