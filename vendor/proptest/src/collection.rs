//! Collection strategies.

use crate::strategy::{NewTree, Single, Strategy};
use crate::test_runner::TestRunner;
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds, converted from the size arguments real
/// proptest accepts (`usize`, `Range`, `RangeInclusive`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range {r:?}");
        Self { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range {r:?}");
        Self { lo: *r.start(), hi: *r.end() }
    }
}

#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_tree(&self, runner: &mut TestRunner) -> NewTree<Vec<S::Value>> {
        let len = runner.int_in(self.size.lo as i128, self.size.hi as i128) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.new_tree(runner)?.0);
        }
        Ok(Single(out))
    }
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
