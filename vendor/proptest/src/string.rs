//! Regex-subset string generation. Supports exactly the pattern
//! language this workspace's tests use: literal characters, character
//! classes `[A-Za-z0-9_.|-]` (ranges and literals, leading/trailing
//! `-` literal), the printable-character escape `\PC`, and the
//! quantifiers `{n}` and `{m,n}`.

use crate::test_runner::TestRunner;

enum Element {
    Literal(char),
    Class(Vec<(char, char)>),
    Printable,
}

struct Quantified {
    element: Element,
    min: u32,
    max: u32,
}

// Mostly-ASCII pool for `\PC`; a few multibyte characters keep parser
// fuzz tests honest about UTF-8.
const EXTRA_PRINTABLE: [char; 4] = ['é', 'λ', '中', '😀'];

fn parse_pattern(pattern: &str) -> Result<Vec<Quantified>, String> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out: Vec<Quantified> = Vec::new();
    while i < chars.len() {
        let element = match chars[i] {
            '[' => {
                let close = chars[i + 1..]
                    .iter()
                    .position(|&c| c == ']')
                    .ok_or_else(|| format!("unclosed `[` in pattern {pattern:?}"))?
                    + i
                    + 1;
                let body = &chars[i + 1..close];
                let mut ranges = Vec::new();
                let mut j = 0;
                while j < body.len() {
                    if j + 2 < body.len() && body[j + 1] == '-' {
                        ranges.push((body[j], body[j + 2]));
                        j += 3;
                    } else {
                        ranges.push((body[j], body[j]));
                        j += 1;
                    }
                }
                if ranges.is_empty() {
                    return Err(format!("empty class in pattern {pattern:?}"));
                }
                i = close + 1;
                Element::Class(ranges)
            }
            '\\' => {
                let kind: String = chars[i + 1..].iter().take(2).collect();
                if kind.starts_with("PC") {
                    i += 3;
                    Element::Printable
                } else {
                    return Err(format!("unsupported escape in pattern {pattern:?}"));
                }
            }
            c => {
                i += 1;
                Element::Literal(c)
            }
        };
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i + 1..]
                .iter()
                .position(|&c| c == '}')
                .ok_or_else(|| format!("unclosed `{{` in pattern {pattern:?}"))?
                + i
                + 1;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.parse::<u32>().map_err(|e| format!("bad quantifier in {pattern:?}: {e}"))?,
                    hi.parse::<u32>().map_err(|e| format!("bad quantifier in {pattern:?}: {e}"))?,
                ),
                None => {
                    let n = body
                        .parse::<u32>()
                        .map_err(|e| format!("bad quantifier in {pattern:?}: {e}"))?;
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        out.push(Quantified { element, min, max });
    }
    Ok(out)
}

fn sample_element(element: &Element, runner: &mut TestRunner) -> char {
    match element {
        Element::Literal(c) => *c,
        Element::Class(ranges) => {
            let total: i128 = ranges
                .iter()
                .map(|(lo, hi)| i128::from(*hi as u32) - i128::from(*lo as u32) + 1)
                .sum();
            let mut pick = runner.int_in(0, total - 1);
            for (lo, hi) in ranges {
                let span = i128::from(*hi as u32) - i128::from(*lo as u32) + 1;
                if pick < span {
                    return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
                }
                pick -= span;
            }
            ranges[0].0
        }
        Element::Printable => {
            let n = 95 + EXTRA_PRINTABLE.len() as i128;
            let pick = runner.int_in(0, n - 1);
            if pick < 95 {
                char::from_u32(0x20 + pick as u32).unwrap_or(' ')
            } else {
                EXTRA_PRINTABLE[(pick - 95) as usize]
            }
        }
    }
}

pub(crate) fn generate_from_pattern(pattern: &str, runner: &mut TestRunner) -> Result<String, String> {
    let elements = parse_pattern(pattern)?;
    let mut out = String::new();
    for q in &elements {
        let count = runner.int_in(i128::from(q.min), i128::from(q.max)) as u32;
        for _ in 0..count {
            out.push(sample_element(&q.element, runner));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_generate_matching_strings() {
        let mut runner = TestRunner::deterministic();
        for _ in 0..200 {
            let s = generate_from_pattern("[A-Za-z][A-Za-z0-9_.|-]{0,20}", &mut runner).unwrap();
            assert!(!s.is_empty() && s.len() <= 21);
            assert!(s.chars().next().is_some_and(|c| c.is_ascii_alphabetic()));
            assert!(s
                .chars()
                .skip(1)
                .all(|c| c.is_ascii_alphanumeric() || "_.|-".contains(c)));

            let s = generate_from_pattern("\\PC{0,60}", &mut runner).unwrap();
            assert!(s.chars().count() <= 60);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }
}
