//! Offline stand-in for `proptest`: deterministic generation-only
//! property testing. The strategy combinators, runner, and macros
//! mirror the real crate's API shape for the surface this workspace
//! uses; failing cases are reported without shrinking.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union, ValueTree};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config) $($rest)*);
    };
    (@run ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __cases = __config.cases;
            let mut __runner = $crate::test_runner::TestRunner::new(__config);
            let __strat = ($($strat,)+);
            for __case in 0..__cases {
                let __tree = match $crate::strategy::Strategy::new_tree(&__strat, &mut __runner) {
                    ::std::result::Result::Ok(tree) => tree,
                    // Unsatisfiable strategy for this case: skip it.
                    ::std::result::Result::Err(_) => continue,
                };
                let ($($pat,)+) = $crate::strategy::ValueTree::current(&__tree);
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        ::std::panic!("proptest case #{} failed: {}", __case, msg);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l != __r, "assertion failed: `{:?}` != `{:?}`", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((($weight) as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
