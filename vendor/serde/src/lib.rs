//! Offline stand-in for `serde`: a `Content`-tree data model with
//! `Serialize`/`Deserialize` traits re-exporting the stand-in derive
//! macros. Externally-tagged enum representation, field order
//! preserved, matching real serde's JSON mapping for the shapes this
//! workspace uses.

pub use serde_derive::{Deserialize, Serialize};

/// The intermediate data model every value serializes into (and
/// deserializes from). Maps preserve insertion order so JSON output
/// is deterministic and field order matches declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

pub trait Serialize {
    fn serialize_content(&self) -> Content;
}

pub trait Deserialize: Sized {
    fn deserialize_content(content: &Content) -> Result<Self, String>;
}

/// First value for `key` in an ordered map.
pub fn map_get<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Extracts and deserializes a struct field; a missing field is
/// deserialized from `Null` so `Option` fields default to `None`.
pub fn field<T: Deserialize>(map: &[(String, Content)], key: &str) -> Result<T, String> {
    match map_get(map, key) {
        Some(c) => T::deserialize_content(c).map_err(|e| format!("field `{key}`: {e}")),
        None => T::deserialize_content(&Content::Null)
            .map_err(|_| format!("missing field `{key}`")),
    }
}

/// Like [`field`], but a missing key yields `T::default()` — the
/// behaviour of `#[serde(default)]` on a struct field.
pub fn field_or_default<T: Deserialize + Default>(
    map: &[(String, Content)],
    key: &str,
) -> Result<T, String> {
    match map_get(map, key) {
        Some(c) => T::deserialize_content(c).map_err(|e| format!("field `{key}`: {e}")),
        None => Ok(T::default()),
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::I64(i64::from(*self))
            }
        }

        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, String> {
                let n = match c {
                    Content::I64(n) => *n,
                    Content::U64(n) => i64::try_from(*n)
                        .map_err(|_| format!("integer {n} out of range"))?,
                    Content::F64(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(format!("expected integer, found {other:?}")),
                };
                <$t>::try_from(n).map_err(|_| format!("integer {n} out of range"))
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::U64(u64::from(*self))
            }
        }

        impl Deserialize for $t {
            fn deserialize_content(c: &Content) -> Result<Self, String> {
                let n = match c {
                    Content::U64(n) => *n,
                    Content::I64(n) => u64::try_from(*n)
                        .map_err(|_| format!("integer {n} out of range"))?,
                    Content::F64(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => return Err(format!("expected integer, found {other:?}")),
                };
                <$t>::try_from(n).map_err(|_| format!("integer {n} out of range"))
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn serialize_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}

impl Deserialize for usize {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        u64::deserialize_content(c)
            .and_then(|n| usize::try_from(n).map_err(|_| format!("integer {n} out of range")))
    }
}

impl Serialize for isize {
    fn serialize_content(&self) -> Content {
        Content::I64(*self as i64)
    }
}

impl Deserialize for isize {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        i64::deserialize_content(c)
            .and_then(|n| isize::try_from(n).map_err(|_| format!("integer {n} out of range")))
    }
}

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::F64(f) => Ok(*f),
            Content::I64(n) => Ok(*n as f64),
            Content::U64(n) => Ok(*n as f64),
            other => Err(format!("expected float, found {other:?}")),
        }
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        f64::deserialize_content(c).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, found {other:?}")),
        }
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, found {other:?}")),
        }
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        match c {
            // Deserializing to a 'static borrow requires giving the
            // string a 'static home; these are rare, tiny values
            // (e.g. network profile names), so leaking is fine.
            Content::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(format!("expected string, found {other:?}")),
        }
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap_or('\0')),
            other => Err(format!("expected single-char string, found {other:?}")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.serialize_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Seq(items) => items.iter().map(T::deserialize_content).collect(),
            other => Err(format!("expected sequence, found {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        T::deserialize_content(c).map(Box::new)
    }
}

macro_rules! tuple_impl {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.serialize_content()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_content(c: &Content) -> Result<Self, String> {
                match c {
                    Content::Seq(items) if items.len() == [$($n),+].len() => {
                        Ok(($($t::deserialize_content(&items[$n])?,)+))
                    }
                    other => Err(format!("expected tuple, found {other:?}")),
                }
            }
        }
    )+};
}

tuple_impl!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
);

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn serialize_content(&self) -> Content {
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize_content()))
            .collect();
        // Sorted for deterministic output (hash maps have no stable
        // iteration order).
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize
    for std::collections::HashMap<String, V, S>
{
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
                .collect(),
            other => Err(format!("expected map, found {other:?}")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Map(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize_content(v)?)))
                .collect(),
            other => Err(format!("expected map, found {other:?}")),
        }
    }
}

impl Serialize for std::time::Duration {
    fn serialize_content(&self) -> Content {
        Content::Map(vec![
            ("secs".to_string(), Content::U64(self.as_secs())),
            ("nanos".to_string(), Content::U64(u64::from(self.subsec_nanos()))),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Map(m) => {
                let secs: u64 = field(m, "secs")?;
                let nanos: u32 = field(m, "nanos")?;
                Ok(std::time::Duration::new(secs, nanos))
            }
            other => Err(format!("expected duration map, found {other:?}")),
        }
    }
}
