//! Offline stand-in for `serde_json`: compact and pretty writers plus
//! a recursive-descent parser over the stand-in `serde::Content`
//! model. Output matches real serde_json's formatting for the shapes
//! this workspace serializes (compact `{"k":v}`, two-space pretty
//! indent), and `f64` values round-trip exactly (shortest
//! representation via `{:?}`).

use serde::{Content, Deserialize, Serialize};
use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.serialize_content(), &mut out)?;
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.serialize_content(), &mut out, 0)?;
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at offset {}", p.pos)));
    }
    T::deserialize_content(&content).map_err(Error::new)
}

fn write_number(f: f64, out: &mut String) -> Result<()> {
    if !f.is_finite() {
        return Err(Error::new("cannot serialize non-finite float"));
    }
    // `{:?}` prints the shortest representation that round-trips,
    // keeping a `.0` on integral values — same as serde_json.
    out.push_str(&format!("{f:?}"));
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(c: &Content, out: &mut String) -> Result<()> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(f) => write_number(*f, out)?,
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_compact(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_pretty(c: &Content, out: &mut String, level: usize) -> Result<()> {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, level + 1);
                write_pretty(item, out, level + 1)?;
            }
            out.push('\n');
            indent(out, level);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, level + 1);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(v, out, level + 1)?;
            }
            out.push('\n');
            indent(out, level);
            out.push('}');
        }
        other => write_compact(other, out)?,
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error::new(format!("expected `,` or `]` at offset {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error::new(format!("expected `,` or `}}` at offset {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected character at offset {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Content::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Content::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_roundtrip_exact() {
        for f in [0.1, 1.0, -2.5e-9, 123456.789, f64::MIN_POSITIVE, 1e300] {
            let mut s = String::new();
            write_number(f, &mut s).unwrap();
            assert_eq!(s.parse::<f64>().unwrap(), f);
        }
    }

    #[test]
    fn parse_escapes() {
        let c: String = from_str(r#""a\n\"A😀""#).unwrap();
        assert_eq!(c, "a\n\"A😀");
    }

    #[test]
    fn compact_shape() {
        let mut out = String::new();
        write_compact(
            &Content::Map(vec![
                ("version".into(), Content::U64(1)),
                ("xs".into(), Content::Seq(vec![Content::I64(-3), Content::F64(2.0)])),
            ]),
            &mut out,
        )
        .unwrap();
        assert_eq!(out, r#"{"version":1,"xs":[-3,2.0]}"#);
    }
}
