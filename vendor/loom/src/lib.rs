//! Offline stand-in for `loom`: randomized-schedule model checking.
//!
//! The real loom exhaustively enumerates thread interleavings with a
//! cooperative scheduler. This stand-in takes the shuttle approach
//! instead: [`model`] runs the closure many times on real OS threads,
//! and every instrumented lock operation injects a seeded,
//! per-iteration-varying number of `yield_now` calls before and after
//! acquiring, perturbing the schedule so distinct interleavings are
//! probed across iterations. Coverage is probabilistic rather than
//! exhaustive, but each iteration exercises the *real* concurrent code
//! under a genuinely different schedule.
//!
//! API deviations from the real crate (documented per vendor/README):
//! the `sync` lock types mirror *parking_lot*'s panic-free shape
//! (`lock()` returns a guard, `Condvar::wait(&mut guard)`) rather than
//! std's `Result` shape, because this workspace's loom-swappable shim
//! (`drugtree_sources::sync`) standardizes on parking_lot.

use std::sync::atomic::{AtomicU64, Ordering};

/// The per-iteration schedule salt; every instrumented operation mixes
/// it into its thread-local RNG so iteration k yields differently from
/// iteration k+1.
static SCHEDULE: AtomicU64 = AtomicU64::new(0);

/// Number of schedules explored per [`model`] call (override with the
/// `LOOM_ITERS` environment variable).
fn iterations() -> u64 {
    std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Run `f` under many perturbed schedules, panicking (and thereby
/// failing the test) if any iteration panics.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    for iter in 0..iterations() {
        SCHEDULE.store(
            (iter + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            Ordering::SeqCst,
        );
        f();
    }
}

/// Inject a schedule-dependent number of scheduler yields (0–3).
fn maybe_yield() {
    use std::cell::Cell;
    thread_local! {
        static STATE: Cell<u64> = const { Cell::new(0x243f_6a88_85a3_08d3) };
    }
    let salt = SCHEDULE.load(Ordering::Relaxed);
    let n = STATE.with(|s| {
        let x = s
            .get()
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407 ^ salt);
        s.set(x);
        (x >> 60) & 3
    });
    for _ in 0..n {
        std::thread::yield_now();
    }
}

/// Instrumented `std::thread` facade.
pub mod thread {
    pub use std::thread::JoinHandle;

    /// Spawn with a schedule perturbation at the spawn point and at
    /// thread start.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        super::maybe_yield();
        std::thread::spawn(move || {
            super::maybe_yield();
            f()
        })
    }

    /// A plain scheduler yield.
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

/// Instrumented synchronization primitives (parking_lot-shaped).
pub mod sync {
    pub use std::sync::Arc;

    /// Atomics pass through uninstrumented: the stand-in perturbs
    /// schedules at lock boundaries, not per atomic op.
    pub mod atomic {
        pub use std::sync::atomic::*;
    }

    pub struct MutexGuard<'a, T: ?Sized>(parking_lot_shim::MutexGuard<'a, T>);

    /// Yield-injecting mutex.
    pub struct Mutex<T: ?Sized>(parking_lot_shim::Mutex<T>);

    impl<T> Mutex<T> {
        pub const fn new(value: T) -> Mutex<T> {
            Mutex(parking_lot_shim::Mutex::new(value))
        }
    }

    impl<T: ?Sized> Mutex<T> {
        pub fn lock(&self) -> MutexGuard<'_, T> {
            super::maybe_yield();
            let guard = self.0.lock();
            super::maybe_yield();
            MutexGuard(guard)
        }

        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            super::maybe_yield();
            self.0.try_lock().map(MutexGuard)
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut()
        }
    }

    impl<T: Default> Default for Mutex<T> {
        fn default() -> Mutex<T> {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            std::fmt::Debug::fmt(&self.0, f)
        }
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            std::fmt::Debug::fmt(&**self, f)
        }
    }

    /// Yield-injecting condition variable.
    #[derive(Default)]
    pub struct Condvar(parking_lot_shim::Condvar);

    impl Condvar {
        pub const fn new() -> Condvar {
            Condvar(parking_lot_shim::Condvar::new())
        }

        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            self.0.wait(&mut guard.0);
            super::maybe_yield();
        }

        pub fn notify_one(&self) {
            super::maybe_yield();
            self.0.notify_one();
        }

        pub fn notify_all(&self) {
            super::maybe_yield();
            self.0.notify_all();
        }
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Condvar")
        }
    }

    pub struct RwLockReadGuard<'a, T: ?Sized>(parking_lot_shim::RwLockReadGuard<'a, T>);
    pub struct RwLockWriteGuard<'a, T: ?Sized>(parking_lot_shim::RwLockWriteGuard<'a, T>);

    /// Yield-injecting reader-writer lock.
    pub struct RwLock<T: ?Sized>(parking_lot_shim::RwLock<T>);

    impl<T> RwLock<T> {
        pub const fn new(value: T) -> RwLock<T> {
            RwLock(parking_lot_shim::RwLock::new(value))
        }
    }

    impl<T: ?Sized> RwLock<T> {
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            super::maybe_yield();
            let guard = self.0.read();
            super::maybe_yield();
            RwLockReadGuard(guard)
        }

        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            super::maybe_yield();
            let guard = self.0.write();
            super::maybe_yield();
            RwLockWriteGuard(guard)
        }

        pub fn get_mut(&mut self) -> &mut T {
            self.0.get_mut()
        }
    }

    impl<T: Default> Default for RwLock<T> {
        fn default() -> RwLock<T> {
            RwLock::new(T::default())
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            std::fmt::Debug::fmt(&self.0, f)
        }
    }

    impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    /// The non-instrumented primitives the instrumented ones wrap.
    /// Inlined from the workspace's parking_lot stand-in so this crate
    /// stays dependency-free (vendor crates must not depend on each
    /// other: `[patch.crates-io]` would make the graph cyclic).
    mod parking_lot_shim {
        use std::ops::{Deref, DerefMut};
        use std::sync::PoisonError;

        pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);
        pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

        pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
        pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

        impl<T> Mutex<T> {
            pub const fn new(value: T) -> Self {
                Self(std::sync::Mutex::new(value))
            }
        }

        impl<T: ?Sized> Mutex<T> {
            pub fn lock(&self) -> MutexGuard<'_, T> {
                MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
            }

            pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
                self.0.try_lock().ok().map(|g| MutexGuard(Some(g)))
            }

            pub fn get_mut(&mut self) -> &mut T {
                self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
            }
        }

        impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                match self.try_lock() {
                    Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
                    None => f.write_str("Mutex(<locked>)"),
                }
            }
        }

        impl<T: ?Sized> Deref for MutexGuard<'_, T> {
            type Target = T;

            fn deref(&self) -> &T {
                match &self.0 {
                    Some(guard) => guard,
                    None => unreachable!("guard is only empty mid-wait"),
                }
            }
        }

        impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
            fn deref_mut(&mut self) -> &mut T {
                match &mut self.0 {
                    Some(guard) => guard,
                    None => unreachable!("guard is only empty mid-wait"),
                }
            }
        }

        #[derive(Default)]
        pub struct Condvar(std::sync::Condvar);

        impl Condvar {
            pub const fn new() -> Condvar {
                Condvar(std::sync::Condvar::new())
            }

            pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
                if let Some(inner) = guard.0.take() {
                    guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
                }
            }

            pub fn notify_one(&self) {
                self.0.notify_one();
            }

            pub fn notify_all(&self) {
                self.0.notify_all();
            }
        }

        pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

        impl<T> RwLock<T> {
            pub const fn new(value: T) -> Self {
                Self(std::sync::RwLock::new(value))
            }
        }

        impl<T: ?Sized> RwLock<T> {
            pub fn read(&self) -> RwLockReadGuard<'_, T> {
                self.0.read().unwrap_or_else(PoisonError::into_inner)
            }

            pub fn write(&self) -> RwLockWriteGuard<'_, T> {
                self.0.write().unwrap_or_else(PoisonError::into_inner)
            }

            pub fn get_mut(&mut self) -> &mut T {
                self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
            }
        }

        impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                match self.0.try_read() {
                    Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
                    Err(_) => f.write_str("RwLock(<locked>)"),
                }
            }
        }
    }
}
