//! Offline stand-in for `parking_lot`: thin wrappers over the std
//! sync primitives with parking_lot's panic-free, non-poisoning API.
//!
//! `MutexGuard` is a newtype (not an alias) so [`Condvar::wait`] can
//! take the guard by `&mut` the way parking_lot's does; the inner
//! `Option` is only ever `None` for the instant a wait swaps the std
//! guard out and back.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        match &self.0 {
            Some(guard) => guard,
            None => unreachable!("guard is only empty mid-wait"),
        }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.0 {
            Some(guard) => guard,
            None => unreachable!("guard is only empty mid-wait"),
        }
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + std::fmt::Display> std::fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(&**self, f)
    }
}

impl<T> Mutex<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok().map(|g| MutexGuard(Some(g)))
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Condition variable pairing with [`Mutex`]: parking_lot's
/// `&mut guard` wait API over `std::sync::Condvar`.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    #[inline]
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, atomically releasing and re-acquiring the
    /// guard's mutex (spurious wakeups possible, as with std).
    #[inline]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        if let Some(inner) = guard.0.take() {
            guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
        }
    }

    #[inline]
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    #[inline]
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}
