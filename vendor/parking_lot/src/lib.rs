//! Offline stand-in for `parking_lot`: thin wrappers over the std
//! sync primitives with parking_lot's panic-free, non-poisoning API.

use std::sync::PoisonError;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> Mutex<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    #[inline]
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    #[inline]
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    #[inline]
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}
