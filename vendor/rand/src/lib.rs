//! Offline stand-in for `rand` 0.8: the `SmallRng`/`Rng`/`SeedableRng`
//! surface this workspace uses, backed by splitmix64 seeding and a
//! xorshift64* core. Deterministic for a given seed (the stream
//! differs from upstream `rand`, which is fine for simulation and
//! test-workload generation).

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::SmallRng;
}

/// Raw 64-bit generator core.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every core.
pub trait Rng: RngCore + Sized {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable uniformly over their whole (unit) domain, i.e. the
/// `Standard` distribution of real `rand`.
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges a value can be drawn from, mirroring `rand`'s `SampleRange`.
///
/// Like the real crate, the impls are generic over a per-type
/// `SampleUniform` so `rng.gen_range(0..n)` pins the integer literal's
/// type from the usage site (e.g. indexing wants `usize`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

pub trait SampleUniform: Sized + PartialOrd {
    fn sample_in<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty gen_range");
        T::sample_in(lo, hi, true, rng)
    }
}

#[inline]
fn unit_f64(word: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                let v = lo + u * (hi - lo);
                if inclusive || v < hi { v } else { lo }
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Small, fast, deterministic generator (xorshift64*).
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 scramble so nearby seeds give unrelated streams,
        // and so the all-zero seed still works.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self {
            state: if z == 0 { 0xDEAD_BEEF_CAFE_F00D } else { z },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let v = rng.gen_range(5..=5);
            assert_eq!(v, 5);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!(f >= f64::EPSILON && f < 1.0);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
