//! Bench-regression gate: diff two `bench_results` trees and fail on
//! regressions past a threshold. Run with
//!
//! ```sh
//! cargo run --bin benchdiff -- <baseline-dir> <candidate-dir> [--threshold 0.10]
//! ```
//!
//! Both directories hold `ExperimentTable` JSON files as written by the
//! `experiments` binary (`--out <dir>` redirects them). Every file
//! present in both trees is compared cell by cell: the header name
//! decides whether a metric is lower-better (latencies, round-trips)
//! or higher-better (speedups, throughput, hit rates); unknown columns
//! and label columns are skipped. (Shared-fleet rows used to be
//! excluded as scheduling-dependent; the event-driven session
//! scheduler made them byte-deterministic, so every E11 row is gated
//! now.) A candidate worse than baseline by more than the relative
//! threshold
//! on any compared cell is a regression and the exit code is 1. A
//! baseline table with no counterpart file in the candidate tree is a
//! coverage failure, not a skip: it exits 3 so CI can distinguish "got
//! slower" from "the gate never looked". Usage and I/O errors exit 2.
//!
//! CI runs the quick experiment suite into a scratch directory and
//! gates it against the committed `bench_results/quick/` baselines.

use serde::Deserialize;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The subset of `ExperimentTable` the diff needs.
#[derive(Debug, Deserialize)]
struct Table {
    id: String,
    #[allow(dead_code)]
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    #[allow(dead_code)]
    notes: Vec<String>,
}

/// Which way a metric column improves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    LowerIsBetter,
    HigherIsBetter,
    Skip,
}

/// Classify a column by its header name.
fn direction(header: &str) -> Direction {
    let h = header.to_ascii_lowercase();
    let higher = ["speedup", "gestures/s", "hit rate", "throughput", "qps"];
    if higher.iter().any(|k| h.contains(k)) {
        return Direction::HigherIsBetter;
    }
    let lower = [
        "mean", "p50", "p95", "p99", "latency", "rt/query", "reqs", "bytes", "rows", "max",
        "breach", "stale",
    ];
    if lower.iter().any(|k| h.contains(k)) {
        return Direction::LowerIsBetter;
    }
    Direction::Skip
}

/// Parse a table cell into a comparable number. Durations normalize to
/// milliseconds; `x` (speedup), `%` and plain numbers pass through.
/// Returns `None` for labels and placeholders.
fn metric_value(cell: &str) -> Option<f64> {
    let cell = cell.trim();
    if cell.is_empty() || cell == "-" {
        return None;
    }
    let stripped = cell
        .strip_suffix('x')
        .or_else(|| cell.strip_suffix('%'))
        .unwrap_or(cell);
    if let Some(ms) = stripped.strip_suffix("ms") {
        return ms.trim().parse().ok();
    }
    if let Some(s) = stripped.strip_suffix('s') {
        return s.trim().parse::<f64>().ok().map(|v| v * 1000.0);
    }
    stripped.parse().ok()
}

/// Baselines smaller than this (ms or unitless) are noise floors, not
/// meaningful denominators; such cells are never flagged.
const MIN_BASE: f64 = 0.05;

/// Exit codes, kept distinct so CI can tell "the candidate got slower"
/// (fix the code) from "the gate lost coverage" (fix the harness):
/// 0 clean, 1 regression past threshold, 2 usage or I/O error,
/// 3 baseline table(s) missing from the candidate tree.
const EXIT_REGRESSION: u8 = 1;
const EXIT_ERROR: u8 = 2;
const EXIT_MISSING_BASELINE: u8 = 3;

/// Map what the diff found to an exit code. Lost coverage outranks a
/// regression verdict: a "pass" that silently skipped tables is the
/// more dangerous lie.
fn verdict(missing: usize, regressions: usize) -> u8 {
    if missing > 0 {
        EXIT_MISSING_BASELINE
    } else if regressions > 0 {
        EXIT_REGRESSION
    } else {
        0
    }
}

/// One regression found.
#[derive(Debug)]
struct Regression {
    table: String,
    row: String,
    column: String,
    baseline: f64,
    candidate: f64,
    ratio: f64,
}

/// Compare two parsed tables; returns regressions past `threshold`.
fn compare_tables(baseline: &Table, candidate: &Table, threshold: f64) -> Vec<Regression> {
    let mut regressions = Vec::new();
    if baseline.headers != candidate.headers || baseline.rows.len() != candidate.rows.len() {
        eprintln!(
            "note: {} structure changed (headers or row count); skipping",
            baseline.id
        );
        return regressions;
    }
    for (base_row, cand_row) in baseline.rows.iter().zip(&candidate.rows) {
        let label = base_row.first().cloned().unwrap_or_default();
        if base_row.first() != cand_row.first() {
            eprintln!(
                "note: {} row labels diverge ({label:?}); skipping row",
                baseline.id
            );
            continue;
        }
        for (i, header) in baseline.headers.iter().enumerate() {
            let dir = direction(header);
            if dir == Direction::Skip {
                continue;
            }
            let (Some(base), Some(cand)) = (
                base_row.get(i).and_then(|c| metric_value(c)),
                cand_row.get(i).and_then(|c| metric_value(c)),
            ) else {
                continue;
            };
            if base.abs() < MIN_BASE {
                continue;
            }
            let ratio = match dir {
                Direction::LowerIsBetter => (cand - base) / base,
                Direction::HigherIsBetter => (base - cand) / base,
                Direction::Skip => continue,
            };
            if ratio > threshold {
                regressions.push(Regression {
                    table: baseline.id.clone(),
                    row: label.clone(),
                    column: header.clone(),
                    baseline: base,
                    candidate: cand,
                    ratio,
                });
            }
        }
    }
    regressions
}

fn load_table(path: &Path) -> Result<Table, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn json_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    files.sort();
    Ok(files)
}

fn run(baseline_dir: &Path, candidate_dir: &Path, threshold: f64) -> Result<ExitCode, String> {
    let mut regressions = Vec::new();
    let mut missing: Vec<PathBuf> = Vec::new();
    let mut compared = 0usize;
    for base_path in json_files(baseline_dir)? {
        let Some(name) = base_path.file_name() else {
            continue;
        };
        let cand_path = candidate_dir.join(name);
        if !cand_path.is_file() {
            missing.push(cand_path);
            continue;
        }
        let baseline = load_table(&base_path)?;
        let candidate = load_table(&cand_path)?;
        compared += 1;
        regressions.extend(compare_tables(&baseline, &candidate, threshold));
    }
    if compared == 0 && missing.is_empty() {
        return Err(format!(
            "no comparable result files between {} and {}",
            baseline_dir.display(),
            candidate_dir.display()
        ));
    }
    if !regressions.is_empty() {
        println!(
            "benchdiff: {} regression(s) past {:.0}% across {compared} table(s):",
            regressions.len(),
            threshold * 100.0
        );
        for r in &regressions {
            println!(
                "  {} [{} / {}]: {:.3} -> {:.3} (+{:.1}%)",
                r.table,
                r.row,
                r.column,
                r.baseline,
                r.candidate,
                r.ratio * 100.0
            );
        }
    }
    if !missing.is_empty() {
        eprintln!(
            "error: {} baseline table(s) have no counterpart in the candidate tree \
             — the gate did not cover them (did the experiment suite fail to emit them?):",
            missing.len()
        );
        for path in &missing {
            eprintln!("  missing: {}", path.display());
        }
    }
    match verdict(missing.len(), regressions.len()) {
        0 => {
            println!(
                "benchdiff: {compared} table(s) compared, no regression past {:.0}%",
                threshold * 100.0
            );
            Ok(ExitCode::SUCCESS)
        }
        code => Ok(ExitCode::from(code)),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut dirs: Vec<PathBuf> = Vec::new();
    let mut threshold = 0.10_f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--threshold" => {
                let Some(value) = iter.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --threshold needs a fraction, e.g. 0.10");
                    return ExitCode::from(EXIT_ERROR);
                };
                threshold = value;
            }
            "--help" | "-h" => {
                println!("usage: benchdiff <baseline-dir> <candidate-dir> [--threshold 0.10]");
                return ExitCode::SUCCESS;
            }
            other => dirs.push(PathBuf::from(other)),
        }
    }
    let [baseline, candidate] = dirs.as_slice() else {
        eprintln!("usage: benchdiff <baseline-dir> <candidate-dir> [--threshold 0.10]");
        return ExitCode::from(EXIT_ERROR);
    };
    match run(baseline, candidate, threshold) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(EXIT_ERROR)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(id: &str, headers: &[&str], rows: &[&[&str]]) -> Table {
        Table {
            id: id.to_string(),
            title: String::new(),
            headers: headers.iter().map(|h| (*h).to_string()).collect(),
            rows: rows
                .iter()
                .map(|r| r.iter().map(|c| (*c).to_string()).collect())
                .collect(),
            notes: Vec::new(),
        }
    }

    #[test]
    fn cell_values_normalize_units() {
        assert_eq!(metric_value("13.4ms"), Some(13.4));
        assert_eq!(metric_value("18.5s"), Some(18500.0));
        assert_eq!(metric_value("887.4x"), Some(887.4));
        assert_eq!(metric_value("85%"), Some(85.0));
        assert_eq!(metric_value("0.20"), Some(0.2));
        assert_eq!(metric_value("-"), None);
        assert_eq!(metric_value("subtree_listing"), None);
    }

    #[test]
    fn header_names_pick_a_direction() {
        assert_eq!(direction("opt mean"), Direction::LowerIsBetter);
        assert_eq!(direction("p95"), Direction::LowerIsBetter);
        assert_eq!(direction("RT/query"), Direction::LowerIsBetter);
        assert_eq!(direction("speedup"), Direction::HigherIsBetter);
        assert_eq!(direction("gestures/s"), Direction::HigherIsBetter);
        assert_eq!(direction("hit rate"), Direction::HigherIsBetter);
        assert_eq!(direction("class"), Direction::Skip);
    }

    #[test]
    fn twenty_percent_latency_regression_is_flagged() {
        let headers = ["class", "opt mean", "speedup"];
        let base = table("E1", &headers, &[&["listing", "10.0ms", "100.0x"]]);
        let cand = table("E1", &headers, &[&["listing", "12.0ms", "100.0x"]]);
        let found = compare_tables(&base, &cand, 0.10);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].column, "opt mean");
        assert!((found[0].ratio - 0.2).abs() < 1e-9);
        // The same 20% move is fine under a 25% threshold.
        assert!(compare_tables(&base, &cand, 0.25).is_empty());
    }

    #[test]
    fn speedup_drop_is_a_regression_and_gain_is_not() {
        let headers = ["class", "speedup"];
        let base = table("E1", &headers, &[&["listing", "100.0x"]]);
        let slower = table("E1", &headers, &[&["listing", "80.0x"]]);
        let faster = table("E1", &headers, &[&["listing", "140.0x"]]);
        assert_eq!(compare_tables(&base, &slower, 0.10).len(), 1);
        assert!(compare_tables(&base, &faster, 0.10).is_empty());
    }

    #[test]
    fn tiny_baselines_are_skipped_but_fleet_rows_are_gated() {
        let headers = ["sessions", "mode", "p95"];
        // Noise-floor baselines never flag...
        let base = table("E11", &headers, &[&["8", "per-session-opt", "0.01"]]);
        let cand = table("E11", &headers, &[&["8", "per-session-opt", "0.04"]]);
        assert!(compare_tables(&base, &cand, 0.10).is_empty());
        // ...but shared-fleet rows are ordinary gated rows now: the
        // event scheduler made them deterministic.
        let base = table("E11", &headers, &[&["1024", "fleet", "10.0ms"]]);
        let cand = table("E11", &headers, &[&["1024", "fleet", "99.0ms"]]);
        assert_eq!(compare_tables(&base, &cand, 0.10).len(), 1);
    }

    #[test]
    fn missing_baseline_coverage_has_its_own_exit_code() {
        // Clean run.
        assert_eq!(verdict(0, 0), 0);
        // Regressions alone exit 1, as before.
        assert_eq!(verdict(0, 3), EXIT_REGRESSION);
        // A missing counterpart is never a silent skip...
        assert_eq!(verdict(1, 0), EXIT_MISSING_BASELINE);
        // ...and outranks a regression verdict: lost coverage is the
        // bigger problem than what the covered tables showed.
        assert_eq!(verdict(2, 5), EXIT_MISSING_BASELINE);
        // All three outcomes stay distinguishable from usage errors.
        const {
            assert!(EXIT_MISSING_BASELINE != EXIT_ERROR && EXIT_REGRESSION != EXIT_ERROR);
        }
    }

    #[test]
    fn identical_tables_have_no_regressions() {
        let headers = ["class", "opt mean"];
        let base = table("E1", &headers, &[&["listing", "10.0ms"]]);
        let same = table("E1", &headers, &[&["listing", "10.0ms"]]);
        assert!(compare_tables(&base, &same, 0.10).is_empty());
    }
}
