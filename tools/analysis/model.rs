//! The shared source model every analysis pass runs over.
//!
//! One scan of the repository's Rust sources produces, per file:
//! comment- and string-stripped text (column-preserving, so byte
//! offsets in the stripped lines line up with the original), a
//! brace-depth map, every lock acquisition (`.lock()` / `.read()` /
//! `.write()`) with its receiver normalized to a *lock class*, the
//! guard's binding and lexical live range, and every blocking point
//! (`Condvar::wait`, `yield_now`, `.await`).
//!
//! The model is a line/token heuristic, not a full parse: multi-line
//! scrutinees and guards returned from helper functions are modeled at
//! the call site only. Passes accept that imprecision and pair with an
//! allowlist for the residue (DESIGN.md §D11).

use std::path::{Path, PathBuf};

/// Directories scanned for Rust sources, relative to the scan root.
pub const SCAN_ROOTS: &[&str] = &["crates", "src", "examples", "tests", "benches"];

/// Directory names never descended into.
pub const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "bench_results", "fixtures"];

/// How a lock acquisition takes the lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `Mutex::lock`-style exclusive acquisition.
    Lock,
    /// `RwLock::read` shared acquisition.
    Read,
    /// `RwLock::write` exclusive acquisition.
    Write,
}

impl Mode {
    pub fn verb(self) -> &'static str {
        match self {
            Mode::Lock => "lock()",
            Mode::Read => "read()",
            Mode::Write => "write()",
        }
    }
}

/// How long the returned guard lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardKind {
    /// `let g = x.lock();` — lives to the end of the enclosing block
    /// (or an explicit `drop(g)`).
    Named,
    /// Acquired inside an `if let` / `while let` / `match` scrutinee —
    /// the temporary lives to the end of the *whole* statement,
    /// including every `else` branch (the PR-5 deadlock class).
    Scrutinee,
    /// A plain statement temporary — dropped at the semicolon.
    Temporary,
}

/// One lock acquisition site.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// 1-based line of the `.lock()`/`.read()`/`.write()` token.
    pub line: usize,
    /// 0-based column (char index) of the token's leading dot.
    pub col: usize,
    /// Normalized lock class, `<crate>:<name>`.
    pub class: String,
    pub mode: Mode,
    /// The guard's binding, for [`GuardKind::Named`].
    pub binding: Option<String>,
    pub kind: GuardKind,
    /// 1-based last line on which the guard is still live.
    pub extent_end: usize,
}

/// A point where the holding thread blocks or yields the scheduler.
#[derive(Debug, Clone)]
pub struct WaitPoint {
    /// 1-based line.
    pub line: usize,
    /// 0-based column.
    pub col: usize,
    /// The guard a `Condvar::wait(&mut g)` releases while blocked;
    /// holding *that* guard at the wait is the point.
    pub exempt: Option<String>,
    /// Human label: "Condvar::wait", "yield point", ".await".
    pub what: &'static str,
}

/// One analyzed source file.
#[derive(Debug)]
pub struct FileModel {
    /// Scan-root-relative path, '/'-separated.
    pub path: String,
    /// Owning crate (`crates/<k>/…` ⇒ `k`, anything else ⇒ `repro`).
    pub krate: String,
    /// File stem (fallback lock class for bare `self` receivers).
    pub stem: String,
    /// Comment- and string-stripped lines (columns preserved).
    pub code: Vec<String>,
    /// The original lines, for passes that must read string literals
    /// (e.g. registry names); structure detection stays on `code`.
    pub raw: Vec<String>,
    /// Brace depth at the start of each line.
    pub depth_start: Vec<i32>,
    pub acquisitions: Vec<Acquisition>,
    pub waits: Vec<WaitPoint>,
}

/// The whole scanned tree.
#[derive(Debug)]
pub struct SourceModel {
    pub files: Vec<FileModel>,
}

impl SourceModel {
    /// Scan `root` and build the model. Scans [`SCAN_ROOTS`] when any
    /// exists under `root`, otherwise the whole tree rooted at `root`
    /// (so fixture directories need no particular layout).
    pub fn build(root: &Path) -> SourceModel {
        let mut files = Vec::new();
        let mut found_any_root = false;
        for scan in SCAN_ROOTS {
            let dir = root.join(scan);
            if dir.is_dir() {
                found_any_root = true;
                collect_rust_files(&dir, &mut files);
            }
        }
        if !found_any_root {
            collect_rust_files(root, &mut files);
        }
        files.sort();
        let models = files
            .iter()
            .filter_map(|f| {
                let rel = relative_display(root, f)?;
                let text = std::fs::read_to_string(f).ok()?;
                Some(analyze_file(rel, &text))
            })
            .collect();
        SourceModel { files: models }
    }
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rust_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn relative_display(root: &Path, file: &Path) -> Option<String> {
    let rel = file.strip_prefix(root).ok()?;
    Some(
        rel.components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/"),
    )
}

/// Replace comments, string/char literals with spaces, preserving
/// every column and newline, so token offsets survive the strip.
pub fn strip_code(text: &str) -> String {
    let chars: Vec<char> = text.chars().collect();
    let n = chars.len();
    let mut out = String::with_capacity(text.len());
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < n {
        let c = chars[i];
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                out.push(' ');
                i += 1;
            }
        } else if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 1;
            out.push_str("  ");
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    out.push(blank(chars[i]));
                    i += 1;
                }
            }
        } else if c == 'r' && i + 1 < n && (chars[i + 1] == '"' || chars[i + 1] == '#') {
            // Possible raw string r"…" / r#"…"#.
            let mut j = i + 1;
            let mut hashes = 0;
            while j < n && chars[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < n && chars[j] == '"' {
                for _ in i..=j {
                    out.push(' ');
                }
                i = j + 1;
                while i < n {
                    if chars[i] == '"' {
                        let mut k = i + 1;
                        let mut h = 0;
                        while k < n && h < hashes && chars[k] == '#' {
                            h += 1;
                            k += 1;
                        }
                        if h == hashes {
                            for _ in i..k {
                                out.push(' ');
                            }
                            i = k;
                            break;
                        }
                    }
                    out.push(blank(chars[i]));
                    i += 1;
                }
            } else {
                out.push('r');
                i += 1;
            }
        } else if c == '"' {
            out.push(' ');
            i += 1;
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(blank(chars[i + 1]));
                    i += 2;
                } else if chars[i] == '"' {
                    out.push(' ');
                    i += 1;
                    break;
                } else {
                    out.push(blank(chars[i]));
                    i += 1;
                }
            }
        } else if c == '\'' {
            // Char literal vs lifetime: 'x' / '\n' are literals,
            // anything else ('a as in &'a) is a lifetime.
            if i + 2 < n && chars[i + 1] == '\\' {
                out.push(' ');
                i += 1;
                while i < n && chars[i] != '\'' {
                    out.push(blank(chars[i]));
                    i += 1;
                }
                if i < n {
                    out.push(' ');
                    i += 1;
                }
            } else if i + 2 < n && chars[i + 2] == '\'' {
                out.push_str("   ");
                i += 3;
            } else {
                out.push('\'');
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

/// Receivers whose `.lock()` is the std I/O handle lock, not a mutex.
const IO_RECEIVERS: &[&str] = &["stdin", "stdout", "stderr"];

const ACQ_PATTERNS: &[(&str, Mode)] = &[
    (".lock()", Mode::Lock),
    (".read()", Mode::Read),
    (".write()", Mode::Write),
];

fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        if let Some(k) = parts.next() {
            return k.to_string();
        }
    }
    "repro".to_string()
}

fn stem_of(path: &str) -> String {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".rs")
        .to_string()
}

/// Build the [`FileModel`] for one file.
pub fn analyze_file(path: String, text: &str) -> FileModel {
    let stripped = strip_code(text);
    let code: Vec<String> = stripped.lines().map(str::to_string).collect();
    let raw: Vec<String> = text.lines().map(str::to_string).collect();
    let mut depth_start = Vec::with_capacity(code.len() + 1);
    let mut d = 0i32;
    for line in &code {
        depth_start.push(d);
        for c in line.chars() {
            match c {
                '{' => d += 1,
                '}' => d -= 1,
                _ => {}
            }
        }
    }
    depth_start.push(d);
    let krate = crate_of(&path);
    let stem = stem_of(&path);
    let mut fm = FileModel {
        path,
        krate,
        stem,
        code,
        raw,
        depth_start,
        acquisitions: Vec::new(),
        waits: Vec::new(),
    };
    find_acquisitions(&mut fm);
    find_waits(&mut fm);
    fm
}

fn find_acquisitions(fm: &mut FileModel) {
    let mut found = Vec::new();
    for (li, line) in fm.code.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        for (pat, mode) in ACQ_PATTERNS {
            let mut from = 0;
            while let Some(rel) = find_at(&chars, pat, from) {
                from = rel + 1;
                let Some(site) = classify_site(fm, li, &chars, rel, pat.len(), *mode) else {
                    continue;
                };
                found.push(site);
            }
        }
    }
    found.sort_by_key(|a| (a.line, a.col));
    fm.acquisitions = found;
}

/// Find `pat` in `chars` starting at `from` (char indices).
fn find_at(chars: &[char], pat: &str, from: usize) -> Option<usize> {
    let pat: Vec<char> = pat.chars().collect();
    if chars.len() < pat.len() {
        return None;
    }
    (from..=chars.len() - pat.len()).find(|&i| chars[i..i + pat.len()] == pat[..])
}

fn classify_site(
    fm: &FileModel,
    li: usize,
    chars: &[char],
    col: usize,
    pat_len: usize,
    mode: Mode,
) -> Option<Acquisition> {
    let rcv_start = receiver_start(chars, col);
    let receiver: String = chars[rcv_start..col].iter().collect();
    let tail = class_tail(&receiver);
    if let Some(t) = &tail {
        if IO_RECEIVERS.contains(&t.as_str()) {
            return None;
        }
    }
    let class_name = match tail {
        Some(t) if !t.is_empty() && !t.chars().all(|c| c.is_ascii_digit()) && t != "self" => t,
        _ => fm.stem.clone(),
    };
    let class = format!("{}:{}", fm.krate, class_name);

    let prefix: String = chars[..col].iter().collect();
    let after: String = chars[col + pat_len..].iter().collect();
    let after_trim = after.trim_start();

    // 1. Scrutinee: `if let` / `while let` / `match` keyword earlier on
    //    the line with no `{` or `;` between it and the acquisition.
    let mut kw_hit: Option<(usize, &str)> = None;
    for kw in ["if let ", "while let ", "match "] {
        if let Some(p) = rfind_word(&prefix, kw) {
            if kw_hit.is_none_or(|(q, _)| p > q) {
                kw_hit = Some((p, kw));
            }
        }
    }
    if let Some((p, kw)) = kw_hit {
        let between = &prefix[p..];
        if !between.contains('{') && !between.contains(';') {
            let extent_end = scrutinee_extent(fm, li, col, kw);
            return Some(Acquisition {
                line: li + 1,
                col,
                class,
                mode,
                binding: None,
                kind: GuardKind::Scrutinee,
                extent_end,
            });
        }
    }

    // 2. Chained (`.lock().foo()`, `.read()?`): a statement temporary.
    if after_trim.starts_with('.') || after_trim.starts_with('?') {
        return Some(Acquisition {
            line: li + 1,
            col,
            class,
            mode,
            binding: None,
            kind: GuardKind::Temporary,
            extent_end: statement_extent(fm, li, col),
        });
    }

    // 3. Named: `let <mut> g = recv.lock();` with the acquisition as
    //    the whole right-hand side.
    if after_trim.is_empty() || after_trim.starts_with(';') {
        if let Some(binding) = let_binding(&prefix) {
            let depth = depth_at(fm, li, col);
            let extent_end = named_extent(fm, li, depth, &binding);
            return Some(Acquisition {
                line: li + 1,
                col,
                class,
                mode,
                binding: Some(binding),
                kind: GuardKind::Named,
                extent_end,
            });
        }
    }

    // 4. Anything else: statement temporary.
    Some(Acquisition {
        line: li + 1,
        col,
        class,
        mode,
        binding: None,
        kind: GuardKind::Temporary,
        extent_end: statement_extent(fm, li, col),
    })
}

/// Walk the receiver chain backwards from the acquisition's dot:
/// identifiers, `.`/`::`, and balanced `[…]` / `(…)` groups.
fn receiver_start(chars: &[char], end: usize) -> usize {
    let mut i = end;
    while i > 0 {
        let c = chars[i - 1];
        if c.is_alphanumeric() || c == '_' || c == '.' || c == ':' {
            i -= 1;
        } else if c == ']' || c == ')' {
            let (open, close) = if c == ']' { ('[', ']') } else { ('(', ')') };
            let mut depth = 0i32;
            let mut j = i;
            let mut matched = false;
            while j > 0 {
                let d = chars[j - 1];
                if d == close {
                    depth += 1;
                } else if d == open {
                    depth -= 1;
                    if depth == 0 {
                        j -= 1;
                        matched = true;
                        break;
                    }
                }
                j -= 1;
            }
            if !matched {
                break;
            }
            i = j;
        } else {
            break;
        }
    }
    i
}

/// Last path segment of a receiver chain, stripped of call/index
/// suffixes: `self.shards[home]` ⇒ `shards`.
fn class_tail(receiver: &str) -> Option<String> {
    let seg = receiver.rsplit('.').next().unwrap_or(receiver);
    let seg = seg.split(['[', '(']).next().unwrap_or(seg);
    let seg = seg.rsplit("::").next().unwrap_or(seg).trim();
    if seg.is_empty() {
        None
    } else {
        Some(seg.to_string())
    }
}

/// Find the last occurrence of `word` in `s` that starts at a
/// non-identifier boundary.
fn rfind_word(s: &str, word: &str) -> Option<usize> {
    let mut from = s.len();
    while let Some(p) = s[..from].rfind(word) {
        let boundary = p == 0
            || s[..p]
                .chars()
                .next_back()
                .is_some_and(|c| !c.is_alphanumeric() && c != '_');
        if boundary {
            return Some(p);
        }
        from = p;
    }
    None
}

/// Parse `let <mut> NAME =` off the front of the statement `prefix`
/// ends with; `None` for destructuring or non-let statements.
fn let_binding(prefix: &str) -> Option<String> {
    // Statement start: after the last `;`, `{` or `}` on the line.
    let start = prefix.rfind([';', '{', '}']).map_or(0, |p| p + 1);
    let stmt = prefix[start..].trim_start();
    let rest = stmt.strip_prefix("let ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    // The binding must be directly assigned the acquisition (`=`, or
    // `:` for a type-ascribed `let g: Guard = x.lock();`).
    let after_name = rest[name.len()..].trim_start();
    if after_name.starts_with('=') || after_name.starts_with(':') {
        Some(name)
    } else {
        None
    }
}

/// Brace depth immediately before `(line, col)`.
fn depth_at(fm: &FileModel, line: usize, col: usize) -> i32 {
    let mut d = fm.depth_start[line];
    for (i, c) in fm.code[line].chars().enumerate() {
        if i >= col {
            break;
        }
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Last line a named guard is live: until its enclosing block closes
/// or an explicit `drop(binding)`.
fn named_extent(fm: &FileModel, line: usize, depth: i32, binding: &str) -> usize {
    let drop_pat = format!("drop({binding})");
    for j in line..fm.code.len() {
        if j > line && fm.code[j].contains(&drop_pat) {
            return j + 1;
        }
        if fm.depth_start[j + 1] < depth {
            return j + 1;
        }
    }
    fm.code.len()
}

/// Last line a scrutinee temporary is live: the end of the whole
/// `if let` / `match` / `while let` statement. For `if let` this
/// includes every `else` block (Rust drops scrutinee temporaries at
/// the end of the full statement — the PR-5 deadlock class).
fn scrutinee_extent(fm: &FileModel, line: usize, col: usize, kw: &str) -> usize {
    let mut li = line;
    let mut ci = col;
    loop {
        // Find the `{` opening the body.
        let Some((bl, bc)) = find_char_from(fm, li, ci, '{') else {
            return line + 1;
        };
        // Walk to its matching `}`.
        let Some((el, ec)) = matching_close(fm, bl, bc) else {
            return fm.code.len();
        };
        if kw != "if let " {
            return el + 1;
        }
        // `else` continues the statement (and keeps the temporary
        // alive); anything else ends it.
        match next_word(fm, el, ec + 1) {
            Some((wl, wc, w)) if w == "else" => {
                li = wl;
                ci = wc + 4;
            }
            _ => return el + 1,
        }
    }
}

/// Statement end: the `;` closing the statement the acquisition is
/// part of (or the line itself when none is found nearby).
fn statement_extent(fm: &FileModel, line: usize, col: usize) -> usize {
    let mut depth = 0i32;
    for j in line..fm.code.len().min(line + 50) {
        let start = if j == line { col } else { 0 };
        for (i, c) in fm.code[j].chars().enumerate() {
            if i < start {
                continue;
            }
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth < 0 {
                        return j + 1;
                    }
                }
                ';' if depth <= 0 => return j + 1,
                _ => {}
            }
        }
    }
    line + 1
}

/// First `target` char at or after `(line, col)`.
fn find_char_from(fm: &FileModel, line: usize, col: usize, target: char) -> Option<(usize, usize)> {
    for j in line..fm.code.len() {
        let start = if j == line { col } else { 0 };
        for (i, c) in fm.code[j].chars().enumerate() {
            if i >= start && c == target {
                return Some((j, i));
            }
        }
    }
    None
}

/// Position of the `}` matching the `{` at `(line, col)`.
fn matching_close(fm: &FileModel, line: usize, col: usize) -> Option<(usize, usize)> {
    let mut depth = 0i32;
    for j in line..fm.code.len() {
        let start = if j == line { col } else { 0 };
        for (i, c) in fm.code[j].chars().enumerate() {
            if i < start {
                continue;
            }
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some((j, i));
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Next word (identifier) at or after `(line, col)`.
fn next_word(fm: &FileModel, line: usize, col: usize) -> Option<(usize, usize, String)> {
    for j in line..fm.code.len() {
        let chars: Vec<char> = fm.code[j].chars().collect();
        let mut i = if j == line { col } else { 0 };
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
            } else if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                return Some((j, start, chars[start..i].iter().collect()));
            } else {
                return None;
            }
        }
    }
    None
}

fn find_waits(fm: &mut FileModel) {
    let mut waits = Vec::new();
    for (li, line) in fm.code.iter().enumerate() {
        if let Some(p) = line.find(".wait(") {
            let arg = line[p + ".wait(".len()..].trim_start();
            let exempt = arg.strip_prefix("&mut ").map(|rest| {
                rest.chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect::<String>()
            });
            waits.push(WaitPoint {
                line: li + 1,
                col: p,
                exempt,
                what: "Condvar::wait",
            });
        }
        if let Some(p) = line.find("yield_now()") {
            waits.push(WaitPoint {
                line: li + 1,
                col: p,
                exempt: None,
                what: "yield point",
            });
        }
        if let Some(p) = line.find(".await") {
            waits.push(WaitPoint {
                line: li + 1,
                col: p,
                exempt: None,
                what: ".await",
            });
        }
    }
    fm.waits = waits;
}
