//! The registered analysis passes. Adding a pass means: a module here,
//! a `Box::new` in [`all`], fixtures under `tools/analysis/fixtures/
//! <snake_name>/{bad,clean}/`, and (optionally) an allowlist under
//! `tools/analysis/allow/<name>.allow`.

pub mod clock;
pub mod guard_scope;
pub mod lock_order;
pub mod rule_registry;
pub mod session_threads;
pub mod stats_seam;
pub mod sync_hygiene;

use crate::registry::Pass;

/// Every pass, in reporting order.
pub fn all() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(guard_scope::GuardScope),
        Box::new(lock_order::LockOrder),
        Box::new(sync_hygiene::SyncHygiene),
        Box::new(clock::Clock),
        Box::new(rule_registry::RuleRegistry),
        Box::new(session_threads::SessionThreads),
        Box::new(stats_seam::StatsSeam),
    ]
}
