//! rule-registry: the rewrite-rule registry (`phases.rs`, D13) stays
//! structurally sound and observable. Every `RuleDef` block must name
//! its rule, declare its `RewritePhase`, and be unique; and every
//! registered rule name must appear in the explain-golden tests — the
//! goldens pin the EXPLAIN rule trace, so a rule that never shows up
//! there is a rule whose firings nothing would catch regressing.
//!
//! Structure detection (block extents, `phase:` fields) runs on the
//! stripped `code` lines; rule names live inside string literals, so
//! they are extracted from the model's `raw` lines.

use crate::model::{FileModel, SourceModel};
use crate::registry::{Pass, Violation};

pub struct RuleRegistry;

/// One `RuleDef { … }` literal found in a registry file.
struct Block {
    /// 1-based line of the opening `RuleDef {`.
    line: usize,
    /// Rule name extracted from the block's `name: "…"` field.
    name: Option<String>,
    /// Whether the block declares a `phase: RewritePhase::…` field.
    has_phase: bool,
}

/// Scan one `RuleDef {` block starting on line `li`; returns the block
/// and the line index to resume scanning from.
fn scan_block(fm: &FileModel, li: usize) -> (Block, usize) {
    let mut block = Block {
        line: li + 1,
        name: None,
        has_phase: false,
    };
    let open = fm.code[li].find('{').unwrap_or(0);
    let mut depth = 0i32;
    for j in li..fm.code.len() {
        let start = if j == li { open } else { 0 };
        if block.name.is_none() {
            if let Some(p) = fm.code[j].find("name:") {
                // The literal itself is stripped from `code`; read it
                // from the raw twin of the same line.
                let raw = &fm.raw[j];
                if let Some(q1) = raw[p..].find('"').map(|k| p + k + 1) {
                    if let Some(q2) = raw[q1..].find('"').map(|k| q1 + k) {
                        block.name = Some(raw[q1..q2].to_string());
                    }
                }
            }
        }
        if fm.code[j].contains("phase:") && fm.code[j].contains("RewritePhase::") {
            block.has_phase = true;
        }
        for (i, c) in fm.code[j].char_indices() {
            if j == li && i < start {
                continue;
            }
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return (block, j + 1);
                    }
                }
                _ => {}
            }
        }
    }
    (block, fm.code.len())
}

impl Pass for RuleRegistry {
    fn name(&self) -> &'static str {
        "rule-registry"
    }

    fn description(&self) -> &'static str {
        "every RuleDef declares a phase, is uniquely named, and appears in the explain goldens"
    }

    fn run(&self, model: &SourceModel) -> Vec<Violation> {
        let mut out = Vec::new();
        let golden: String = model
            .files
            .iter()
            .filter(|f| f.stem == "explain_golden")
            .flat_map(|f| f.raw.iter().map(String::as_str))
            .collect::<Vec<_>>()
            .join("\n");

        let mut seen: Vec<String> = Vec::new();
        for fm in model.files.iter().filter(|f| f.stem == "phases") {
            let mut li = 0;
            while li < fm.code.len() {
                let line = &fm.code[li];
                // `RuleDef {` literals only — the struct definition and
                // impl blocks mention the type without an initializer.
                if !line.contains("RuleDef {") || line.contains("struct") || line.contains("impl") {
                    li += 1;
                    continue;
                }
                let (block, resume) = scan_block(fm, li);
                li = resume;
                let Some(name) = block.name else {
                    out.push(Violation {
                        pass: self.name(),
                        file: fm.path.clone(),
                        line: block.line,
                        message: "RuleDef literal has no `name: \"…\"` field".into(),
                    });
                    continue;
                };
                if !block.has_phase {
                    out.push(Violation {
                        pass: self.name(),
                        file: fm.path.clone(),
                        line: block.line,
                        message: format!(
                            "rule `{name}` declares no `phase: RewritePhase::…` field"
                        ),
                    });
                }
                if seen.contains(&name) {
                    out.push(Violation {
                        pass: self.name(),
                        file: fm.path.clone(),
                        line: block.line,
                        message: format!("rule `{name}` is registered twice"),
                    });
                }
                if golden.is_empty() {
                    out.push(Violation {
                        pass: self.name(),
                        file: fm.path.clone(),
                        line: block.line,
                        message: format!(
                            "rule `{name}` registered but no explain_golden test file \
                             was found to pin its trace"
                        ),
                    });
                } else if !golden.contains(&name) {
                    out.push(Violation {
                        pass: self.name(),
                        file: fm.path.clone(),
                        line: block.line,
                        message: format!(
                            "rule `{name}` never appears in the explain goldens; \
                             its EXPLAIN rule trace is unpinned"
                        ),
                    });
                }
                seen.push(name);
            }
        }
        out
    }
}
