//! sync-hygiene: the workspace locks with parking_lot (or the
//! loom-swappable `drugtree_sources::sync` shim in the serving stack),
//! never raw `std::sync` lock primitives.
//!
//! std's `Mutex`/`RwLock`/`Condvar` poison on panic, which forces
//! `.unwrap()` noise at every acquisition and turns one panicked
//! writer into a cascade; they also cannot be swapped for loom's
//! instrumented types. `Arc`, atomics, `Barrier`, `mpsc`, `OnceLock`,
//! and `PoisonError` remain fine — only the lock primitives are held
//! to the standard. `clippy.toml`'s `disallowed-types` is the backup
//! enforcement for type positions this token scan cannot see.

use crate::model::SourceModel;
use crate::registry::{Pass, Violation};

/// The std::sync names the workspace bans.
const DENY: &[&str] = &[
    "Mutex",
    "RwLock",
    "Condvar",
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
];

pub struct SyncHygiene;

impl Pass for SyncHygiene {
    fn name(&self) -> &'static str {
        "sync-hygiene"
    }

    fn description(&self) -> &'static str {
        "reject std::sync lock primitives where the workspace standard is parking_lot"
    }

    fn run(&self, model: &SourceModel) -> Vec<Violation> {
        let mut out = Vec::new();
        for fm in &model.files {
            for (li, line) in fm.code.iter().enumerate() {
                for name in qualified_hits(line) {
                    out.push(violation(self.name(), fm, li, name));
                }
                for name in grouped_import_hits(line) {
                    out.push(violation(self.name(), fm, li, name));
                }
            }
        }
        out
    }
}

fn violation(pass: &'static str, fm: &crate::model::FileModel, li: usize, name: &str) -> Violation {
    Violation {
        pass,
        file: fm.path.clone(),
        line: li + 1,
        message: format!(
            "`std::sync::{name}` is a poisoning lock; use `parking_lot::{name}` \
             (or `drugtree_sources::sync::{name}` in the serving stack so loom \
             can swap it) — see clippy.toml disallowed-types"
        ),
    }
}

/// Fully qualified uses: `std::sync::Mutex`, `use std::sync::RwLock;`.
fn qualified_hits(line: &str) -> Vec<&'static str> {
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(p) = line[from..].find("std::sync::") {
        let after = &line[from + p + "std::sync::".len()..];
        let ident: String = after
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if let Some(name) = DENY.iter().find(|d| **d == ident) {
            hits.push(*name);
        }
        from += p + "std::sync::".len();
    }
    hits
}

/// Brace-grouped imports: `use std::sync::{Arc, Mutex as M};`.
fn grouped_import_hits(line: &str) -> Vec<&'static str> {
    let trimmed = line.trim_start();
    let Some(rest) = trimmed.strip_prefix("use std::sync::{") else {
        return Vec::new();
    };
    let group = rest.split('}').next().unwrap_or(rest);
    group
        .split(',')
        .filter_map(|item| {
            // First path segment of the item, ignoring any `as` alias.
            let item = item.trim();
            let head = item.split("::").next().unwrap_or(item);
            let head = head.split_whitespace().next().unwrap_or(head);
            DENY.iter().find(|d| **d == head).copied()
        })
        .collect()
}
