//! guard-scope: guards that outlive the programmer's mental model.
//!
//! Two rules, both targeting the serving stack's non-reentrant
//! (parking_lot-shaped) locks:
//!
//! 1. **Same-lock re-acquisition under a live guard.** The worst shape
//!    is the `if let` scrutinee: Rust keeps a temporary born in an
//!    `if let`/`while let`/`match` scrutinee alive to the end of the
//!    *whole* statement — including the `else` branch — so
//!    `if let Some(v) = map.read().get(k) { … } else { map.write() … }`
//!    self-deadlocks (the PR-5 class). Named guards re-acquiring the
//!    same class inside their block are flagged the same way.
//!
//! 2. **Guards held across blocking points.** A guard (other than the
//!    one a `Condvar::wait` atomically releases) held across a wait,
//!    a coalescer `yield_now` window, or an `.await` stalls every
//!    thread contending for that lock.

use crate::model::{GuardKind, SourceModel};
use crate::registry::{Pass, Violation};

pub struct GuardScope;

impl Pass for GuardScope {
    fn name(&self) -> &'static str {
        "guard-scope"
    }

    fn description(&self) -> &'static str {
        "lock guards re-acquired while live (if-let scrutinee deadlocks) or held across blocking points"
    }

    fn run(&self, model: &SourceModel) -> Vec<Violation> {
        let mut out = Vec::new();
        for fm in &model.files {
            for a in &fm.acquisitions {
                if a.kind == GuardKind::Temporary && a.extent_end == a.line {
                    continue;
                }
                // Rule 1: same class acquired again inside the extent.
                for b in &fm.acquisitions {
                    if std::ptr::eq(a, b) || b.class != a.class {
                        continue;
                    }
                    let inside = (b.line > a.line && b.line <= a.extent_end)
                        || (b.line == a.line && b.col > a.col && a.extent_end >= a.line);
                    if !inside {
                        continue;
                    }
                    let origin = match a.kind {
                        GuardKind::Scrutinee => format!(
                            "guard from the `if let`/`match` scrutinee at line {} is still \
                             live here (scrutinee temporaries last the whole statement, \
                             else-branches included)",
                            a.line
                        ),
                        GuardKind::Named => format!(
                            "guard `{}` acquired at line {} is still live here",
                            a.binding.as_deref().unwrap_or("_"),
                            a.line
                        ),
                        GuardKind::Temporary => format!(
                            "guard from the statement at line {} is still live here",
                            a.line
                        ),
                    };
                    out.push(Violation {
                        pass: self.name(),
                        file: fm.path.clone(),
                        line: b.line,
                        message: format!(
                            "`{}` on `{}` while a {origin}; these locks are non-reentrant — \
                             bind the first lookup to a local (or drop the guard) before \
                             re-acquiring",
                            b.mode.verb(),
                            b.class,
                        ),
                    });
                }
                // Rule 2: guard live across a blocking point.
                if a.kind == GuardKind::Temporary {
                    continue;
                }
                for w in &fm.waits {
                    let inside = (w.line > a.line && w.line <= a.extent_end)
                        || (w.line == a.line && w.col > a.col);
                    if !inside {
                        continue;
                    }
                    if w.what == "Condvar::wait" && a.binding.is_some() && a.binding == w.exempt {
                        continue; // the wait releases exactly this guard
                    }
                    out.push(Violation {
                        pass: self.name(),
                        file: fm.path.clone(),
                        line: w.line,
                        message: format!(
                            "guard `{}` on `{}` (line {}) held across a {}; blocking while \
                             holding the lock stalls every contending thread — drop it first",
                            a.binding.as_deref().unwrap_or("<scrutinee temporary>"),
                            a.class,
                            a.line,
                            w.what,
                        ),
                    });
                }
            }
        }
        out
    }
}
