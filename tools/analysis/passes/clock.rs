//! clock-discipline: every simulated latency is charged to the
//! deterministic `VirtualClock`, never slept, and the one sanctioned
//! wall-clock read is `drugtree_sources::clock::wall_now()`. A raw
//! `Instant::now()` / `SystemTime::now()` anywhere else silently makes
//! runs machine-dependent, so this pass rejects them. The clock module
//! itself is exempted via `tools/analysis/allow/clock-discipline.allow`.
//!
//! (This is the original `repo-lint` clock lint, migrated into the
//! pass registry; it now also benefits from the model's comment/string
//! stripping, so doc examples no longer need phrasing care.)

use crate::model::SourceModel;
use crate::registry::{Pass, Violation};

pub struct Clock;

/// Forbidden call patterns. Assembled at runtime so this file would
/// not flag itself even if the tools tree were ever scanned.
fn forbidden_patterns() -> Vec<String> {
    ["Instant", "SystemTime"]
        .iter()
        .map(|ty| format!("{ty}::now()"))
        .collect()
}

impl Pass for Clock {
    fn name(&self) -> &'static str {
        "clock-discipline"
    }

    fn description(&self) -> &'static str {
        "reject raw Instant::now()/SystemTime::now() outside the virtual-clock module"
    }

    fn run(&self, model: &SourceModel) -> Vec<Violation> {
        let patterns = forbidden_patterns();
        let mut out = Vec::new();
        for fm in &model.files {
            for (li, line) in fm.code.iter().enumerate() {
                for pat in &patterns {
                    if line.contains(pat.as_str()) {
                        out.push(Violation {
                            pass: self.name(),
                            file: fm.path.clone(),
                            line: li + 1,
                            message: format!(
                                "`{pat}` outside crates/sources/src/clock.rs; use \
                                 drugtree_sources::clock::wall_now() (harness timing) \
                                 or the VirtualClock (simulated latency)"
                            ),
                        });
                    }
                }
            }
        }
        out
    }
}
