//! stats-seam: selectivity flows through the learned-statistics seam.
//! The optimizer once called `OverlayStats::predicate_selectivity`
//! directly, which made the learned-statistics loop (DESIGN.md §4j)
//! unpluggable: any new call site would silently bypass the feedback
//! loop and plan from nominal histograms even when fresher learned
//! estimates existed. All selectivity lookups now go through
//! `StatsView` (`crates/query/src/adaptive/seam.rs`), which consults
//! learned statistics first and falls back to the nominal overlay.
//! This pass keeps direct calls from creeping back: outside the stats
//! module itself and the seam, `.predicate_selectivity(` is a
//! violation.

use crate::model::SourceModel;
use crate::registry::{Pass, Violation};

pub struct StatsSeam;

/// The only files allowed to call the nominal estimator directly: the
/// module that defines it, and the seam that wraps it.
const SEAM_FILES: [&str; 2] = [
    "crates/query/src/stats.rs",
    "crates/query/src/adaptive/seam.rs",
];

impl Pass for StatsSeam {
    fn name(&self) -> &'static str {
        "stats-seam"
    }

    fn description(&self) -> &'static str {
        "forbid direct predicate_selectivity calls outside the learned-statistics seam (use StatsView)"
    }

    fn run(&self, model: &SourceModel) -> Vec<Violation> {
        let mut out = Vec::new();
        for fm in &model.files {
            if SEAM_FILES.contains(&fm.path.as_str()) {
                continue;
            }
            for (li, line) in fm.code.iter().enumerate() {
                if line.contains(".predicate_selectivity(") {
                    out.push(Violation {
                        pass: self.name(),
                        file: fm.path.clone(),
                        line: li + 1,
                        message: String::from(
                            "direct predicate_selectivity call bypasses the learned-statistics \
                             seam; route the estimate through StatsView \
                             (crates/query/src/adaptive/seam.rs) so learned statistics can \
                             override the nominal histogram",
                        ),
                    });
                }
            }
        }
        out
    }
}
