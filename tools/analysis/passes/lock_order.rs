//! lock-order: build the cross-crate lock-ordering graph and reject
//! both cycles and acquisitions that contradict the annotated
//! canonical order (`tools/analysis/lock_order.canonical`).
//!
//! An edge `a → b` means some scope acquires lock class `b` while a
//! guard on class `a` is still live. Deadlock needs a cycle in this
//! graph (two threads taking the same pair in opposite orders), so the
//! pass flags: (1) any directed cycle, with the witnessing sites, and
//! (2) any edge that runs *backwards* through the canonical order —
//! even before a second thread shows up to complete the cycle.

use crate::model::{GuardKind, SourceModel};
use crate::registry::{Pass, Violation};
use std::collections::BTreeMap;

/// The annotated canonical order, compiled in so fixture scans and
/// repo scans agree on it regardless of `--root`.
const CANONICAL: &str = include_str!("../lock_order.canonical");

pub struct LockOrder;

/// One observed nested acquisition.
struct Edge {
    file: String,
    outer_line: usize,
    inner_line: usize,
}

fn canonical_order() -> Vec<String> {
    CANONICAL
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(str::to_string)
        .collect()
}

impl Pass for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "cross-crate lock-ordering graph: reject cycles and canonical-order reversals"
    }

    fn run(&self, model: &SourceModel) -> Vec<Violation> {
        let canon = canonical_order();
        let rank: BTreeMap<&str, usize> = canon
            .iter()
            .enumerate()
            .map(|(i, c)| (c.as_str(), i))
            .collect();

        // Collect every nested acquisition as a directed edge.
        let mut edges: BTreeMap<(String, String), Vec<Edge>> = BTreeMap::new();
        for fm in &model.files {
            for a in &fm.acquisitions {
                if a.kind == GuardKind::Temporary && a.extent_end == a.line {
                    continue; // statement temporaries nest only same-line
                }
                for b in &fm.acquisitions {
                    if std::ptr::eq(a, b) || b.class == a.class {
                        continue;
                    }
                    let inside = (b.line > a.line && b.line <= a.extent_end)
                        || (b.line == a.line && b.col > a.col);
                    if inside {
                        edges
                            .entry((a.class.clone(), b.class.clone()))
                            .or_default()
                            .push(Edge {
                                file: fm.path.clone(),
                                outer_line: a.line,
                                inner_line: b.line,
                            });
                    }
                }
            }
        }

        let mut out = Vec::new();

        // (2) Canonical-order reversals.
        for ((from, to), sites) in &edges {
            let (Some(&rf), Some(&rt)) = (rank.get(from.as_str()), rank.get(to.as_str())) else {
                continue;
            };
            if rf > rt {
                for e in sites {
                    out.push(Violation {
                        pass: self.name(),
                        file: e.file.clone(),
                        line: e.inner_line,
                        message: format!(
                            "`{to}` acquired while `{from}` (line {}) is held, but the \
                             canonical order (tools/analysis/lock_order.canonical) puts \
                             `{to}` before `{from}` — swap the acquisitions or drop the \
                             outer guard first",
                            e.outer_line,
                        ),
                    });
                }
            }
        }

        // (1) Cycles in the full graph (including classes the canonical
        // file does not rank).
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for (from, to) in edges.keys() {
            adj.entry(from.as_str()).or_default().push(to.as_str());
        }
        for cycle in find_cycles(&adj) {
            // Witness: the edge closing the cycle.
            let closing = (cycle[cycle.len() - 1].to_string(), cycle[0].to_string());
            let site = edges.get(&closing).and_then(|s| s.first());
            let (file, line) = site.map_or((String::from("<graph>"), 0), |e| {
                (e.file.clone(), e.inner_line)
            });
            out.push(Violation {
                pass: self.name(),
                file,
                line,
                message: format!(
                    "lock-order cycle: {} -> {} — two threads taking this ring from \
                     different entry points deadlock; break one edge or rank the \
                     classes in lock_order.canonical",
                    cycle.join(" -> "),
                    cycle[0],
                ),
            });
        }
        out
    }
}

/// Every elementary cycle reachable in `adj`, deduplicated by rotating
/// each cycle to start at its lexicographically smallest node.
fn find_cycles<'a>(adj: &BTreeMap<&'a str, Vec<&'a str>>) -> Vec<Vec<&'a str>> {
    let mut cycles: Vec<Vec<&str>> = Vec::new();
    let mut seen: Vec<Vec<&str>> = Vec::new();
    for &start in adj.keys() {
        let mut stack: Vec<&str> = vec![start];
        dfs(adj, start, &mut stack, &mut cycles, &mut seen);
    }
    cycles
}

fn dfs<'a>(
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    node: &'a str,
    stack: &mut Vec<&'a str>,
    cycles: &mut Vec<Vec<&'a str>>,
    seen: &mut Vec<Vec<&'a str>>,
) {
    let Some(nexts) = adj.get(node) else {
        return;
    };
    for &next in nexts {
        if let Some(pos) = stack.iter().position(|&n| n == next) {
            let cycle = canonical_rotation(&stack[pos..]);
            if !seen.contains(&cycle) {
                seen.push(cycle.clone());
                cycles.push(cycle);
            }
        } else if stack.len() < 32 {
            stack.push(next);
            dfs(adj, next, stack, cycles, seen);
            stack.pop();
        }
    }
}

fn canonical_rotation<'a>(cycle: &[&'a str]) -> Vec<&'a str> {
    let min = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| **s)
        .map_or(0, |(i, _)| i);
    let mut rotated = Vec::with_capacity(cycle.len());
    rotated.extend_from_slice(&cycle[min..]);
    rotated.extend_from_slice(&cycle[..min]);
    rotated
}
