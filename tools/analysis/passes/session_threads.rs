//! session-threads: the serving layer scales by scheduling, not by
//! spawning. `crates/core/src/serve.rs` once ran one OS thread per
//! mobile session, which capped fleets at a few hundred sessions and
//! made replays nondeterministic; the event-driven scheduler
//! (`crates/core/src/sched.rs`) replaced it with poll-able session
//! machines over a fixed worker pool. This pass keeps the old pattern
//! from creeping back: any thread spawn in the serving façade is a
//! violation. The scheduler module itself may spawn its bounded worker
//! pool — that count is fixed by configuration, not by fleet size.

use crate::model::SourceModel;
use crate::registry::{Pass, Violation};

pub struct SessionThreads;

/// The one file the serving façade lives in.
const SERVE_FACADE: &str = "crates/core/src/serve.rs";

/// Spawn forms the façade must not contain: bare/qualified
/// `thread::spawn` and scoped `.spawn(` closures alike.
fn is_spawn(line: &str) -> bool {
    line.contains("thread::spawn") || line.contains(".spawn(")
}

impl Pass for SessionThreads {
    fn name(&self) -> &'static str {
        "session-threads"
    }

    fn description(&self) -> &'static str {
        "forbid per-session OS-thread spawns in the serving facade (use the event scheduler)"
    }

    fn run(&self, model: &SourceModel) -> Vec<Violation> {
        let mut out = Vec::new();
        for fm in &model.files {
            if fm.path != SERVE_FACADE {
                continue;
            }
            for (li, line) in fm.code.iter().enumerate() {
                if is_spawn(line) {
                    out.push(Violation {
                        pass: self.name(),
                        file: fm.path.clone(),
                        line: li + 1,
                        message: String::from(
                            "thread spawn in the serving facade; sessions are poll-able \
                             machines driven by the event scheduler (crates/core/src/sched.rs), \
                             never one OS thread each",
                        ),
                    });
                }
            }
        }
        out
    }
}
