// Seeded violations for the clock-discipline pass: raw wall-clock
// reads that would make runs machine-dependent.

fn naive_timing() -> std::time::Duration {
    let start = std::time::Instant::now();
    expensive();
    start.elapsed()
}

fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
