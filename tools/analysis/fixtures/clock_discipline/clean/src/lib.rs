// Clean twin for the clock-discipline pass: timing flows through the
// sanctioned deterministic clock API — the pass must stay silent.

fn timed() -> u64 {
    let start = drugtree_sources::clock::wall_now();
    expensive();
    drugtree_sources::clock::wall_now().saturating_sub(start)
}

fn simulated(clock: &drugtree_sources::VirtualClock) {
    clock.charge_nanos(1_500_000);
}
