//! Seeded violation: the optimizer asks the overlay for a nominal
//! selectivity directly instead of going through StatsView, so a
//! learned estimate for the same predicate would never be consulted.

fn order_by_selectivity(&self, pred: &Predicate) -> f64 {
    // BAD: bypasses the learned-statistics seam.
    self.stats.predicate_selectivity(pred)
}
