//! Clean twin: the optimizer routes every selectivity lookup through
//! the StatsView seam, never the overlay directly.

fn order_by_selectivity(&self, pred: &Predicate) -> f64 {
    self.stats_view().selectivity(pred)
}
