//! Clean twin: the seam itself is the sanctioned caller of the
//! nominal estimator — learned statistics are tried first, and the
//! overlay is the fallback.

impl StatsView<'_> {
    fn nominal(&self, pred: &Predicate) -> f64 {
        self.stats.predicate_selectivity(pred)
    }
}
