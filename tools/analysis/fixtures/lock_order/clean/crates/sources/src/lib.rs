// Clean twin for the lock-order pass: the one nested acquisition
// follows the canonical order (batches before state) and the graph is
// acyclic, so the pass must stay silent.

impl Coordinator {
    fn close(&self, slot: &BatchSlot) {
        let mut batches = self.batches.lock();
        let mut st = slot.state.lock();
        st.phase = Phase::Done;
        batches.remove(&self.key);
    }

    // Sequential (non-nested) acquisitions in either order are fine:
    // the first guard is gone before the second lock is taken.
    fn sequential(&self, slot: &BatchSlot) {
        let st = slot.state.lock();
        drop(st);
        let mut batches = self.batches.lock();
        batches.clear();
    }
}
