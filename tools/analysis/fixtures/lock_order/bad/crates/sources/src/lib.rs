// Seeded violations for the lock-order pass. The path mimics the real
// sources crate so class names land in the canonical order's
// namespace (`sources:batches`, `sources:state`).

impl Coordinator {
    // BAD (canonical reversal): the canonical order ranks batches
    // before state, so taking batches under a live state guard runs
    // backwards through it.
    fn close_wrong_order(&self, slot: &BatchSlot) {
        let mut st = slot.state.lock();
        let mut batches = self.batches.lock();
        st.phase = Phase::Done;
        batches.remove(&self.key);
    }
}

impl Pair {
    // BAD (cycle): alpha -> beta here, beta -> alpha below; two
    // threads entering from different ends deadlock. Neither class is
    // ranked canonically — the cycle check alone must catch this.
    fn ab(&self) -> usize {
        let a = self.alpha.lock();
        let b = self.beta.lock();
        a.len() + b.len()
    }

    fn ba(&self) -> usize {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        a.len() + b.len()
    }
}
