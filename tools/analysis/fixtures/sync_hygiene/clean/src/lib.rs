// Clean twin for the sync-hygiene pass: parking_lot locks plus the
// std::sync types that remain sanctioned (Arc, atomics, Barrier,
// mpsc, OnceLock, PoisonError) — the pass must stay silent.

use parking_lot::{Condvar, Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Barrier, OnceLock};

struct Shared {
    state: RwLock<Vec<u32>>,
    queue: Mutex<Vec<u32>>,
    cv: Condvar,
    epoch: AtomicU64,
}

fn fan_out(n: usize) -> Arc<Barrier> {
    let (tx, _rx) = mpsc::channel::<u32>();
    drop(tx);
    Arc::new(Barrier::new(n))
}
