// Seeded violations for the sync-hygiene pass: std's poisoning lock
// primitives in every import shape the scanner understands.

use std::sync::Condvar;
use std::sync::{Arc, Mutex};

struct Shared {
    state: std::sync::RwLock<Vec<u32>>,
    gate: Mutex<bool>,
    cv: Condvar,
}

fn guard(m: &std::sync::Mutex<u32>) -> std::sync::MutexGuard<'_, u32> {
    m.lock().unwrap()
}
