//! Clean counterpart: the serving facade hands the fleet to the event
//! scheduler and never spawns. (A comment mentioning thread::spawn is
//! fine — the model strips comments before the pass runs.)

pub fn run(workloads: &[usize]) -> Vec<usize> {
    // The scheduler owns the worker pool; the facade just forwards.
    schedule(workloads)
}

fn schedule(workloads: &[usize]) -> Vec<usize> {
    workloads.iter().map(|w| w * 2).collect()
}
