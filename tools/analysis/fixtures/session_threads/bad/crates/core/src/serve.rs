//! Seeded violation: the pre-scheduler serving loop, one OS thread per
//! session. Fleet size = thread count, replays race, 16k sessions
//! would need 16k stacks.

pub fn run(workloads: &[usize]) -> Vec<usize> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| scope.spawn(move || *w * 2))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

pub fn run_detached(work: usize) {
    std::thread::spawn(move || {
        let _ = work;
    });
}
