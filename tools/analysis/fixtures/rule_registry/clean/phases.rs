//! Clean twin: every rule names its phase and is pinned by the golden.

pub enum RewritePhase {
    Analyze,
    Lower,
}

pub struct RuleDef {
    pub name: &'static str,
    pub phase: RewritePhase,
    pub description: &'static str,
}

pub const REGISTRY: &[RuleDef] = &[
    RuleDef {
        name: "interval_rewrite",
        phase: RewritePhase::Analyze,
        description: "resolve the scope to a leaf interval",
    },
    RuleDef {
        name: "finish_build",
        phase: RewritePhase::Lower,
        description: "construct the finishing operator",
    },
];
