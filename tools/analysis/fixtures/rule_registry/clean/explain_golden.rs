//! Golden pinning both registered rules' trace lines.

#[test]
fn golden_trace() {
    let expected = "\
RuleTrace analyze/1: interval_rewrite=changed
RuleTrace lower/1: finish_build=changed";
    assert_eq!(render(), expected);
}
