//! Golden pinning only `interval_rewrite`; the second registered rule
//! is deliberately absent.

#[test]
fn golden_trace() {
    let expected = "RuleTrace analyze/1: interval_rewrite=changed";
    assert_eq!(render(), expected);
}
