//! Seeded-violation twin for the rule-registry pass: `ghost_rule`
//! declares no phase and never appears in the goldens, and
//! `interval_rewrite` is registered twice.

pub enum RewritePhase {
    Analyze,
    Lower,
}

pub struct RuleDef {
    pub name: &'static str,
    pub phase: RewritePhase,
    pub description: &'static str,
}

pub const REGISTRY: &[RuleDef] = &[
    RuleDef {
        name: "interval_rewrite",
        phase: RewritePhase::Analyze,
        description: "resolve the scope to a leaf interval",
    },
    RuleDef {
        name: "ghost_rule",
        description: "no phase field, unpinned by any golden",
    },
    RuleDef {
        name: "interval_rewrite",
        phase: RewritePhase::Lower,
        description: "duplicate registration",
    },
];
