// Seeded violations for the guard-scope pass: every shape here must be
// flagged (asserted by `repo-lint --self-test` and the bin's tests).
// Fixtures are text corpora for the analyzer, never compiled.

struct Cache {
    map: parking_lot::RwLock<std::collections::BTreeMap<u32, u32>>,
    queue: parking_lot::Mutex<Vec<u32>>,
    cv: parking_lot::Condvar,
}

impl Cache {
    // BAD: the `if let` scrutinee's read guard lives through the else
    // branch, so the write() self-deadlocks (the PR-5 class).
    fn get_or_insert(&self, k: u32) -> u32 {
        if let Some(v) = self.map.read().get(&k) {
            *v
        } else {
            *self.map.write().entry(k).or_insert(0)
        }
    }

    // BAD: named guard still live when the same lock is re-acquired.
    fn double_lock(&self) -> usize {
        let q = self.queue.lock();
        let extra = self.queue.lock().len();
        q.len() + extra
    }

    // BAD: `held` is not the guard the Condvar::wait releases, so it
    // stays locked for the whole blocking wait.
    fn wait_holding_other(&self) {
        let held = self.map.read();
        let mut q = self.queue.lock();
        while q.is_empty() {
            self.cv.wait(&mut q);
        }
        drop(held);
    }

    // BAD: guard held across a coalescer-style scheduler yield.
    fn yield_holding(&self) {
        let q = self.queue.lock();
        std::thread::yield_now();
        drop(q);
    }
}
