// Clean twin for the guard-scope pass: every shape here is the
// sanctioned fix for a pattern in bad/; the pass must stay silent.

struct Cache {
    map: parking_lot::RwLock<std::collections::BTreeMap<u32, u32>>,
    queue: parking_lot::Mutex<Vec<u32>>,
    cv: parking_lot::Condvar,
}

impl Cache {
    // OK: early-return `if let` — with no else branch the scrutinee
    // temporary dies with the statement, and the write lock is taken
    // only after it is gone.
    fn get_or_insert(&self, k: u32) -> u32 {
        if let Some(v) = self.map.read().get(&k) {
            return *v;
        }
        *self.map.write().entry(k).or_insert(0)
    }

    // OK: bind the fast-path lookup to a local first, then branch on
    // the owned value (the PR-5 fix shape).
    fn get_or_default(&self, k: u32) -> u32 {
        let existing = self.map.read().get(&k).copied();
        match existing {
            Some(v) => v,
            None => *self.map.write().entry(k).or_insert(0),
        }
    }

    // OK: the first guard is dropped before the lock is re-taken.
    fn sequential(&self) -> usize {
        let q = self.queue.lock();
        let n = q.len();
        drop(q);
        self.queue.lock().len() + n
    }

    // OK: the wait releases exactly the guard being held.
    fn wait(&self) {
        let mut q = self.queue.lock();
        while q.is_empty() {
            self.cv.wait(&mut q);
        }
    }

    // OK: yield first, lock after — nothing is held across the yield.
    fn yield_then_lock(&self) -> usize {
        std::thread::yield_now();
        let q = self.queue.lock();
        q.len()
    }
}
