//! repo-lint: the repository's multi-pass concurrency/determinism
//! static-analysis suite (std-only, no dependencies). See DESIGN.md
//! §D11.
//!
//! ```sh
//! cargo run --bin repo-lint                 # all passes over the repo
//! cargo run --bin repo-lint -- --json       # machine-readable output
//! cargo run --bin repo-lint -- --pass guard-scope
//! cargo run --bin repo-lint -- --list       # registered passes
//! cargo run --bin repo-lint -- --self-test  # passes vs. their fixtures
//! cargo run --bin repo-lint -- --root DIR   # scan another tree
//! ```
//!
//! Exit codes: 0 clean, 1 violations (or self-test failure), 2 usage
//! error. Every pass loads `tools/analysis/allow/<pass>.allow` from
//! the scan root; suppressed findings are counted in the output so
//! allowlists cannot silently grow.

mod model;
mod passes;
mod registry;

use model::SourceModel;
use registry::{Allowlist, Violation};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    json: bool,
    only: Vec<String>,
    list: bool,
    self_test: bool,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if opts.list {
        for pass in passes::all() {
            println!("{:<16} {}", pass.name(), pass.description());
        }
        return ExitCode::SUCCESS;
    }

    if opts.self_test {
        return self_test(&opts.root);
    }

    let registered = passes::all();
    let selected: Vec<_> = registered
        .iter()
        .filter(|p| opts.only.is_empty() || opts.only.iter().any(|n| n == p.name()))
        .collect();
    if selected.is_empty() {
        eprintln!("error: no pass matches {:?}; try --list", opts.only);
        return ExitCode::from(2);
    }

    let model = SourceModel::build(&opts.root);
    let allow_dir = opts.root.join("tools/analysis/allow");
    let mut report: Vec<(String, Vec<Violation>, usize)> = Vec::new();
    for pass in &selected {
        let allow = Allowlist::load(&allow_dir, pass.name());
        let raw = pass.run(&model);
        let (kept, suppressed): (Vec<_>, Vec<_>) = raw.into_iter().partition(|v| !allow.permits(v));
        report.push((pass.name().to_string(), kept, suppressed.len()));
    }

    let total: usize = report.iter().map(|(_, v, _)| v.len()).sum();
    if opts.json {
        print_json(&report, model.files.len());
    } else {
        print_human(&report, model.files.len());
    }
    if total > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: default_root(),
        json: false,
        only: Vec::new(),
        list: false,
        self_test: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--list" => opts.list = true,
            "--self-test" => opts.self_test = true,
            "--pass" => {
                let name = iter
                    .next()
                    .ok_or("error: --pass needs a pass name; try --list")?;
                opts.only.push(name.clone());
            }
            "--root" => {
                let dir = iter.next().ok_or("error: --root needs a directory")?;
                opts.root = PathBuf::from(dir);
            }
            "--help" | "-h" => {
                return Err(String::from(
                    "usage: repo-lint [--json] [--pass NAME]... [--list] [--self-test] [--root DIR]",
                ));
            }
            other => return Err(format!("error: unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// The workspace root: where Cargo ran us from, falling back to the
/// current directory when invoked directly via rustc.
fn default_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        return PathBuf::from(dir);
    }
    std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."))
}

fn print_human(report: &[(String, Vec<Violation>, usize)], files: usize) {
    let mut total = 0usize;
    for (name, violations, suppressed) in report {
        for v in violations {
            eprintln!("{name}: {}:{}: {}", v.file, v.line, v.message);
        }
        total += violations.len();
        let supp = if *suppressed > 0 {
            format!(", {suppressed} allowlisted")
        } else {
            String::new()
        };
        println!(
            "{name}: {}{supp}",
            if violations.is_empty() {
                String::from("ok")
            } else {
                format!("{} violation(s)", violations.len())
            }
        );
    }
    if total > 0 {
        eprintln!("repo-lint: {total} violation(s) across {files} file(s)");
    } else {
        println!("repo-lint: ok ({files} files clean)");
    }
}

fn print_json(report: &[(String, Vec<Violation>, usize)], files: usize) {
    use registry::json_escape as esc;
    let mut out = String::from("{\n  \"tool\": \"repo-lint\",\n");
    out.push_str(&format!("  \"files_scanned\": {files},\n  \"passes\": [\n"));
    for (i, (name, violations, suppressed)) in report.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"violations\": {}, \"suppressed\": {}}}{}\n",
            esc(name),
            violations.len(),
            suppressed,
            if i + 1 < report.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"violations\": [\n");
    let all: Vec<&Violation> = report.iter().flat_map(|(_, v, _)| v).collect();
    for (i, v) in all.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"pass\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            esc(v.pass),
            esc(&v.file),
            v.line,
            esc(&v.message),
            if i + 1 < all.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}");
    println!("{out}");
}

/// Run every pass against its seeded-violation corpus: `bad/` must
/// produce at least one violation from that pass, `clean/` none.
fn self_test(root: &Path) -> ExitCode {
    let fixtures = root.join("tools/analysis/fixtures");
    let mut failures = 0usize;
    for pass in passes::all() {
        let dir = fixtures.join(pass.name().replace('-', "_"));
        for (sub, want_violations) in [("bad", true), ("clean", false)] {
            let tree = dir.join(sub);
            if !tree.is_dir() {
                eprintln!(
                    "self-test: {}: missing fixture {}",
                    pass.name(),
                    tree.display()
                );
                failures += 1;
                continue;
            }
            let model = SourceModel::build(&tree);
            let found = pass.run(&model);
            let ok = if want_violations {
                !found.is_empty()
            } else {
                found.is_empty()
            };
            if ok {
                println!(
                    "self-test: {}: {sub}/ ok ({} violation(s))",
                    pass.name(),
                    found.len()
                );
            } else {
                failures += 1;
                eprintln!(
                    "self-test: {}: {sub}/ FAILED (expected {}, got {})",
                    pass.name(),
                    if want_violations {
                        "violations"
                    } else {
                        "none"
                    },
                    found.len()
                );
                for v in &found {
                    eprintln!("  {}:{}: {}", v.file, v.line, v.message);
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("self-test: {failures} failure(s)");
        ExitCode::FAILURE
    } else {
        println!("self-test: all passes match their fixtures");
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use model::{analyze_file, GuardKind, Mode};

    fn manifest_root() -> PathBuf {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
    }

    fn fixture(pass: &str, sub: &str) -> SourceModel {
        let dir = manifest_root()
            .join("tools/analysis/fixtures")
            .join(pass.replace('-', "_"))
            .join(sub);
        assert!(dir.is_dir(), "missing fixture tree {}", dir.display());
        SourceModel::build(&dir)
    }

    /// Each pass flags its seeded-violation corpus and stays silent on
    /// the clean twin — the `--self-test` contract, run under `cargo
    /// test` so CI cannot drift.
    #[test]
    fn every_pass_matches_its_fixtures() {
        for pass in passes::all() {
            let bad = pass.run(&fixture(pass.name(), "bad"));
            assert!(
                !bad.is_empty(),
                "{}: seeded violations not flagged",
                pass.name()
            );
            let clean = pass.run(&fixture(pass.name(), "clean"));
            assert!(
                clean.is_empty(),
                "{}: clean twin flagged: {:?}",
                pass.name(),
                clean
            );
        }
    }

    /// The real tree is clean: running every pass over the repository
    /// with its allowlists yields zero violations. This is the same
    /// check CI's verify step performs via `cargo run --bin repo-lint`.
    #[test]
    fn repository_tree_is_clean() {
        let root = manifest_root();
        let model = SourceModel::build(&root);
        assert!(model.files.len() > 50, "repo scan found too few files");
        let allow_dir = root.join("tools/analysis/allow");
        for pass in passes::all() {
            let allow = Allowlist::load(&allow_dir, pass.name());
            let kept: Vec<_> = pass
                .run(&model)
                .into_iter()
                .filter(|v| !allow.permits(v))
                .collect();
            assert!(kept.is_empty(), "{}: {:?}", pass.name(), kept);
        }
    }

    #[test]
    fn model_extracts_named_guards_and_extents() {
        let src = "\
fn f(&self) {
    let mut st = self.state.lock();
    st.push(1);
    drop(st);
    self.other.lock().clear();
}
";
        let fm = analyze_file("crates/demo/src/a.rs".into(), src);
        assert_eq!(fm.krate, "demo");
        assert_eq!(fm.acquisitions.len(), 2);
        let st = &fm.acquisitions[0];
        assert_eq!(st.class, "demo:state");
        assert_eq!(st.kind, GuardKind::Named);
        assert_eq!(st.binding.as_deref(), Some("st"));
        assert_eq!(st.extent_end, 4, "drop(st) ends the guard");
        let other = &fm.acquisitions[1];
        assert_eq!(other.kind, GuardKind::Temporary);
        assert_eq!(other.extent_end, other.line);
    }

    #[test]
    fn model_tracks_scrutinee_through_else() {
        let src = "\
fn f(&self) {
    if let Some(v) = self.map.read().get(&1) {
        use_it(v);
    } else {
        self.map.write().insert(1, 2);
    }
}
";
        let fm = analyze_file("crates/demo/src/b.rs".into(), src);
        let read = &fm.acquisitions[0];
        assert_eq!(read.kind, GuardKind::Scrutinee);
        assert_eq!(read.mode, Mode::Read);
        assert_eq!(read.extent_end, 6, "scrutinee lives through the else block");
    }

    #[test]
    fn model_ends_early_return_scrutinee_at_then_block() {
        let src = "\
fn f(&self) {
    if let Some(v) = self.map.read().get(&1) {
        return v.clone();
    }
    self.map.write().insert(1, 2);
}
";
        let fm = analyze_file("crates/demo/src/c.rs".into(), src);
        let read = &fm.acquisitions[0];
        assert_eq!(
            read.extent_end, 4,
            "no else: temporary dies with the statement"
        );
        let write = &fm.acquisitions[1];
        assert!(write.line > read.extent_end, "write is outside the extent");
    }

    #[test]
    fn strip_preserves_columns_and_removes_strings() {
        let stripped = model::strip_code("let a = \"x.lock()\"; // b.lock()\nc.lock();");
        let lines: Vec<&str> = stripped.lines().collect();
        assert!(!lines[0].contains(".lock()"));
        assert_eq!(lines[1], "c.lock();");
        assert_eq!(lines[0].len(), "let a = \"x.lock()\"; // b.lock()".len());
    }

    #[test]
    fn allowlist_globs_and_details_filter() {
        assert!(registry::glob_match(
            "crates/*/src/a.rs",
            "crates/query/src/a.rs"
        ));
        assert!(registry::glob_match("*", "anything/at/all.rs"));
        assert!(!registry::glob_match("crates/*.rs", "src/lib.rs"));
        assert!(registry::glob_match("src/lib.rs", "src/lib.rs"));
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(registry::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
