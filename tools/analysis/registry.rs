//! Pass registry plumbing: the [`Pass`] trait, [`Violation`] records,
//! per-pass allowlists, and machine-readable JSON output.
//!
//! Allowlist files live under `tools/analysis/allow/<pass>.allow`, one
//! entry per line:
//!
//! ```text
//! # comment
//! <path-glob> [message substring]
//! ```
//!
//! The path glob supports `*`; the optional remainder of the line must
//! appear verbatim in the violation message for the entry to match.
//! Every allowlist entry is a debt record — it names a finding the
//! team has looked at and accepted, not one the tool should un-learn.

use crate::model::SourceModel;
use std::path::Path;

/// One finding from one pass.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Emitting pass name (kebab-case).
    pub pass: &'static str,
    /// Scan-root-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
}

/// A registered analysis pass.
pub trait Pass {
    /// Kebab-case name (`guard-scope`), also the allowlist file stem.
    fn name(&self) -> &'static str;
    /// One-line description for `--list`.
    fn description(&self) -> &'static str;
    /// Run over the model; return every violation found (allowlist
    /// filtering happens in the driver, not here).
    fn run(&self, model: &SourceModel) -> Vec<Violation>;
}

/// Parsed allowlist for one pass.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, Option<String>)>,
}

impl Allowlist {
    /// Load `<dir>/<pass>.allow`; a missing file is an empty list.
    pub fn load(dir: &Path, pass: &str) -> Allowlist {
        let path = dir.join(format!("{pass}.allow"));
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Allowlist::default();
        };
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .map(|l| match l.split_once(char::is_whitespace) {
                Some((glob, detail)) => (glob.to_string(), Some(detail.trim().to_string())),
                None => (l.to_string(), None),
            })
            .collect();
        Allowlist { entries }
    }

    /// Does any entry cover this violation?
    pub fn permits(&self, v: &Violation) -> bool {
        self.entries.iter().any(|(glob, detail)| {
            glob_match(glob, &v.file)
                && detail
                    .as_ref()
                    .is_none_or(|d| v.message.contains(d.as_str()))
        })
    }
}

/// Minimal `*`-glob matcher (no `?`, no character classes).
pub fn glob_match(pat: &str, s: &str) -> bool {
    if !pat.contains('*') {
        return pat == s;
    }
    let parts: Vec<&str> = pat.split('*').collect();
    let mut pos = 0usize;
    let last = parts.len() - 1;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            if !s.starts_with(part) {
                return false;
            }
            pos = part.len();
        } else if i == last {
            return s.len() >= pos + part.len() && s.ends_with(part);
        } else {
            match s[pos..].find(part) {
                Some(k) => pos = pos + k + part.len(),
                None => return false,
            }
        }
    }
    true
}

/// Escape a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}
