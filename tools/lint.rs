//! Repository-local lints that clippy cannot express (std-only, no
//! dependencies). Run with `cargo run --bin repo-lint`.
//!
//! ## Clock lint
//!
//! Every simulated latency must be charged to the deterministic
//! [`VirtualClock`](../crates/sources/src/clock.rs); reading real time
//! anywhere else silently makes runs machine-dependent. The one
//! sanctioned wall-clock read is `drugtree_sources::clock::wall_now()`,
//! so this lint walks all Rust sources and rejects any raw
//! `Instant::now()` / `SystemTime::now()` call outside
//! `crates/sources/src/clock.rs`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories scanned for Rust sources, relative to the repo root.
const SCAN_ROOTS: &[&str] = &["crates", "src", "examples", "tests", "benches"];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "bench_results"];

/// The single file allowed to read the wall clock.
const CLOCK_FILE: &str = "crates/sources/src/clock.rs";

/// Forbidden call patterns. Assembled at runtime so this file would not
/// flag itself even if it were scanned.
fn forbidden_patterns() -> Vec<String> {
    ["Instant", "SystemTime"]
        .iter()
        .map(|ty| format!("{ty}::now()"))
        .collect()
}

fn main() -> ExitCode {
    let root = repo_root();
    let patterns = forbidden_patterns();
    let mut files = Vec::new();
    for scan in SCAN_ROOTS {
        collect_rust_files(&root.join(scan), &mut files);
    }
    files.sort();

    let mut violations = 0usize;
    let mut scanned = 0usize;
    for file in &files {
        let Some(rel) = relative_display(&root, file) else {
            continue;
        };
        if rel == CLOCK_FILE {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(file) else {
            eprintln!("clock-lint: warning: cannot read {rel}");
            continue;
        };
        scanned += 1;
        for (lineno, line) in text.lines().enumerate() {
            for pat in &patterns {
                if line.contains(pat.as_str()) {
                    violations += 1;
                    eprintln!(
                        "clock-lint: {rel}:{}: `{pat}` outside {CLOCK_FILE}; \
                         use drugtree_sources::clock::wall_now() (harness timing) \
                         or the VirtualClock (simulated latency)",
                        lineno + 1
                    );
                }
            }
        }
    }

    if violations > 0 {
        eprintln!("clock-lint: {violations} violation(s) in {scanned} file(s)");
        ExitCode::FAILURE
    } else {
        println!("clock-lint: ok ({scanned} files clean)");
        ExitCode::SUCCESS
    }
}

/// The workspace root: where Cargo ran us from, or the ancestor of this
/// source file when invoked directly via rustc.
fn repo_root() -> PathBuf {
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        return PathBuf::from(dir);
    }
    std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."))
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rust_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn relative_display(root: &Path, file: &Path) -> Option<String> {
    let rel = file.strip_prefix(root).ok()?;
    // Normalize to forward slashes so CLOCK_FILE compares portably.
    Some(
        rel.components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/"),
    )
}
