//! The queryable bundle: tree + index + overlay + federated sources.

use crate::ast::Scope;
use crate::{QueryError, Result};
use drugtree_integrate::overlay::{tables, Overlay};
use drugtree_phylo::index::{LeafInterval, TreeIndex};
use drugtree_phylo::tree::{NodeId, Tree};
use drugtree_sources::clock::VirtualClock;
use drugtree_sources::federation::SourceRegistry;
use drugtree_store::schema::{Column, Schema};
use drugtree_store::value::{Value, ValueType};
use rustc_hash::FxHashMap;
use std::sync::Arc;

/// Everything a query executes against.
///
/// Protein and ligand metadata are materialized locally (they are
/// small and stable); *activity* data stays behind the federated assay
/// sources and is fetched on demand — the access pattern whose latency
/// the paper's optimizations target.
pub struct Dataset {
    /// The phylogenetic tree.
    pub tree: Tree,
    /// Its index (intervals, ranks, LCA).
    pub index: TreeIndex,
    /// Locally materialized protein/ligand tables + fingerprints.
    pub overlay: Overlay,
    /// Federated sources (assay sources are queried per tree
    /// interaction).
    pub registry: SourceRegistry,
    /// The session's virtual clock; all simulated latency is charged
    /// here.
    pub clock: Arc<VirtualClock>,
    /// Leaf rank -> protein accession.
    accession_by_rank: Vec<Option<String>>,
    /// Protein accession -> leaf rank.
    rank_by_accession: FxHashMap<String, u32>,
}

impl Dataset {
    /// Assemble a dataset. The overlay's protein table provides the
    /// rank ↔ accession correspondence.
    pub fn new(
        tree: Tree,
        index: TreeIndex,
        overlay: Overlay,
        registry: SourceRegistry,
        clock: Arc<VirtualClock>,
    ) -> Result<Dataset> {
        let mut accession_by_rank = vec![None; index.leaf_count()];
        let mut rank_by_accession = FxHashMap::default();
        let proteins = overlay.catalog().table(tables::PROTEIN)?;
        let acc_col = proteins.schema().column_index("accession")?;
        let rank_col = proteins.schema().column_index("leaf_rank")?;
        for (_, row) in proteins.scan() {
            let acc = row[acc_col]
                .as_text()
                .ok_or_else(|| QueryError::Plan("non-text accession".into()))?
                .to_string();
            let rank = row[rank_col]
                .as_int()
                .ok_or_else(|| QueryError::Plan("non-int leaf_rank".into()))?
                as u32;
            if let Some(slot) = accession_by_rank.get_mut(rank as usize) {
                *slot = Some(acc.clone());
            }
            rank_by_accession.insert(acc, rank);
        }
        Ok(Dataset {
            tree,
            index,
            overlay,
            registry,
            clock,
            accession_by_rank,
            rank_by_accession,
        })
    }

    /// Resolve a scope to (root node, leaf interval).
    pub fn resolve_scope(&self, scope: &Scope) -> Result<(NodeId, LeafInterval)> {
        match scope {
            Scope::Tree => {
                let root = self.tree.root();
                Ok((root, self.index.interval(root)))
            }
            Scope::Subtree(label) => {
                let node = self
                    .index
                    .by_label(label)
                    .map_err(|_| QueryError::UnknownNode(label.clone()))?;
                Ok((node, self.index.interval(node)))
            }
            Scope::Interval(iv) => {
                let clamped = LeafInterval {
                    lo: iv.lo.min(self.index.leaf_count() as u32),
                    hi: iv.hi.min(self.index.leaf_count() as u32),
                };
                Ok((self.index.tightest_clade(&self.tree, clamped), clamped))
            }
            Scope::Leaves(labels) => {
                if labels.is_empty() {
                    return Err(QueryError::Plan("empty leaf set".into()));
                }
                let mut lo = u32::MAX;
                let mut hi = 0u32;
                for label in labels {
                    let node = self
                        .index
                        .by_label(label)
                        .map_err(|_| QueryError::UnknownNode(label.clone()))?;
                    let iv = self.index.interval(node);
                    lo = lo.min(iv.lo);
                    hi = hi.max(iv.hi);
                }
                let iv = LeafInterval { lo, hi };
                Ok((self.index.tightest_clade(&self.tree, iv), iv))
            }
        }
    }

    /// Accession of the leaf at `rank`, when one is assigned.
    pub fn accession_of_rank(&self, rank: u32) -> Option<&str> {
        self.accession_by_rank.get(rank as usize)?.as_deref()
    }

    /// Leaf rank of an accession.
    pub fn rank_of_accession(&self, accession: &str) -> Option<u32> {
        self.rank_by_accession.get(accession).copied()
    }

    /// (rank, accession) pairs for every protein-bearing leaf in an
    /// interval, in rank order.
    pub fn accessions_in(&self, interval: LeafInterval) -> Vec<(u32, &str)> {
        (interval.lo..interval.hi.min(self.accession_by_rank.len() as u32))
            .filter_map(|r| self.accession_of_rank(r).map(|a| (r, a)))
            .collect()
    }

    /// Number of leaves in the tree.
    pub fn leaf_count(&self) -> usize {
        self.index.leaf_count()
    }
}

/// Schema of the unified (activity ⋈ ligand) rows query predicates and
/// results range over. Ligand columns are nullable: an activity may
/// reference a ligand absent from the ligand catalog.
pub fn unified_schema() -> Schema {
    Schema::new(vec![
        Column::required("leaf_rank", ValueType::Int),
        Column::required("protein_accession", ValueType::Text),
        Column::required("ligand_id", ValueType::Text),
        Column::required("activity_type", ValueType::Text),
        Column::required("value_nm", ValueType::Float),
        Column::required("p_activity", ValueType::Float),
        Column::required("source", ValueType::Text),
        Column::required("year", ValueType::Int),
        Column::nullable("name", ValueType::Text),
        Column::nullable("smiles", ValueType::Text),
        Column::nullable("mw", ValueType::Float),
        Column::nullable("hbd", ValueType::Int),
        Column::nullable("hba", ValueType::Int),
        Column::nullable("rings", ValueType::Int),
    ])
}

/// Schema of the activity-only half (what sources ship, plus the
/// locally derived leaf_rank and p_activity columns).
pub fn activity_half_schema() -> Schema {
    Schema::new(vec![
        Column::required("leaf_rank", ValueType::Int),
        Column::required("protein_accession", ValueType::Text),
        Column::required("ligand_id", ValueType::Text),
        Column::required("activity_type", ValueType::Text),
        Column::required("value_nm", ValueType::Float),
        Column::required("p_activity", ValueType::Float),
        Column::required("source", ValueType::Text),
        Column::required("year", ValueType::Int),
    ])
}

/// Convert a raw assay-source row into the activity half of the
/// unified layout, resolving the leaf rank. Returns `None` for rows
/// whose accession is not on the tree (dropped, counted by metrics).
pub fn unify_assay_row(dataset: &Dataset, row: &[Value]) -> Option<Vec<Value>> {
    // Assay source order: protein_accession, ligand_id, activity_type,
    // value_nm, source, year.
    let acc = row.first()?.as_text()?;
    let rank = dataset.rank_of_accession(acc)?;
    let value_nm = row.get(3)?.as_f64()?;
    if !(value_nm.is_finite() && value_nm > 0.0) {
        return None;
    }
    let p_activity = -(value_nm * 1e-9).log10();
    Some(vec![
        Value::from(rank),
        row[0].clone(),
        row.get(1)?.clone(),
        row.get(2)?.clone(),
        Value::Float(value_nm),
        Value::Float(p_activity),
        row.get(4)?.clone(),
        row.get(5)?.clone(),
    ])
}

/// Small deterministic fixtures shared by this crate's tests, the
/// downstream crates' tests, and the benchmark harness.
// Test-support code: panicking on malformed fixtures is the point.
#[allow(clippy::unwrap_used, clippy::expect_used)]
pub mod test_fixtures {
    use super::*;
    use drugtree_chem::affinity::{ActivityRecord, ActivityType};
    use drugtree_integrate::overlay::OverlayBuilder;
    use drugtree_phylo::newick::parse_newick;
    use drugtree_sources::assay_db::assay_source;
    use drugtree_sources::latency::LatencyModel;
    use drugtree_sources::ligand_db::LigandRecord;
    use drugtree_sources::protein_db::ProteinRecord;
    use drugtree_sources::source::SourceCapabilities;
    use std::time::Duration;

    /// Deterministic small latency for tests: 10 ms RTT, 1 ms/row.
    pub fn test_latency() -> LatencyModel {
        LatencyModel {
            base_rtt: Duration::from_millis(10),
            per_row: Duration::from_millis(1),
            per_row_scanned: Duration::ZERO,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// A Ki activity record against `acc` for tests.
    pub fn activity(acc: &str, ligand: &str, value_nm: f64, year: u16) -> ActivityRecord {
        ActivityRecord {
            protein_accession: acc.into(),
            ligand_id: ligand.into(),
            activity_type: ActivityType::Ki,
            value_nm,
            source: "sim".into(),
            year,
        }
    }

    /// A fixed 4-leaf dataset:
    ///
    /// ```text
    ///          root
    ///         /    \
    ///    cladeA    cladeB
    ///     /  \      /  \
    ///    P1  P2    P3  P4
    /// ```
    ///
    /// Activities (Ki, nM): P1-L1 10, P1-L2 2000, P2-L1 100, P3-L3 1.
    /// P4 has none. Ligands: L1 aspirin, L2 ethanol, L3 caffeine.
    pub fn small_dataset(caps: SourceCapabilities) -> Dataset {
        let tree = parse_newick("((P1:1,P2:1)cladeA:1,(P3:1,P4:1)cladeB:1)root;").unwrap();
        let index = TreeIndex::build(&tree);
        let proteins: Vec<ProteinRecord> = ["P1", "P2", "P3", "P4"]
            .iter()
            .map(|acc| ProteinRecord {
                accession: (*acc).into(),
                name: format!("protein {acc}"),
                organism: "synthetic".into(),
                sequence: "MKVLAT".into(),
                gene: None,
            })
            .collect();
        let ligands = vec![
            LigandRecord::from_smiles("L1", "aspirin", "CC(=O)Oc1ccccc1C(=O)O").unwrap(),
            LigandRecord::from_smiles("L2", "ethanol", "CCO").unwrap(),
            LigandRecord::from_smiles("L3", "caffeine", "Cn1cnc2c1c(=O)n(C)c(=O)n2C").unwrap(),
        ];
        let acts = vec![
            activity("P1", "L1", 10.0, 2012),
            activity("P1", "L2", 2000.0, 2011),
            activity("P2", "L1", 100.0, 2012),
            activity("P3", "L3", 1.0, 2013),
        ];
        // Overlay materializes proteins + ligands locally; activities
        // live only in the simulated remote source.
        let overlay = OverlayBuilder::new(&tree, &index)
            .build(&proteins, &ligands, &[])
            .unwrap();
        let mut registry = SourceRegistry::new();
        registry
            .register(Arc::new(
                assay_source("assay-sim", &acts, caps, test_latency()).unwrap(),
            ))
            .unwrap();
        Dataset::new(tree, index, overlay, registry, VirtualClock::new()).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::test_fixtures::small_dataset;
    use super::*;
    use drugtree_sources::source::SourceCapabilities;

    #[test]
    fn scope_resolution() {
        let d = small_dataset(SourceCapabilities::full());
        let (root, iv) = d.resolve_scope(&Scope::Tree).unwrap();
        assert_eq!(root, d.tree.root());
        assert_eq!(iv, LeafInterval { lo: 0, hi: 4 });

        let (node, iv) = d.resolve_scope(&Scope::Subtree("cladeB".into())).unwrap();
        assert_eq!(iv, LeafInterval { lo: 2, hi: 4 });
        assert_eq!(d.index.by_label("cladeB").unwrap(), node);

        assert!(matches!(
            d.resolve_scope(&Scope::Subtree("nope".into())),
            Err(QueryError::UnknownNode(_))
        ));
    }

    #[test]
    fn interval_scope_clamped() {
        let d = small_dataset(SourceCapabilities::full());
        let (_, iv) = d
            .resolve_scope(&Scope::Interval(LeafInterval { lo: 1, hi: 99 }))
            .unwrap();
        assert_eq!(iv, LeafInterval { lo: 1, hi: 4 });
    }

    #[test]
    fn leaves_scope_spans_min_interval() {
        let d = small_dataset(SourceCapabilities::full());
        let (node, iv) = d
            .resolve_scope(&Scope::Leaves(vec!["P1".into(), "P2".into()]))
            .unwrap();
        assert_eq!(iv, LeafInterval { lo: 0, hi: 2 });
        assert_eq!(node, d.index.by_label("cladeA").unwrap());
        // Spanning both clades widens to the root.
        let (node, _) = d
            .resolve_scope(&Scope::Leaves(vec!["P1".into(), "P4".into()]))
            .unwrap();
        assert_eq!(node, d.tree.root());
        assert!(d.resolve_scope(&Scope::Leaves(vec![])).is_err());
    }

    #[test]
    fn accession_maps() {
        let d = small_dataset(SourceCapabilities::full());
        assert_eq!(d.accession_of_rank(0), Some("P1"));
        assert_eq!(d.rank_of_accession("P3"), Some(2));
        assert_eq!(d.rank_of_accession("ZZ"), None);
        let accs = d.accessions_in(LeafInterval { lo: 1, hi: 3 });
        assert_eq!(accs, vec![(1, "P2"), (2, "P3")]);
        assert_eq!(d.leaf_count(), 4);
    }

    #[test]
    fn unify_assay_rows() {
        let d = small_dataset(SourceCapabilities::full());
        let raw = vec![
            Value::from("P2"),
            Value::from("L1"),
            Value::from("Ki"),
            Value::Float(1000.0),
            Value::from("sim"),
            Value::Int(2012),
        ];
        let row = unify_assay_row(&d, &raw).unwrap();
        assert_eq!(row[0], Value::Int(1)); // P2's rank
        assert!((row[5].as_f64().unwrap() - 6.0).abs() < 1e-9);
        // Unknown accession -> dropped.
        let mut bad = raw.clone();
        bad[0] = Value::from("QX");
        assert!(unify_assay_row(&d, &bad).is_none());
        // Non-positive value -> dropped.
        let mut bad = raw;
        bad[3] = Value::Float(0.0);
        assert!(unify_assay_row(&d, &bad).is_none());
    }

    #[test]
    fn unified_schema_covers_declared_columns() {
        let s = unified_schema();
        for c in crate::ast::columns::ACTIVITY
            .iter()
            .chain(crate::ast::columns::LIGAND)
        {
            assert!(s.column_index(c).is_ok(), "missing column {c}");
        }
        assert_eq!(s.arity(), 14);
        assert_eq!(activity_half_schema().arity(), 8);
    }
}
