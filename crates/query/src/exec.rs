//! The query executor.
//!
//! Interprets a [`PhysicalPlan`] against a [`Dataset`], charging all
//! simulated source latency to the session's virtual clock and
//! reporting per-query metrics (round-trips, rows shipped, cache
//! behaviour) — the quantities every experiment in EXPERIMENTS.md
//! reports.

use crate::adaptive::{AdaptiveRuntime, QueryFeedback};
use crate::ast::{Metric, Query};
use crate::cache::{CacheConfig, CacheStats};
use crate::columnar::ActivityColumns;
use crate::cost::{CalibrationReport, CostModel};
use crate::dataset::{unified_schema, unify_assay_row, Dataset};
use crate::matview::MaterializedAggregates;
use crate::optimizer::Optimizer;
use crate::plan::{Access, FetchPlan, Finish, PhysicalPlan};
use crate::serve::{FetchCoordinator, ServeConfig, ServeStats, ShardedSemanticCache};
use crate::stats::OverlayStats;
use crate::trace::{AnalyzedResult, Observer, QuerySpan, Stage, TraceBuilder};
use crate::{QueryError, Result};
use drugtree_chem::similarity::tanimoto;
use drugtree_integrate::overlay::tables;
use drugtree_phylo::index::LeafInterval;
use drugtree_phylo::tree::NodeId;
pub use drugtree_sources::batcher::RetryPolicy;
use drugtree_sources::batcher::{
    batched_lookup_with_retry, singleton_lookups_with_retry, Dispatch,
};
use drugtree_sources::clock::VirtualInstant;
use drugtree_store::bitmap::Bitmap;
use drugtree_store::expr::{BoundPredicate, Predicate};
use drugtree_store::kernel;
use drugtree_store::value::Value;
use rustc_hash::FxHashMap;
use std::sync::Arc;
use std::time::Duration;

/// Per-query execution metrics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecMetrics {
    /// Virtual time charged for this query.
    pub virtual_cost: Duration,
    /// Virtual clock when the query started.
    pub started: VirtualInstant,
    /// Virtual clock when the query finished.
    pub finished: VirtualInstant,
    /// Source round-trips issued.
    pub source_requests: usize,
    /// Activity rows shipped from sources.
    pub rows_fetched: usize,
    /// Fetched rows dropped because their accession is not on the tree.
    pub rows_unmapped: usize,
    /// Cache outcome: `None` when the plan had no cache probe.
    pub cache_hit: Option<bool>,
    /// Leaves pruned by statistics.
    pub pruned_leaves: usize,
    /// Transient source failures retried.
    pub retries: usize,
    /// Virtual fetch cost attributable to this query alone: the full
    /// cost of solo fetches plus this query's keys-proportional share
    /// of any coalesced batch it rode. Under concurrent serving the
    /// shared clock (and thus `virtual_cost`) interleaves every
    /// session's work; this is the per-query number.
    pub charged_cost: Duration,
    /// Fetches that joined an identical in-flight request.
    pub flights_joined: usize,
    /// Other concurrent queries that shared a coalesced batch with
    /// this one (summed over this query's fetches).
    pub shared_batch_peers: usize,
    /// Optimizer notes (rule applications).
    pub notes: Vec<String>,
}

/// Cost-model estimates for a query, obtained by planning alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanEstimate {
    /// Estimated access latency (the miss path for cache probes).
    pub cost: Duration,
    /// Estimated rows shipped by the access.
    pub rows: u64,
}

/// A finished query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Result column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Execution metrics.
    pub metrics: ExecMetrics,
}

/// The executor: optimizer + sharded semantic cache + statistics +
/// views + (optionally) the cross-session fetch coordinator.
///
/// `Send + Sync` by construction: every mutable piece sits behind a
/// shard lock, an atomic, or an `Arc`, so M sessions can share one
/// executor from real OS threads. The `const` assertion below makes
/// that a compile-time guarantee a future field cannot silently break.
pub struct Executor {
    optimizer: Optimizer,
    cache: ShardedSemanticCache,
    /// The sizing the cache was built with, kept so `enable_serving`
    /// can re-shard without losing the configured budgets.
    cache_config: CacheConfig,
    stats: Option<OverlayStats>,
    matview: Option<MaterializedAggregates>,
    columnar: Option<ActivityColumns>,
    retry: RetryPolicy,
    coordinator: Option<Arc<FetchCoordinator>>,
    /// Calibrated cost model: prices plan alternatives in cost-based
    /// mode and accumulates observed-vs-estimated fetch latencies.
    cost: Arc<CostModel>,
    /// Observability hook (design decision D9). `None` is the fast
    /// path: no span is built, no plan cloned, no string formatted.
    observer: Option<Arc<dyn Observer>>,
    /// The self-driving runtime (design decision D15). `None` is the
    /// fast path: no feedback is folded, planning stays nominal.
    adaptive: Option<Arc<AdaptiveRuntime>>,
}

// Compile-time proof that the executor (and the dataset it serves) can
// be shared across threads; a non-Sync field fails the build here.
const _: () = {
    const fn _assert<T: Send + Sync>() {}
    _assert::<Executor>();
    _assert::<Dataset>();
};

impl Executor {
    /// Build with an optimizer and default cache sizing.
    pub fn new(optimizer: Optimizer) -> Executor {
        Executor::with_cache_config(optimizer, CacheConfig::default())
    }

    /// Build with explicit cache sizing.
    pub fn with_cache_config(optimizer: Optimizer, cache: CacheConfig) -> Executor {
        Executor {
            optimizer,
            cache: ShardedSemanticCache::new(cache),
            cache_config: cache,
            stats: None,
            matview: None,
            columnar: None,
            retry: RetryPolicy::default(),
            coordinator: None,
            cost: Arc::new(CostModel::new()),
            observer: None,
            adaptive: None,
        }
    }

    /// Install the self-driving runtime (design decision D15): learned
    /// statistics start feeding selectivity estimates, the advisor may
    /// auto-build the aggregate view, and every executed query is
    /// folded back into the loops.
    pub fn enable_adaptive(&mut self, runtime: Arc<AdaptiveRuntime>) {
        self.adaptive = Some(runtime);
    }

    /// The adaptive runtime, when installed.
    pub fn adaptive(&self) -> Option<&Arc<AdaptiveRuntime>> {
        self.adaptive.as_ref()
    }

    /// Install an [`Observer`] receiving a [`crate::trace::QueryTrace`]
    /// after every executed query. Tracing work happens only while an
    /// observer is installed (or during [`Executor::analyze`]), and is
    /// never charged to the virtual clock, so installing one cannot
    /// change measured latencies.
    pub fn set_observer(&mut self, observer: Arc<dyn Observer>) {
        self.observer = Some(observer);
    }

    /// The installed observer, if any.
    pub fn observer(&self) -> Option<&Arc<dyn Observer>> {
        self.observer.as_ref()
    }

    /// The calibrated cost model (prior parameters until fetches have
    /// been observed).
    pub fn cost_model(&self) -> &Arc<CostModel> {
        &self.cost
    }

    /// Replace the cost model, e.g. to share one calibration state
    /// across executors.
    pub fn set_cost_model(&mut self, cost: Arc<CostModel>) {
        self.cost = cost;
    }

    /// Snapshot the calibration state: per-source fitted parameters
    /// plus the estimate-vs-actual error tracker.
    pub fn calibration(&self) -> CalibrationReport {
        self.cost.report()
    }

    /// Plan a query and return its cost/cardinality estimates without
    /// executing it (the mobile prefetch budgeter prices candidate
    /// subtrees this way).
    pub fn estimate(&self, dataset: &Dataset, query: &Query) -> Result<PlanEstimate> {
        let adaptive_view = self.adaptive_view();
        let view = self.matview.as_ref().or(adaptive_view.as_deref());
        let plan = self.plan_query(dataset, view, query)?;
        Ok(PlanEstimate {
            cost: plan.estimated_cost,
            rows: plan.estimated_rows,
        })
    }

    /// Shard count the semantic cache is raised to when serving is
    /// enabled (a single-session executor keeps one shard, preserving
    /// its full budget and subsumption reach).
    pub const SERVING_CACHE_SHARDS: usize = 8;

    /// Enable cross-session serving: coalesce concurrent identical
    /// fetches (single-flight), merge overlapping key sets into shared
    /// batches, and re-shard the semantic cache to at least
    /// [`Executor::SERVING_CACHE_SHARDS`] so concurrent sessions do
    /// not contend on one lock. Call before sharing the executor
    /// across sessions (re-sharding rebuilds the — at that point
    /// typically empty — cache).
    pub fn enable_serving(&mut self, config: ServeConfig) {
        if self.cache.shard_count() < Executor::SERVING_CACHE_SHARDS {
            let mut cache = self.cache_config;
            cache.shards = cache.shards.max(Executor::SERVING_CACHE_SHARDS);
            self.cache = ShardedSemanticCache::new(cache);
        }
        self.coordinator = Some(Arc::new(FetchCoordinator::new(config)));
    }

    /// Rebuild the semantic cache with exactly `shards` shards
    /// (rounded up to a power of two by the cache itself). The fleet
    /// scheduler's shard-count sweep calls this *after*
    /// [`Executor::enable_serving`] to pin the count the experiment
    /// asks for; cached entries are discarded.
    pub fn set_cache_shards(&mut self, shards: usize) {
        let mut cache = self.cache_config;
        cache.shards = shards.max(1);
        self.cache_config = cache;
        self.cache = ShardedSemanticCache::new(cache);
    }

    /// The fetch coordinator, when serving is enabled.
    pub fn coordinator(&self) -> Option<&Arc<FetchCoordinator>> {
        self.coordinator.as_ref()
    }

    /// Cumulative serving counters, when serving is enabled.
    pub fn serve_stats(&self) -> Option<ServeStats> {
        self.coordinator.as_ref().map(|c| c.stats())
    }

    /// Replace the transient-failure retry policy.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Collect (or refresh) overlay statistics. Charges the collection
    /// scan to the dataset clock.
    pub fn collect_stats(&mut self, dataset: &Dataset) -> Result<()> {
        let stats = OverlayStats::collect(dataset)?;
        dataset.clock.advance(stats.collection_cost);
        self.stats = Some(stats);
        Ok(())
    }

    /// Build (or rebuild) the materialized aggregate view. Charges the
    /// build scan to the dataset clock.
    pub fn build_matview(&mut self, dataset: &Dataset) -> Result<Duration> {
        let view = MaterializedAggregates::build(dataset)?;
        let cost = view.build_cost;
        dataset.clock.advance(cost);
        self.matview = Some(view);
        Ok(cost)
    }

    /// Build (or rebuild) the columnar activity mirror. Charges the
    /// build scan to the dataset clock. With a fresh mirror and the
    /// `columnar_scan` rule enabled, interval scopes execute as local
    /// vectorized kernel scans instead of source fetches.
    pub fn build_columnar(&mut self, dataset: &Dataset) -> Result<Duration> {
        let mirror = ActivityColumns::build(dataset)?;
        let cost = mirror.build_cost;
        dataset.clock.advance(cost);
        self.columnar = Some(mirror);
        Ok(cost)
    }

    /// The columnar activity mirror, if built.
    pub fn columnar(&self) -> Option<&ActivityColumns> {
        self.columnar.as_ref()
    }

    /// Drop all cached results (call after a source refresh).
    pub fn invalidate(&self) {
        self.cache.invalidate_all();
    }

    /// Drop cached results overlapping a leaf interval (a targeted
    /// refresh of one subtree's sources).
    pub fn invalidate_interval(&self, interval: LeafInterval) {
        self.cache.invalidate_interval(interval);
    }

    /// Cumulative cache counters. Lock-free: reads the sharded cache's
    /// atomic counters, so polling stats never stalls serving threads.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Current statistics, if collected.
    pub fn stats(&self) -> Option<&OverlayStats> {
        self.stats.as_ref()
    }

    /// The planner in use.
    pub fn optimizer(&self) -> &Optimizer {
        &self.optimizer
    }

    /// The adaptively-built aggregate view, consulted only when no
    /// explicitly built view is installed (an explicit build always
    /// wins, so enabling the adaptive layer cannot change a session
    /// that manages its own views).
    fn adaptive_view(&self) -> Option<Arc<MaterializedAggregates>> {
        if self.matview.is_some() {
            return None;
        }
        self.adaptive.as_ref().and_then(|a| a.view())
    }

    /// Plan through the adaptive seam: learned statistics (when the
    /// runtime serves them) feed selectivity, and `view` is whichever
    /// aggregate view — explicit or adaptively built — should answer.
    fn plan_query(
        &self,
        dataset: &Dataset,
        view: Option<&MaterializedAggregates>,
        query: &Query,
    ) -> Result<PhysicalPlan> {
        let learned = self.adaptive.as_ref().and_then(|a| a.planning_stats());
        self.optimizer.plan_adaptive(
            dataset,
            self.stats.as_ref(),
            learned,
            dataset.clock.now().0,
            view,
            self.columnar.as_ref(),
            Some(&self.cost),
            query,
        )
    }

    /// EXPLAIN a query without executing it.
    pub fn explain(&self, dataset: &Dataset, query: &Query) -> Result<String> {
        let adaptive_view = self.adaptive_view();
        let view = self.matview.as_ref().or(adaptive_view.as_deref());
        let plan = self.plan_query(dataset, view, query)?;
        self.validate_plan(dataset, &plan)?;
        Ok(plan.explain())
    }

    /// Validate the plan's structural invariants when the config asks
    /// for it. The optimizer already validates under
    /// `cfg(debug_assertions)`; this unconditional check is what
    /// release builds (benches) toggle to measure the validator's cost.
    fn validate_plan(&self, dataset: &Dataset, plan: &PhysicalPlan) -> Result<()> {
        if self.optimizer.config().validate {
            crate::validate::PlanValidator::new(dataset)
                .validate(plan)
                .map_err(QueryError::Invariant)?;
        }
        Ok(())
    }

    /// Plan and execute a query.
    pub fn execute(&self, dataset: &Dataset, query: &Query) -> Result<QueryResult> {
        match &self.observer {
            // Null-observer fast path: no trace is built at all.
            None => self.execute_inner(dataset, query, None),
            Some(obs) => {
                let mut tb = TraceBuilder::new(query, obs.wants_plan());
                let result = self.execute_inner(dataset, query, Some(&mut tb))?;
                let (trace, plan) = tb.finish(&result.metrics);
                match plan {
                    Some(plan) => obs.on_query_planned(&trace, &plan),
                    None => obs.on_query(&trace),
                }
                Ok(result)
            }
        }
    }

    /// Execute with tracing and return plan, span tree, and result —
    /// the `EXPLAIN ANALYZE` entry point. Always traces, whether or
    /// not an observer is installed; an installed observer also
    /// receives the trace.
    pub fn analyze(&self, dataset: &Dataset, query: &Query) -> Result<AnalyzedResult> {
        let mut tb = TraceBuilder::new(query, true);
        let result = self.execute_inner(dataset, query, Some(&mut tb))?;
        let (trace, plan) = tb.finish(&result.metrics);
        let plan = plan.ok_or_else(|| QueryError::Plan("analyze produced no plan".into()))?;
        if let Some(obs) = &self.observer {
            obs.on_query_planned(&trace, &plan);
        }
        Ok(AnalyzedResult {
            plan,
            trace,
            result,
        })
    }

    fn execute_inner(
        &self,
        dataset: &Dataset,
        query: &Query,
        mut sink: Option<&mut TraceBuilder>,
    ) -> Result<QueryResult> {
        let adaptive_view = self.adaptive_view();
        let view = self.matview.as_ref().or(adaptive_view.as_deref());
        let plan = self.plan_query(dataset, view, query)?;
        self.validate_plan(dataset, &plan)?;
        let served_by_adaptive = adaptive_view.is_some() && plan.access == Access::MaterializedView;
        let started = dataset.clock.now();
        if let Some(tb) = sink.as_deref_mut() {
            tb.record_plan(&plan, started);
        }

        let mut m = ExecMetrics {
            virtual_cost: Duration::ZERO,
            started,
            finished: started,
            source_requests: 0,
            rows_fetched: 0,
            rows_unmapped: 0,
            cache_hit: None,
            pruned_leaves: plan.pruned_leaves,
            retries: 0,
            charged_cost: Duration::ZERO,
            flights_joined: 0,
            shared_batch_peers: 0,
            notes: plan.notes.clone(),
        };

        // Columnar aggregate fast path: a pure whole-row aggregate over
        // the mirror needs no row materialization at all — the
        // sum/count/max kernels fold each child's selected range
        // directly from the column buffers.
        if let Access::ColumnarScan { pushdown } = &plan.access {
            if let Finish::AggregateChildren { children, metric } = &plan.finish {
                if !matches!(metric, Metric::DistinctLigands)
                    && plan.residual == Predicate::True
                    && plan.similarity.is_none()
                    && plan.substructure.is_none()
                    && !plan.ligand_join
                {
                    return self.columnar_aggregate(
                        dataset,
                        &plan,
                        pushdown.as_ref(),
                        children,
                        *metric,
                        m,
                        sink,
                    );
                }
            }
        }

        // 1. Obtain activity-half rows.
        let activity_rows: Vec<Vec<Value>> = match &plan.access {
            Access::ProvedEmpty => Vec::new(),
            Access::MaterializedView => Vec::new(), // finish reads the view directly
            Access::ColumnarScan { pushdown } => {
                let (_, selection) = self.columnar_select(
                    dataset,
                    &plan,
                    pushdown.as_ref(),
                    &mut m,
                    sink.as_deref_mut(),
                    "columnar-scan",
                )?;
                let cols = self.columnar_mirror()?;
                selection
                    .iter_ones()
                    .map(|i| cols.table().get_row(i))
                    .collect()
            }
            Access::Fetch {
                fetches,
                concurrent_sources,
            } => self.run_fetches(
                dataset,
                fetches,
                *concurrent_sources,
                &mut m,
                sink.as_deref_mut(),
            )?,
            Access::CacheProbe {
                pushdown,
                on_miss,
                insert_on_miss,
                concurrent_sources,
            } => {
                let probe = self.cache.probe(plan.interval, pushdown.as_ref());
                match probe {
                    Some(hit) => {
                        m.cache_hit = Some(true);
                        if let Some(tb) = sink.as_deref_mut() {
                            let mut span =
                                QuerySpan::new(Stage::CacheProbe, "hit", dataset.clock.now());
                            span.rows = Some(hit.rows.len() as u64);
                            tb.push(span);
                        }
                        hit.rows
                    }
                    None => {
                        m.cache_hit = Some(false);
                        if let Some(tb) = sink.as_deref_mut() {
                            tb.push(QuerySpan::new(
                                Stage::CacheProbe,
                                "miss",
                                dataset.clock.now(),
                            ));
                        }
                        let rows = self.run_fetches(
                            dataset,
                            on_miss,
                            *concurrent_sources,
                            &mut m,
                            sink.as_deref_mut(),
                        )?;
                        if *insert_on_miss {
                            self.cache
                                .insert(plan.interval, pushdown.clone(), rows.clone());
                        }
                        rows
                    }
                }
            }
        };

        // 2. Widen to unified rows (ligand join when required).
        let overlay_started = dataset.clock.now();
        let rows_in = activity_rows.len() as u64;
        let mut rows = self.widen_rows(dataset, activity_rows, plan.ligand_join)?;

        // 3. Residual filter.
        if plan.residual != Predicate::True {
            let bound = plan.residual.bind(&unified_schema())?;
            rows.retain(|r| bound.matches(r));
        }

        // 4. Similarity filter.
        if let Some(sim) = &plan.similarity {
            rows.retain(|r| {
                r[2].as_text()
                    .and_then(|lig| dataset.overlay.fingerprint(lig))
                    .is_some_and(|fp| tanimoto(fp, &sim.fingerprint) >= sim.min_tanimoto)
            });
        }

        // 5. Substructure filter: fingerprint prescreen, then exact
        // subgraph match, memoized per distinct ligand.
        if let Some(sub) = &plan.substructure {
            let mut verdicts: FxHashMap<String, bool> = FxHashMap::default();
            rows.retain(|r| {
                let Some(lig) = r[2].as_text() else {
                    return false;
                };
                *verdicts.entry(lig.to_string()).or_insert_with(|| {
                    let Some(fp) = dataset.overlay.fingerprint(lig) else {
                        return false;
                    };
                    if !drugtree_chem::substructure::fingerprint_prescreen(&sub.pattern_fp, fp) {
                        return false;
                    }
                    dataset.overlay.molecule(lig).is_some_and(|m| {
                        drugtree_chem::substructure::is_substructure(&sub.pattern, m)
                    })
                })
            });
        }

        if let Some(tb) = sink.as_deref_mut() {
            let mut span = QuerySpan::new(Stage::Overlay, "", overlay_started);
            span.ended = dataset.clock.now();
            span.attrs.push(("rows_in", rows_in));
            span.attrs.push(("rows_out", rows.len() as u64));
            tb.push(span);
        }

        // 6. Finish.
        let finish_started = dataset.clock.now();
        let finish_label = match &plan.finish {
            Finish::Collect => "collect",
            Finish::TopK { .. } => "top-k",
            Finish::AggregateChildren { .. } => "aggregate",
            Finish::CountPerLeaf => "count-per-leaf",
        };
        let (columns, out_rows) = self.finish(dataset, &plan, rows, view)?;
        if let Some(tb) = sink {
            let mut span = QuerySpan::new(Stage::Finish, finish_label, finish_started);
            span.ended = dataset.clock.now();
            span.rows = Some(out_rows.len() as u64);
            tb.push(span);
        }

        m.finished = dataset.clock.now();
        m.virtual_cost = m.finished.since(m.started);

        // Close the loop: fold this query's observed reality back into
        // the adaptive runtime (learned cardinalities, the advisor's
        // break-even ledger, the regret guardrail).
        if let Some(adaptive) = &self.adaptive {
            // A view-answerable aggregate the view did not serve: the
            // same gate `use_matview` applies, minus view presence.
            let matview_candidate = plan.access != Access::MaterializedView
                && matches!(plan.finish, Finish::AggregateChildren { .. })
                && plan.residual == Predicate::True
                && plan.similarity.is_none()
                && plan.substructure.is_none()
                && plan.interval == dataset.index.interval(plan.scope_node);
            let feedback = QueryFeedback {
                pushed_local: plan.pushed_local.as_ref(),
                interval_rows: self
                    .stats
                    .as_ref()
                    .map_or(0, |s| s.interval_count(plan.interval)),
                observed_rows: rows_in,
                pruned_leaves: plan.pruned_leaves as u32,
                matview_candidate,
                served_by_adaptive,
                fingerprint: crate::obs::plan_fingerprint(&plan),
                charged: m.charged_cost,
                break_even_proxy: self
                    .stats
                    .as_ref()
                    .map_or(Duration::ZERO, |s| s.collection_cost),
            };
            adaptive.after_query(dataset, &feedback, || crate::obs::plan_shape(&plan))?;
        }

        Ok(QueryResult {
            columns,
            rows: out_rows,
            metrics: m,
        })
    }

    /// The built mirror, or a plan error — a `ColumnarScan` access can
    /// only be planned when the executor carries one.
    fn columnar_mirror(&self) -> Result<&ActivityColumns> {
        self.columnar
            .as_ref()
            .ok_or_else(|| QueryError::Plan("columnar plan without a built mirror".into()))
    }

    /// Run the interval range-slice plus filter kernels over the
    /// mirror: binary-search the plan interval to a contiguous row
    /// range, evaluate the pushdown as bitmap kernels over it, charge
    /// the modeled compute cost, and emit a [`Stage::Compute`] span.
    fn columnar_select(
        &self,
        dataset: &Dataset,
        plan: &PhysicalPlan,
        pushdown: Option<&Predicate>,
        m: &mut ExecMetrics,
        sink: Option<&mut TraceBuilder>,
        detail: &str,
    ) -> Result<(usize, Bitmap)> {
        let cols = self.columnar_mirror()?;
        let started = dataset.clock.now();
        let range = cols.rows_in(plan.interval)?;
        let scanned = range.len();
        let selection = match pushdown {
            Some(p) => cols
                .table()
                .eval(&p.bind(cols.table().schema())?, range.clone()),
            None => cols.table().eval(&BoundPredicate::True, range.clone()),
        };
        let cost = crate::cost::columnar_scan_cost(scanned as u64);
        dataset.clock.advance(cost);
        m.charged_cost += cost;
        if let Some(tb) = sink {
            let mut span = QuerySpan::new(Stage::Compute, detail, started);
            span.ended = dataset.clock.now();
            span.actual = cost;
            span.rows = Some(selection.count_ones() as u64);
            span.attrs = vec![
                ("rows_scanned", scanned as u64),
                ("rows_selected", selection.count_ones() as u64),
            ];
            tb.push(span);
        }
        Ok((scanned, selection))
    }

    /// Aggregate-kernel fast path: fold each child interval's selected
    /// range with the sum/count/max kernels, byte-identical to
    /// materializing the rows and running the generic finish.
    #[allow(clippy::too_many_arguments)]
    fn columnar_aggregate(
        &self,
        dataset: &Dataset,
        plan: &PhysicalPlan,
        pushdown: Option<&Predicate>,
        children: &[(NodeId, String, LeafInterval)],
        metric: Metric,
        mut m: ExecMetrics,
        mut sink: Option<&mut TraceBuilder>,
    ) -> Result<QueryResult> {
        let (_, selection) = self.columnar_select(
            dataset,
            plan,
            pushdown,
            &mut m,
            sink.as_deref_mut(),
            "columnar-aggregate",
        )?;
        let cols = self.columnar_mirror()?;
        let finish_started = dataset.clock.now();
        // p_activity is column 5 of the activity-half schema.
        let p_col = cols.table().column(5);
        let mut out_rows = Vec::with_capacity(children.len());
        for (_, label, iv) in children {
            let r = cols.rows_in(*iv)?;
            let mut mask = Bitmap::new(cols.len());
            mask.set_range(r.start, r.end);
            mask.and_assign(&selection);
            let value = match metric {
                Metric::Count => Value::Int(kernel::count(&mask) as i64),
                Metric::MaxPActivity => kernel::max_value(p_col, &mask).unwrap_or(Value::Null),
                Metric::MeanPActivity => {
                    let n = kernel::count(&mask);
                    if n == 0 {
                        Value::Null
                    } else {
                        Value::Float(kernel::sum_f64(p_col, &mask) / n as f64)
                    }
                }
                // Gated by the caller; distinct counting needs the rows.
                Metric::DistinctLigands => {
                    return Err(QueryError::Plan(
                        "distinct-ligands has no aggregate kernel".into(),
                    ))
                }
            };
            out_rows.push(vec![
                Value::from(label.clone()),
                Value::from(iv.lo),
                Value::from(iv.hi),
                value,
            ]);
        }
        let columns = vec![
            "clade".to_string(),
            "leaf_lo".to_string(),
            "leaf_hi".to_string(),
            metric.label().to_string(),
        ];
        if let Some(tb) = sink {
            let mut span = QuerySpan::new(Stage::Finish, "aggregate", finish_started);
            span.ended = dataset.clock.now();
            span.rows = Some(out_rows.len() as u64);
            tb.push(span);
        }
        m.finished = dataset.clock.now();
        m.virtual_cost = m.finished.since(m.started);
        Ok(QueryResult {
            columns,
            rows: out_rows,
            metrics: m,
        })
    }

    fn run_fetches(
        &self,
        dataset: &Dataset,
        fetches: &[FetchPlan],
        concurrent_sources: bool,
        m: &mut ExecMetrics,
        mut sink: Option<&mut TraceBuilder>,
    ) -> Result<Vec<Vec<Value>>> {
        let mut per_source_rows: Vec<Vec<Vec<Value>>> = Vec::with_capacity(fetches.len());
        let mut per_source_cost = Vec::with_capacity(fetches.len());
        for f in fetches {
            let fetch_started = dataset.clock.now();
            let source = dataset.registry.by_name(&f.source)?;
            let dispatch = if f.concurrent {
                Dispatch::Concurrent
            } else {
                Dispatch::Sequential
            };
            // Batched fetches route through the coordinator when
            // serving is enabled: identical concurrent fetches collapse
            // to one flight, overlapping key sets merge into shared
            // batches. Singleton (naive-mode) fetches never coalesce —
            // the unoptimized baseline must stay unoptimized.
            if let (Some(coord), true) = (&self.coordinator, f.batched) {
                let cf = coord.fetch(
                    source.as_ref(),
                    &f.keys,
                    f.pushdown.as_ref(),
                    dispatch,
                    self.retry,
                )?;
                m.retries += cf.retries as usize;
                m.source_requests += cf.requests;
                m.rows_fetched += cf.rows.len();
                m.charged_cost += cf.charged;
                m.flights_joined += usize::from(cf.flight_joined);
                m.shared_batch_peers += cf.shared_with;
                if let Some(tb) = sink.as_deref_mut() {
                    let mut span = QuerySpan::new(Stage::Coalesce, f.source.clone(), fetch_started);
                    span.actual = cf.charged;
                    span.est_cost = Some(f.est_cost);
                    span.est_rows = Some(f.est_rows);
                    span.rows = Some(cf.rows.len() as u64);
                    span.attrs = vec![
                        ("requests", cf.requests as u64),
                        ("keys", f.keys.len() as u64),
                        ("retries", u64::from(cf.retries)),
                        ("flights_joined", u64::from(cf.flight_joined)),
                        ("shared_peers", cf.shared_with as u64),
                    ];
                    tb.push(span);
                }
                let mut unified = Vec::with_capacity(cf.rows.len());
                for raw in &cf.rows {
                    match unify_assay_row(dataset, raw) {
                        Some(row) => unified.push(row),
                        None => m.rows_unmapped += 1,
                    }
                }
                per_source_rows.push(unified);
                // Exactly one participant per upstream dispatch carries
                // the advance flag, so the shared clock moves once per
                // batch regardless of how many queries rode it.
                if cf.advance {
                    dataset.clock.advance(cf.cost);
                }
                continue;
            }
            let resp = if f.batched {
                batched_lookup_with_retry(
                    source.as_ref(),
                    &f.keys,
                    f.pushdown.as_ref(),
                    dispatch,
                    self.retry,
                )?
            } else {
                singleton_lookups_with_retry(
                    source.as_ref(),
                    &f.keys,
                    f.pushdown.as_ref(),
                    self.retry,
                )?
            };
            m.retries += resp.retries as usize;
            m.source_requests += resp.requests;
            m.rows_fetched += resp.rows.len();
            if let Some(tb) = sink.as_deref_mut() {
                let mut span = QuerySpan::new(Stage::Fetch, f.source.clone(), fetch_started);
                span.actual = resp.cost;
                span.est_cost = Some(f.est_cost);
                span.est_rows = Some(f.est_rows);
                span.rows = Some(resp.rows.len() as u64);
                span.attrs = vec![
                    ("requests", resp.requests as u64),
                    ("keys", f.keys.len() as u64),
                    ("retries", u64::from(resp.retries)),
                ];
                tb.push(span);
            }
            // Calibration feedback: record the observed virtual latency
            // of this fetch against the planner's estimate. Only the
            // direct path observes — coalesced cross-session batches
            // mix several queries' keys, so their per-fetch shape would
            // poison the per-source fit.
            if self.optimizer.config().cost_based {
                let effective_requests = if f.concurrent {
                    1
                } else {
                    resp.requests as u64
                };
                self.cost.observe(
                    &f.source,
                    effective_requests,
                    resp.rows.len() as u64,
                    resp.cost,
                    f.est_cost,
                );
            }
            let mut unified = Vec::with_capacity(resp.rows.len());
            for raw in &resp.rows {
                match unify_assay_row(dataset, raw) {
                    Some(row) => unified.push(row),
                    None => m.rows_unmapped += 1,
                }
            }
            per_source_rows.push(unified);
            per_source_cost.push(resp.cost);
        }

        let total_cost = if concurrent_sources {
            per_source_cost.into_iter().max().unwrap_or(Duration::ZERO)
        } else {
            per_source_cost.into_iter().sum()
        };
        dataset.clock.advance(total_cost);
        m.charged_cost += total_cost;

        // Cross-source conflict resolution: identical (rank, ligand,
        // type) measurements keep the most recent year.
        let mut rows: Vec<Vec<Value>> = per_source_rows.into_iter().flatten().collect();
        if fetches.len() > 1 {
            rows = dedupe_most_recent(rows);
        }
        rows.sort_by_key(|r| r[0].as_int().unwrap_or(i64::MAX));
        Ok(rows)
    }

    /// Pad activity rows to the unified 14-column layout, joining the
    /// local ligand table when required.
    fn widen_rows(
        &self,
        dataset: &Dataset,
        activity_rows: Vec<Vec<Value>>,
        join: bool,
    ) -> Result<Vec<Vec<Value>>> {
        let ligand_cols = crate::ast::columns::LIGAND.len();
        if !join {
            return Ok(activity_rows
                .into_iter()
                .map(|mut r| {
                    r.extend(std::iter::repeat_with(|| Value::Null).take(ligand_cols));
                    r
                })
                .collect());
        }
        let ligands = dataset.overlay.catalog().table(tables::LIGAND)?;
        // ligand table columns: ligand_id, name, smiles, mw, hbd, hba, rings.
        let mut cache: FxHashMap<String, Option<Vec<Value>>> = FxHashMap::default();
        let mut out = Vec::with_capacity(activity_rows.len());
        for mut row in activity_rows {
            let ligand_id = row[2]
                .as_text()
                .ok_or_else(|| QueryError::Plan("non-text ligand_id".into()))?
                .to_string();
            let entry = cache.entry(ligand_id.clone()).or_insert_with(|| {
                ligands
                    .lookup_eq("ligand_id", &Value::from(ligand_id.clone()))
                    .ok()
                    .and_then(|ids| ids.first().copied())
                    .and_then(|id| ligands.get(id).ok())
                    .map(|r| r[1..].to_vec())
            });
            match entry {
                Some(cols) => row.extend(cols.iter().cloned()),
                None => row.extend(std::iter::repeat_with(|| Value::Null).take(ligand_cols)),
            }
            out.push(row);
        }
        Ok(out)
    }

    fn finish(
        &self,
        dataset: &Dataset,
        plan: &PhysicalPlan,
        mut rows: Vec<Vec<Value>>,
        view: Option<&MaterializedAggregates>,
    ) -> Result<(Vec<String>, Vec<Vec<Value>>)> {
        let unified_columns: Vec<String> = unified_schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        Ok(match &plan.finish {
            Finish::Collect => (unified_columns, rows),
            Finish::TopK {
                column,
                k,
                descending,
            } => {
                rows.sort_by(|a, b| {
                    let ord = a[*column].cmp(&b[*column]);
                    if *descending {
                        ord.reverse()
                    } else {
                        ord
                    }
                });
                rows.truncate(*k);
                (unified_columns, rows)
            }
            Finish::AggregateChildren { children, metric } => {
                let columns = vec![
                    "clade".to_string(),
                    "leaf_lo".to_string(),
                    "leaf_hi".to_string(),
                    metric.label().to_string(),
                ];
                let out = if plan.access == Access::MaterializedView {
                    let view =
                        view.ok_or_else(|| QueryError::Plan("matview plan without view".into()))?;
                    children
                        .iter()
                        .map(|(node, label, iv)| {
                            vec![
                                Value::from(label.clone()),
                                Value::from(iv.lo),
                                Value::from(iv.hi),
                                view.value(*node, *metric),
                            ]
                        })
                        .collect()
                } else {
                    children
                        .iter()
                        .map(|(_, label, iv)| {
                            let group: Vec<&Vec<Value>> = rows
                                .iter()
                                .filter(|r| {
                                    r[0].as_int()
                                        .is_some_and(|rank| iv.contains_rank(rank as u32))
                                })
                                .collect();
                            vec![
                                Value::from(label.clone()),
                                Value::from(iv.lo),
                                Value::from(iv.hi),
                                aggregate_group(&group, *metric),
                            ]
                        })
                        .collect()
                };
                (columns, out)
            }
            Finish::CountPerLeaf => {
                let columns = vec![
                    "leaf_rank".to_string(),
                    "accession".to_string(),
                    "count".to_string(),
                ];
                let mut counts: FxHashMap<u32, i64> = FxHashMap::default();
                for r in &rows {
                    if let Some(rank) = r[0].as_int() {
                        *counts.entry(rank as u32).or_default() += 1;
                    }
                }
                let out = (plan.interval.lo..plan.interval.hi)
                    .map(|rank| {
                        vec![
                            Value::from(rank),
                            dataset
                                .accession_of_rank(rank)
                                .map_or(Value::Null, Value::from),
                            Value::Int(counts.get(&rank).copied().unwrap_or(0)),
                        ]
                    })
                    .collect();
                (columns, out)
            }
        })
    }
}

/// Keep the most recent measurement per (rank, ligand, type). Shared
/// with the columnar mirror build so both row paths resolve
/// cross-source conflicts identically.
pub(crate) fn dedupe_most_recent(rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    let mut best: FxHashMap<(i64, String, String), Vec<Value>> = FxHashMap::default();
    for row in rows {
        let key = (
            row[0].as_int().unwrap_or(-1),
            row[2].as_text().unwrap_or_default().to_string(),
            row[3].as_text().unwrap_or_default().to_string(),
        );
        match best.get(&key) {
            Some(existing) if existing[7].as_int().unwrap_or(0) >= row[7].as_int().unwrap_or(0) => {
            }
            _ => {
                best.insert(key, row);
            }
        }
    }
    best.into_values().collect()
}

fn aggregate_group(group: &[&Vec<Value>], metric: Metric) -> Value {
    match metric {
        Metric::Count => Value::Int(group.len() as i64),
        Metric::DistinctLigands => {
            let distinct: std::collections::HashSet<&str> =
                group.iter().filter_map(|r| r[2].as_text()).collect();
            Value::Int(distinct.len() as i64)
        }
        Metric::MaxPActivity => group
            .iter()
            .filter_map(|r| r[5].as_f64())
            .fold(None, |acc: Option<f64>, p| {
                Some(acc.map_or(p, |a| a.max(p)))
            })
            .map_or(Value::Null, Value::Float),
        Metric::MeanPActivity => {
            let ps: Vec<f64> = group.iter().filter_map(|r| r[5].as_f64()).collect();
            if ps.is_empty() {
                Value::Null
            } else {
                Value::Float(ps.iter().sum::<f64>() / ps.len() as f64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Query, Scope};
    use crate::dataset::test_fixtures::small_dataset;
    use crate::optimizer::OptimizerConfig;
    use drugtree_sources::source::SourceCapabilities;
    use drugtree_store::expr::CompareOp;

    fn executor(config: OptimizerConfig) -> Executor {
        Executor::new(Optimizer::new(config))
    }

    fn full_executor_with_stats(dataset: &Dataset) -> Executor {
        let mut e = executor(OptimizerConfig::full());
        e.collect_stats(dataset).unwrap();
        e
    }

    #[test]
    fn naive_and_optimized_agree_on_results() {
        let d = small_dataset(SourceCapabilities::full());
        let naive = executor(OptimizerConfig::naive());
        let full = full_executor_with_stats(&d);
        for query in [
            Query::activities(Scope::Tree),
            Query::activities(Scope::Subtree("cladeA".into())),
            Query::activities(Scope::Tree).filter(Predicate::cmp("p_activity", CompareOp::Ge, 6.5)),
            Query::activities(Scope::Tree).filter(Predicate::cmp("mw", CompareOp::Lt, 100.0)),
            Query::activities(Scope::Tree).top_k("p_activity", 2, true),
        ] {
            let a = naive.execute(&d, &query).unwrap();
            let b = full.execute(&d, &query).unwrap();
            assert_eq!(a.columns, b.columns);
            assert_eq!(a.rows, b.rows, "query {query:?}");
        }
    }

    #[test]
    fn optimized_costs_less_virtual_time() {
        let d = small_dataset(SourceCapabilities::full());
        let naive = executor(OptimizerConfig::naive());
        let full = full_executor_with_stats(&d);
        let q = Query::activities(Scope::Tree);
        let a = naive.execute(&d, &q).unwrap();
        let b = full.execute(&d, &q).unwrap();
        assert!(
            b.metrics.virtual_cost < a.metrics.virtual_cost,
            "optimized {:?} vs naive {:?}",
            b.metrics.virtual_cost,
            a.metrics.virtual_cost
        );
        assert!(b.metrics.source_requests < a.metrics.source_requests);
    }

    #[test]
    fn activities_rows_are_joined_and_ordered() {
        let d = small_dataset(SourceCapabilities::full());
        let e = executor(OptimizerConfig::naive());
        let r = e.execute(&d, &Query::activities(Scope::Tree)).unwrap();
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.columns.len(), 14);
        // Rank-ordered.
        let ranks: Vec<i64> = r.rows.iter().map(|x| x[0].as_int().unwrap()).collect();
        let mut sorted = ranks.clone();
        sorted.sort();
        assert_eq!(ranks, sorted);
        // Ligand join filled mw for aspirin rows.
        let aspirin_row = r.rows.iter().find(|x| x[2] == Value::from("L1")).unwrap();
        assert!(aspirin_row[10].as_f64().unwrap() > 100.0);
    }

    #[test]
    fn cache_hit_on_drilldown() {
        let d = small_dataset(SourceCapabilities::full());
        let e = full_executor_with_stats(&d);
        let parent = Query::activities(Scope::Tree);
        let child = Query::activities(Scope::Subtree("cladeA".into()));

        let r1 = e.execute(&d, &parent).unwrap();
        assert_eq!(r1.metrics.cache_hit, Some(false));
        assert!(r1.metrics.source_requests > 0);

        let r2 = e.execute(&d, &child).unwrap();
        assert_eq!(r2.metrics.cache_hit, Some(true));
        assert_eq!(r2.metrics.source_requests, 0, "drill-down hits the cache");
        assert_eq!(r2.metrics.virtual_cost, Duration::ZERO);
        assert_eq!(r2.rows.len(), 3);

        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn invalidation_forces_refetch() {
        let d = small_dataset(SourceCapabilities::full());
        let e = full_executor_with_stats(&d);
        let q = Query::activities(Scope::Tree);
        e.execute(&d, &q).unwrap();
        e.invalidate();
        let r = e.execute(&d, &q).unwrap();
        assert_eq!(r.metrics.cache_hit, Some(false));
    }

    #[test]
    fn top_k_orders_and_truncates() {
        let d = small_dataset(SourceCapabilities::full());
        let e = executor(OptimizerConfig::full());
        let q = Query::activities(Scope::Tree).top_k("p_activity", 2, true);
        let r = e.execute(&d, &q).unwrap();
        assert_eq!(r.rows.len(), 2);
        // Best potency first: P3-L3 at 1 nM (p=9), then P1-L1 at 10 nM (p=8).
        assert_eq!(r.rows[0][2], Value::from("L3"));
        assert_eq!(r.rows[1][2], Value::from("L1"));
        // Ascending flips it.
        let q = Query::activities(Scope::Tree).top_k("p_activity", 1, false);
        let r = e.execute(&d, &q).unwrap();
        assert_eq!(r.rows[0][2], Value::from("L2"), "weakest first ascending");
    }

    #[test]
    fn aggregate_children() {
        let d = small_dataset(SourceCapabilities::full());
        let e = executor(OptimizerConfig::naive());
        let q = Query::activities(Scope::Tree).aggregate(Metric::Count);
        let r = e.execute(&d, &q).unwrap();
        assert_eq!(r.columns, vec!["clade", "leaf_lo", "leaf_hi", "count"]);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::from("cladeA"));
        assert_eq!(r.rows[0][3], Value::Int(3));
        assert_eq!(r.rows[1][3], Value::Int(1));
    }

    #[test]
    fn aggregate_served_by_matview() {
        let d = small_dataset(SourceCapabilities::full());
        let mut e = executor(OptimizerConfig::full());
        e.build_matview(&d).unwrap();
        let q = Query::activities(Scope::Tree).aggregate(Metric::Count);
        let r = e.execute(&d, &q).unwrap();
        assert_eq!(r.metrics.source_requests, 0, "view answers without fetch");
        assert_eq!(r.rows[0][3], Value::Int(3));
        assert_eq!(r.rows[1][3], Value::Int(1));
        assert!(r.metrics.notes.iter().any(|n| n.contains("matview")));
    }

    #[test]
    fn interval_scope_served_by_columnar_mirror() {
        let d = small_dataset(SourceCapabilities::full());
        let naive = executor(OptimizerConfig::naive());
        let mut e = executor(OptimizerConfig::full());
        e.build_columnar(&d).unwrap();
        for query in [
            Query::activities(Scope::Tree),
            Query::activities(Scope::Subtree("cladeA".into())),
            Query::activities(Scope::Tree).filter(Predicate::cmp("p_activity", CompareOp::Ge, 6.5)),
            Query::activities(Scope::Tree).top_k("p_activity", 2, true),
        ] {
            let a = naive.execute(&d, &query).unwrap();
            let b = e.execute(&d, &query).unwrap();
            assert_eq!(a.columns, b.columns);
            assert_eq!(a.rows, b.rows, "query {query:?}");
            assert_eq!(b.metrics.source_requests, 0, "mirror answers locally");
            assert!(b.metrics.notes.iter().any(|n| n.contains("columnar")));
        }
    }

    #[test]
    fn aggregates_served_by_columnar_kernels() {
        let d = small_dataset(SourceCapabilities::full());
        let naive = executor(OptimizerConfig::naive());
        let mut e = executor(OptimizerConfig::full());
        e.build_columnar(&d).unwrap();
        for metric in [Metric::Count, Metric::MeanPActivity, Metric::MaxPActivity] {
            let q = Query::activities(Scope::Tree).aggregate(metric);
            let a = naive.execute(&d, &q).unwrap();
            let b = e.execute(&d, &q).unwrap();
            assert_eq!(a.columns, b.columns);
            assert_eq!(a.rows, b.rows, "metric {metric:?}");
            assert_eq!(b.metrics.source_requests, 0);
        }
        // DistinctLigands needs the rows; the kernel fast path must
        // decline it, not answer it wrong.
        let q = Query::activities(Scope::Tree).aggregate(Metric::DistinctLigands);
        let a = naive.execute(&d, &q).unwrap();
        let b = e.execute(&d, &q).unwrap();
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn columnar_trace_carries_compute_span() {
        let d = small_dataset(SourceCapabilities::full());
        let mut e = executor(OptimizerConfig::full());
        e.build_columnar(&d).unwrap();
        let q =
            Query::activities(Scope::Tree).filter(Predicate::cmp("p_activity", CompareOp::Ge, 6.5));
        let analyzed = e.analyze(&d, &q).unwrap();
        assert!(
            analyzed.trace.stage_total(crate::trace::Stage::Compute) > Duration::ZERO,
            "columnar execution must attribute cost to the compute stage"
        );
        assert_eq!(
            analyzed.trace.stage_total(crate::trace::Stage::Fetch),
            Duration::ZERO
        );
    }

    #[test]
    fn matview_still_preferred_over_columnar_for_aggregates() {
        let d = small_dataset(SourceCapabilities::full());
        let mut e = executor(OptimizerConfig::full());
        e.build_matview(&d).unwrap();
        e.build_columnar(&d).unwrap();
        let q = Query::activities(Scope::Tree).aggregate(Metric::Count);
        let r = e.execute(&d, &q).unwrap();
        // The view is precomputed (zero per-row work at query time), so
        // it outranks even the kernel path when both are fresh.
        assert!(r.metrics.notes.iter().any(|n| n.contains("matview")));
        assert_eq!(r.rows[0][3], Value::Int(3));
    }

    #[test]
    fn count_per_leaf() {
        let d = small_dataset(SourceCapabilities::full());
        let e = executor(OptimizerConfig::full());
        let q = Query {
            scope: Scope::Tree,
            predicate: Predicate::True,
            similarity: None,
            substructure: None,
            kind: crate::ast::QueryKind::CountPerLeaf,
        };
        let r = e.execute(&d, &q).unwrap();
        assert_eq!(r.rows.len(), 4);
        let counts: Vec<i64> = r.rows.iter().map(|x| x[2].as_int().unwrap()).collect();
        assert_eq!(counts, vec![2, 1, 1, 0]);
    }

    #[test]
    fn similarity_filters_rows() {
        let d = small_dataset(SourceCapabilities::full());
        let e = executor(OptimizerConfig::full());
        // Exactly ethanol: only the P1-L2 record survives.
        let q = Query::activities(Scope::Tree).similar_to("CCO", 0.999);
        let r = e.execute(&d, &q).unwrap();
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0][2], Value::from("L2"));
        // Threshold zero keeps everything with a fingerprint.
        let q = Query::activities(Scope::Tree).similar_to("CCO", 0.0);
        let r = e.execute(&d, &q).unwrap();
        assert_eq!(r.rows.len(), 4);
    }

    #[test]
    fn proved_empty_returns_no_rows_and_no_cost() {
        let d = small_dataset(SourceCapabilities::full());
        let e = full_executor_with_stats(&d);
        let before = d.clock.now();
        let q = Query::activities(Scope::Subtree("P4".into()));
        let r = e.execute(&d, &q).unwrap();
        assert!(r.rows.is_empty());
        assert_eq!(r.metrics.source_requests, 0);
        assert_eq!(d.clock.now(), before);
    }

    #[test]
    fn explain_without_execution() {
        let d = small_dataset(SourceCapabilities::full());
        let e = executor(OptimizerConfig::full());
        let text = e.explain(&d, &Query::activities(Scope::Tree)).unwrap();
        assert!(text.contains("CacheProbe"));
        assert!(
            e.cache_stats().misses == 0,
            "explain must not touch the cache"
        );
    }

    #[test]
    fn pushdown_of_derived_column_executes_on_cold_cache() {
        // Regression: p_activity does not exist in the remote assay
        // schema; the optimizer must ship a value_nm translation. A
        // fresh executor guarantees the fetch path actually runs
        // (earlier this bug was masked by cache hits).
        let d = small_dataset(SourceCapabilities::full());
        let mut e = executor(OptimizerConfig::full());
        e.collect_stats(&d).unwrap();
        let q =
            Query::activities(Scope::Tree).filter(Predicate::cmp("p_activity", CompareOp::Ge, 6.5));
        let r = e.execute(&d, &q).unwrap();
        assert_eq!(r.metrics.cache_hit, Some(false), "must hit the sources");
        // P1-L1 (p=8), P2-L1 (p=7), P3-L3 (p=9) qualify; P1-L2 (p≈5.7) not.
        assert_eq!(r.rows.len(), 3);
        // The pushdown actually reduced shipped rows below the total.
        assert!(r.metrics.rows_fetched <= 3);
    }

    #[test]
    fn pushdown_boundary_rows_survive() {
        // A measurement exactly at the translated boundary must not be
        // lost to float error: p_activity >= 6 vs the 1000 nM record.
        let d = small_dataset(SourceCapabilities::full());
        let e = executor(OptimizerConfig::full());
        let q =
            Query::activities(Scope::Tree).filter(Predicate::cmp("p_activity", CompareOp::Ge, 8.0));
        let r = e.execute(&d, &q).unwrap();
        // P1-L1 at exactly 10 nM (p = 8.0) must be included.
        assert!(r
            .rows
            .iter()
            .any(|row| row[2] == Value::from("L1") && row[4] == Value::Float(10.0)));
    }

    #[test]
    fn substructure_filters_by_scaffold() {
        let d = small_dataset(SourceCapabilities::full());
        let e = executor(OptimizerConfig::full());
        // Phenyl ring: only aspirin (L1) contains it.
        let q = Query::activities(Scope::Tree).containing("c1ccccc1");
        let r = e.execute(&d, &q).unwrap();
        assert_eq!(r.rows.len(), 2, "both L1 records survive");
        assert!(r.rows.iter().all(|row| row[2] == Value::from("L1")));
        // Using a ligand id as the pattern: structures containing
        // ethanol's C-C-O chain.
        let q = Query::activities(Scope::Tree).containing("L2");
        let r = e.execute(&d, &q).unwrap();
        assert!(r.rows.iter().any(|row| row[2] == Value::from("L2")));
        // A scaffold nobody has: empty result.
        let q = Query::activities(Scope::Tree).containing("C#N");
        assert!(e.execute(&d, &q).unwrap().rows.is_empty());
        // Invalid pattern: clean error.
        let q = Query::activities(Scope::Tree).containing("((((");
        assert!(matches!(
            e.execute(&d, &q),
            Err(crate::QueryError::BadSubstructurePattern(_))
        ));
    }

    #[test]
    fn substructure_explain_and_agreement_with_naive() {
        let d = small_dataset(SourceCapabilities::full());
        let full = executor(OptimizerConfig::full());
        let naive = executor(OptimizerConfig::naive());
        let q = Query::activities(Scope::Tree).containing("c1ccccc1");
        assert_eq!(
            naive.execute(&d, &q).unwrap().rows,
            full.execute(&d, &q).unwrap().rows
        );
        let text = full.explain(&d, &q).unwrap();
        assert!(text.contains("Substructure"), "{text}");
    }

    #[test]
    fn dedupe_keeps_most_recent() {
        let mk = |year: i64| {
            vec![
                Value::Int(0),
                Value::from("P1"),
                Value::from("L1"),
                Value::from("Ki"),
                Value::Float(10.0),
                Value::Float(8.0),
                Value::from("s"),
                Value::Int(year),
            ]
        };
        let out = dedupe_most_recent(vec![mk(2010), mk(2013), mk(2011)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][7], Value::Int(2013));
    }
}
