//! Calibrated cost model for the cost-based planner.
//!
//! The planner prices each enumerated plan alternative with per-source
//! [`CostParams`] (a round-trip setup cost plus a per-row transfer cost, both
//! in seconds).  Parameters start from a deliberately *generic* prior — the
//! planner does not trust a source's self-declared
//! [`LatencyModel`](drugtree_sources::latency::LatencyModel) — and are refined
//! online by a calibration feedback loop: after every direct fetch the
//! executor calls [`CostModel::observe`] with the observed virtual latency,
//! and the model refits the source's parameters by least squares over
//! `(requests, rows) -> seconds`.
//!
//! The model also tracks estimate-vs-actual relative error so experiment E12
//! (and the CI calibration-regression check) can report mean relative
//! estimation error before and after calibration.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Minimum observations for a source before its fitted parameters replace the
/// prior.  Below this the scalar fallback (prior scaled by observed/estimated
/// totals) is used once at least one observation exists.
const MIN_OBSERVATIONS: u64 = 3;

/// Per-source pricing parameters, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Fixed cost charged per request round trip.
    pub rtt_secs: f64,
    /// Incremental cost charged per returned row.
    pub per_row_secs: f64,
}

impl CostParams {
    /// The uncalibrated prior: a generic mid-range remote (50 ms round trip,
    /// 20 µs per row — between the `web_api` and `intranet` latency presets).
    pub fn prior() -> CostParams {
        CostParams {
            rtt_secs: 0.050,
            per_row_secs: 20e-6,
        }
    }

    /// Price an access that issues `effective_requests` sequential round
    /// trips transferring `rows` rows in total.  Concurrent dispatch is
    /// modelled as a single effective round trip.
    pub fn price(&self, effective_requests: u64, rows: u64) -> f64 {
        self.rtt_secs * effective_requests as f64 + self.per_row_secs * rows as f64
    }
}

/// Running least-squares state for one source.
///
/// Accumulates normal-equation sums for the model `y = b1*x1 + b2*x2` with
/// `x1` = effective requests, `x2` = rows returned, `y` = observed seconds.
#[derive(Debug, Clone, Copy, Default)]
struct SourceFit {
    n: u64,
    s11: f64,
    s12: f64,
    s22: f64,
    b1: f64,
    b2: f64,
    sum_obs: f64,
    sum_prior: f64,
}

impl SourceFit {
    fn observe(&mut self, x1: f64, x2: f64, y: f64, prior_estimate: f64) {
        self.n += 1;
        self.s11 += x1 * x1;
        self.s12 += x1 * x2;
        self.s22 += x2 * x2;
        self.b1 += x1 * y;
        self.b2 += x2 * y;
        self.sum_obs += y;
        self.sum_prior += prior_estimate;
    }

    /// Solve the 2x2 normal equations; fall back to scaling the prior by the
    /// ratio of observed to prior-estimated totals when the system is
    /// degenerate (e.g. every observation had identical shape).
    fn params(&self, prior: CostParams) -> CostParams {
        if self.n == 0 {
            return prior;
        }
        if self.n >= MIN_OBSERVATIONS {
            let det = self.s11 * self.s22 - self.s12 * self.s12;
            if det.abs() > 1e-12 {
                let rtt = (self.b1 * self.s22 - self.b2 * self.s12) / det;
                let per_row = (self.b2 * self.s11 - self.b1 * self.s12) / det;
                if rtt.is_finite() && per_row.is_finite() && rtt >= 0.0 && per_row >= 0.0 {
                    return CostParams {
                        rtt_secs: rtt,
                        per_row_secs: per_row,
                    };
                }
            }
        }
        // Scalar fallback: keep the prior's shape, match the observed volume.
        if self.sum_prior > 0.0 && self.sum_obs.is_finite() {
            let scale = (self.sum_obs / self.sum_prior).max(0.0);
            if scale.is_finite() {
                return CostParams {
                    rtt_secs: prior.rtt_secs * scale,
                    per_row_secs: prior.per_row_secs * scale,
                };
            }
        }
        prior
    }
}

#[derive(Debug, Default)]
struct CostState {
    sources: BTreeMap<String, SourceFit>,
    err_sum: f64,
    err_count: u64,
    learning: bool,
}

/// Calibration summary for one source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceCalibration {
    /// Source name.
    pub source: String,
    /// Number of fetches observed against this source.
    pub observations: u64,
    /// Parameters the planner currently uses for this source.
    pub params: CostParams,
}

/// Snapshot of the calibration state: per-source fitted parameters plus the
/// estimate-vs-actual error tracker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Total fetch observations with a positive observed latency.
    pub observations: u64,
    /// Mean of `|estimated - observed| / observed` over those observations.
    pub mean_rel_error: f64,
    /// Per-source calibration state, sorted by source name.
    pub sources: Vec<SourceCalibration>,
}

/// Thread-safe calibrated cost model shared between planner and executor.
#[derive(Debug)]
pub struct CostModel {
    prior: CostParams,
    inner: Mutex<CostState>,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::new()
    }
}

impl CostModel {
    /// A fresh model: every source priced at [`CostParams::prior`], learning
    /// enabled.
    pub fn new() -> CostModel {
        CostModel {
            prior: CostParams::prior(),
            inner: Mutex::new(CostState {
                learning: true,
                ..CostState::default()
            }),
        }
    }

    /// Enable or disable parameter refitting.  Error tracking continues
    /// either way, so an experiment can measure prior-parameter estimation
    /// error without the model improving mid-measurement.
    pub fn set_learning(&self, learning: bool) {
        self.lock().learning = learning;
    }

    /// Current pricing parameters for `source` (the prior until the source
    /// has been observed).
    pub fn params_for(&self, source: &str) -> CostParams {
        let state = self.lock();
        state
            .sources
            .get(source)
            .map_or(self.prior, |fit| fit.params(self.prior))
    }

    /// Record one executed fetch: the dispatch shape (`effective_requests`
    /// round trips, `rows` rows returned), the virtual latency the executor
    /// actually charged, and the planner's estimate for this fetch.
    pub fn observe(
        &self,
        source: &str,
        effective_requests: u64,
        rows: u64,
        observed: Duration,
        estimated: Duration,
    ) {
        let obs = observed.as_secs_f64();
        let prior_estimate = self.prior.price(effective_requests, rows);
        let mut state = self.lock();
        if obs > 0.0 {
            let rel = (estimated.as_secs_f64() - obs).abs() / obs;
            if rel.is_finite() {
                state.err_sum += rel;
                state.err_count += 1;
            }
        }
        if state.learning {
            state
                .sources
                .entry(source.to_string())
                .or_default()
                .observe(effective_requests as f64, rows as f64, obs, prior_estimate);
        }
    }

    /// Snapshot the calibration state.
    pub fn report(&self) -> CalibrationReport {
        let state = self.lock();
        let sources = state
            .sources
            .iter()
            .map(|(name, fit)| SourceCalibration {
                source: name.clone(),
                observations: fit.n,
                params: fit.params(self.prior),
            })
            .collect();
        CalibrationReport {
            observations: state.err_count,
            mean_rel_error: if state.err_count == 0 {
                0.0
            } else {
                state.err_sum / state.err_count as f64
            },
            sources,
        }
    }

    /// Reset the estimate-vs-actual error tracker (fitted parameters are
    /// kept).  E12 calls this between its uncalibrated and calibrated
    /// measurement phases.
    pub fn reset_errors(&self) {
        let mut state = self.lock();
        state.err_sum = 0.0;
        state.err_count = 0;
    }

    fn lock(&self) -> parking_lot::MutexGuard<'_, CostState> {
        self.inner.lock()
    }
}

/// Convert a priced cost in seconds to a `Duration`, clamping negative or
/// non-finite values to zero (`Duration::from_secs_f64` panics on those).
pub fn secs_to_duration(secs: f64) -> Duration {
    if secs.is_finite() && secs > 0.0 {
        Duration::from_secs_f64(secs)
    } else {
        Duration::ZERO
    }
}

/// Fixed setup cost of one columnar scan: binding the pushdown,
/// binary-searching the interval's row range, allocating the selection
/// bitmap. Microseconds, not milliseconds — there is no round-trip.
pub const COLUMNAR_SETUP_SECS: f64 = 2e-6;

/// Modeled per-row cost of the vectorized kernels: one branch-light
/// pass over a contiguous typed buffer per predicate leaf, roughly a
/// nanosecond per row on commodity cores (experiment E15 measures the
/// real throughput).
pub const COLUMNAR_PER_ROW_SECS: f64 = 1e-9;

/// Priced cost (seconds) of scanning `rows` interval rows with the
/// columnar kernels — the local-compute term the planner weighs
/// against remote fetch alternatives.
pub fn columnar_scan_secs(rows: u64) -> f64 {
    COLUMNAR_SETUP_SECS + COLUMNAR_PER_ROW_SECS * rows as f64
}

/// [`columnar_scan_secs`] as a virtual-clock `Duration`.
pub fn columnar_scan_cost(rows: u64) -> Duration {
    secs_to_duration(columnar_scan_secs(rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_prices_requests_and_rows() {
        let p = CostParams::prior();
        let cost = p.price(2, 100);
        assert!((cost - (2.0 * 0.050 + 100.0 * 20e-6)).abs() < 1e-12);
    }

    #[test]
    fn unobserved_source_uses_prior() {
        let m = CostModel::new();
        assert_eq!(m.params_for("nowhere"), CostParams::prior());
    }

    #[test]
    fn least_squares_recovers_true_parameters() {
        let m = CostModel::new();
        // True model: 20 ms rtt, 1 ms per row.
        let true_params = CostParams {
            rtt_secs: 0.020,
            per_row_secs: 0.001,
        };
        for (reqs, rows) in [(1u64, 10u64), (2, 50), (1, 200), (3, 30)] {
            let obs = secs_to_duration(true_params.price(reqs, rows));
            m.observe("assay", reqs, rows, obs, Duration::from_millis(50));
        }
        let fitted = m.params_for("assay");
        assert!((fitted.rtt_secs - 0.020).abs() < 1e-9, "{fitted:?}");
        assert!((fitted.per_row_secs - 0.001).abs() < 1e-9, "{fitted:?}");
    }

    #[test]
    fn degenerate_observations_fall_back_to_scaled_prior() {
        let m = CostModel::new();
        // Identical shape every time: the 2x2 system is singular.
        for _ in 0..5 {
            m.observe(
                "assay",
                1,
                100,
                Duration::from_millis(104),
                Duration::from_millis(52),
            );
        }
        let fitted = m.params_for("assay");
        // prior estimate per obs = 0.050 + 100 * 20e-6 = 0.052; scale = 2.0.
        assert!((fitted.rtt_secs - 0.100).abs() < 1e-9, "{fitted:?}");
        assert!((fitted.per_row_secs - 40e-6).abs() < 1e-12, "{fitted:?}");
    }

    #[test]
    fn error_tracker_reports_mean_relative_error() {
        let m = CostModel::new();
        // est 50ms vs obs 100ms -> rel 0.5; est 150ms vs obs 100ms -> 0.5.
        m.observe(
            "a",
            1,
            0,
            Duration::from_millis(100),
            Duration::from_millis(50),
        );
        m.observe(
            "a",
            1,
            0,
            Duration::from_millis(100),
            Duration::from_millis(150),
        );
        let r = m.report();
        assert_eq!(r.observations, 2);
        assert!((r.mean_rel_error - 0.5).abs() < 1e-9);
        m.reset_errors();
        let r = m.report();
        assert_eq!(r.observations, 0);
        assert_eq!(r.mean_rel_error, 0.0);
        // Fits survive the error reset.
        assert_eq!(r.sources.len(), 1);
    }

    #[test]
    fn learning_toggle_freezes_fits_but_not_errors() {
        let m = CostModel::new();
        m.set_learning(false);
        m.observe(
            "a",
            1,
            10,
            Duration::from_millis(100),
            Duration::from_millis(50),
        );
        let r = m.report();
        assert_eq!(r.observations, 1);
        assert!(r.sources.is_empty());
        assert_eq!(m.params_for("a"), CostParams::prior());
    }

    #[test]
    fn secs_to_duration_clamps_bad_values() {
        assert_eq!(secs_to_duration(-1.0), Duration::ZERO);
        assert_eq!(secs_to_duration(f64::NAN), Duration::ZERO);
        assert_eq!(secs_to_duration(f64::INFINITY), Duration::ZERO);
        assert_eq!(secs_to_duration(0.5), Duration::from_millis(500));
    }
}
