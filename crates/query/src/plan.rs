//! Physical plans and EXPLAIN rendering.

use crate::ast::Metric;
use drugtree_chem::fingerprint::Fingerprint;
use drugtree_phylo::index::LeafInterval;
use drugtree_phylo::tree::NodeId;
use drugtree_store::expr::Predicate;
use drugtree_store::value::Value;
use std::fmt::Write as _;
use std::time::Duration;

/// One source's share of a federated fetch.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchPlan {
    /// Source name.
    pub source: String,
    /// Keys (protein accessions) to look up.
    pub keys: Vec<Value>,
    /// Predicate pushed into the source (already capability-checked).
    pub pushdown: Option<Predicate>,
    /// Coalesce keys into max-batch requests (vs one request per key).
    pub batched: bool,
    /// Per-request key limit resolved from the source capability at
    /// plan time (1 when not batched). The validator cross-checks this
    /// against the live capability.
    pub max_batch: usize,
    /// Dispatch the batches concurrently (vs sequentially).
    pub concurrent: bool,
    /// Cost-model estimate of this fetch's virtual latency.
    pub est_cost: Duration,
    /// Cardinality estimate: rows this fetch is expected to ship.
    pub est_rows: u64,
}

/// One enumerated plan alternative.
///
/// Populated only by the cost-based planner; the fixed-order rule
/// pipeline decides by flags and emits no candidates. Within each
/// `group` exactly one candidate is `chosen`, and the validator checks
/// that its cost is minimal and every cost is finite and non-negative.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCandidate {
    /// Choice group: "access", "cache", or "replica:\<group leader\>".
    pub group: String,
    /// Alternative label (e.g. "batched-fetch", a replica name).
    pub label: String,
    /// Priced cost in seconds.
    pub cost_secs: f64,
    /// Cardinality estimate used in pricing.
    pub rows: u64,
    /// Whether the planner selected this alternative.
    pub chosen: bool,
}

/// How the activity rows are obtained.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Served from the semantic cache.
    CacheProbe {
        /// Pushdown key the probe must match.
        pushdown: Option<Predicate>,
        /// Fallback when the probe misses.
        on_miss: Vec<FetchPlan>,
        /// Whether the miss result is inserted back into the cache.
        insert_on_miss: bool,
        /// Whether per-source results may be combined concurrently.
        concurrent_sources: bool,
    },
    /// Fetched from the federated sources.
    Fetch {
        /// Per-source fetch plans.
        fetches: Vec<FetchPlan>,
        /// Whether per-source results may be combined concurrently.
        concurrent_sources: bool,
    },
    /// Served locally from the columnar activity mirror: the interval
    /// rewrite becomes a binary-searched row range over rank-sorted
    /// column buffers, and predicate leaves run as vectorized
    /// bitmap-producing kernels. No source round-trip.
    ColumnarScan {
        /// Predicate the filter kernels evaluate over the range (the
        /// residual still re-applies the full query predicate).
        pushdown: Option<Predicate>,
    },
    /// Answered entirely by a materialized aggregate view.
    MaterializedView,
    /// Proven empty by statistics; no access at all.
    ProvedEmpty,
}

/// A similarity constraint with the reference fingerprint resolved.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedSimilarity {
    /// The reference fingerprint.
    pub fingerprint: Fingerprint,
    /// Minimum Tanimoto similarity.
    pub min_tanimoto: f64,
}

/// A substructure constraint with the pattern parsed and
/// fingerprinted (for the prescreen).
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedSubstructure {
    /// The pattern molecule.
    pub pattern: drugtree_chem::Molecule,
    /// Its fingerprint (prescreen).
    pub pattern_fp: Fingerprint,
}

/// Finishing operator of a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Finish {
    /// Return matching rows in leaf-rank order.
    Collect,
    /// Return the k best rows by a unified column.
    TopK {
        /// Ranking column index in the unified schema.
        column: usize,
        /// Result size.
        k: usize,
        /// Sort direction.
        descending: bool,
    },
    /// One row per child of the scope root.
    AggregateChildren {
        /// (child node, display label, interval) per child.
        children: Vec<(NodeId, String, LeafInterval)>,
        /// The metric.
        metric: Metric,
    },
    /// One row per leaf in the interval with its matching-record count.
    CountPerLeaf,
}

/// A complete physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// Root of the addressed subtree.
    pub scope_node: NodeId,
    /// Its leaf interval.
    pub interval: LeafInterval,
    /// Leaves dropped by statistics pruning (count, for metrics).
    pub pruned_leaves: usize,
    /// Row access.
    pub access: Access,
    /// Residual predicate over unified rows (client-side).
    pub residual: Predicate,
    /// Local-column form of the conjuncts the plan pushed down to the
    /// sources, when any were. Not rendered by EXPLAIN; the adaptive
    /// layer uses it to attribute observed cardinalities back to the
    /// predicate that produced them (learned statistics).
    pub pushed_local: Option<Predicate>,
    /// Whether the ligand join is required (residual/similarity/output
    /// reference ligand columns).
    pub ligand_join: bool,
    /// Similarity constraint.
    pub similarity: Option<ResolvedSimilarity>,
    /// Substructure constraint.
    pub substructure: Option<ResolvedSubstructure>,
    /// Finishing operator.
    pub finish: Finish,
    /// Rule applications, for EXPLAIN.
    pub notes: Vec<String>,
    /// Cost-model estimate of the access latency.
    pub estimated_cost: Duration,
    /// Cost-model cardinality estimate (rows shipped by the access).
    pub estimated_rows: u64,
    /// Alternatives the cost-based planner enumerated (empty under the
    /// fixed rule pipeline).
    pub candidates: Vec<PlanCandidate>,
    /// Per-phase rule firings recorded by the phased rewrite engine
    /// (one entry per fixpoint pass), rendered by EXPLAIN.
    pub rule_trace: Vec<crate::phases::PassTrace>,
}

impl PhysicalPlan {
    /// Multi-line EXPLAIN rendering.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Plan: scope=n{} interval=[{}, {}) pruned_leaves={} est_cost={:?} est_rows={}",
            self.scope_node.0,
            self.interval.lo,
            self.interval.hi,
            self.pruned_leaves,
            self.estimated_cost,
            self.estimated_rows,
        );
        match &self.access {
            Access::CacheProbe {
                pushdown,
                on_miss,
                insert_on_miss,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "  CacheProbe pushdown={} insert_on_miss={insert_on_miss}",
                    fmt_pred_opt(pushdown)
                );
                for f in on_miss {
                    let _ = writeln!(out, "    miss-> {}", fmt_fetch(f));
                }
            }
            Access::Fetch {
                fetches,
                concurrent_sources,
            } => {
                let _ = writeln!(out, "  Fetch concurrent_sources={concurrent_sources}");
                for f in fetches {
                    let _ = writeln!(out, "    {}", fmt_fetch(f));
                }
            }
            Access::ColumnarScan { pushdown } => {
                let _ = writeln!(
                    out,
                    "  ColumnarScan kernels=range-slice+filter pushdown={}",
                    fmt_pred_opt(pushdown)
                );
            }
            Access::MaterializedView => {
                let _ = writeln!(out, "  MaterializedView");
            }
            Access::ProvedEmpty => {
                let _ = writeln!(out, "  ProvedEmpty (statistics)");
            }
        }
        for c in &self.candidates {
            let _ = writeln!(
                out,
                "  Candidate [{}] {}: est_cost={:?} est_rows={}{}",
                c.group,
                c.label,
                crate::cost::secs_to_duration(c.cost_secs),
                c.rows,
                if c.chosen { " (chosen)" } else { "" }
            );
        }
        let _ = writeln!(out, "  Residual: {}", fmt_pred(&self.residual));
        if self.ligand_join {
            let _ = writeln!(out, "  LigandJoin");
        }
        if let Some(sim) = &self.similarity {
            let _ = writeln!(out, "  Similarity: tanimoto >= {}", sim.min_tanimoto);
        }
        if let Some(sub) = &self.substructure {
            let _ = writeln!(
                out,
                "  Substructure: pattern of {} atoms (fingerprint prescreen)",
                sub.pattern.atom_count()
            );
        }
        match &self.finish {
            Finish::Collect => {
                let _ = writeln!(out, "  Collect");
            }
            Finish::TopK {
                column,
                k,
                descending,
            } => {
                let _ = writeln!(
                    out,
                    "  TopK k={k} by=col{column} {}",
                    if *descending { "desc" } else { "asc" }
                );
            }
            Finish::AggregateChildren { children, metric } => {
                let _ = writeln!(
                    out,
                    "  AggregateChildren metric={} children={}",
                    metric.label(),
                    children.len()
                );
            }
            Finish::CountPerLeaf => {
                let _ = writeln!(out, "  CountPerLeaf");
            }
        }
        for note in &self.notes {
            let _ = writeln!(out, "  # {note}");
        }
        for pass in &self.rule_trace {
            let firings: Vec<String> = pass
                .firings
                .iter()
                .map(|f| format!("{}={}", f.rule, f.outcome.label()))
                .collect();
            let _ = writeln!(
                out,
                "  RuleTrace {}/{}: {}",
                pass.phase.label(),
                pass.pass,
                firings.join(" ")
            );
        }
        out
    }
}

fn fmt_fetch(f: &FetchPlan) -> String {
    format!(
        "SourceFetch source={} keys={} pushdown={} batched={} max_batch={} concurrent={} \
         est_cost={:?} est_rows={}",
        f.source,
        f.keys.len(),
        fmt_pred_opt(&f.pushdown),
        f.batched,
        f.max_batch,
        f.concurrent,
        f.est_cost,
        f.est_rows
    )
}

fn fmt_pred_opt(p: &Option<Predicate>) -> String {
    match p {
        Some(p) => fmt_pred(p),
        None => "-".to_string(),
    }
}

/// Predicate rendering in the text query language's own syntax: used
/// by EXPLAIN and by `Query`'s `Display`, and re-parseable by
/// `crate::parser`.
pub fn fmt_pred(p: &Predicate) -> String {
    match p {
        Predicate::True => "true".into(),
        Predicate::Compare { column, op, value } => {
            format!("{column} {} {}", op.symbol(), fmt_literal(value))
        }
        Predicate::Between { column, lo, hi } => {
            format!(
                "{column} between {} and {}",
                fmt_literal(lo),
                fmt_literal(hi)
            )
        }
        Predicate::InSet { column, values } => {
            let rendered: Vec<String> = values.iter().map(fmt_literal).collect();
            format!("{column} in ({})", rendered.join(", "))
        }
        Predicate::IsNull { column } => format!("{column} is null"),
        Predicate::And(ps) => {
            let parts: Vec<String> = ps.iter().map(fmt_pred).collect();
            format!("({})", parts.join(" and "))
        }
        Predicate::Or(ps) => {
            let parts: Vec<String> = ps.iter().map(fmt_pred).collect();
            format!("({})", parts.join(" or "))
        }
        Predicate::Not(p) => format!("not {}", fmt_pred(p)),
    }
}

/// Literal rendering in query-language syntax (single-quoted strings).
fn fmt_literal(v: &Value) -> String {
    match v {
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Null => "null".into(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_store::expr::CompareOp;

    #[test]
    fn explain_renders_all_sections() {
        let plan = PhysicalPlan {
            scope_node: NodeId(3),
            interval: LeafInterval { lo: 2, hi: 9 },
            pruned_leaves: 2,
            access: Access::Fetch {
                fetches: vec![FetchPlan {
                    source: "assay-sim".into(),
                    keys: vec![Value::from("P1"), Value::from("P2")],
                    pushdown: Some(Predicate::cmp("p_activity", CompareOp::Ge, 6.0)),
                    batched: true,
                    max_batch: 100,
                    concurrent: true,
                    est_cost: Duration::from_millis(12),
                    est_rows: 7,
                }],
                concurrent_sources: true,
            },
            residual: Predicate::cmp("mw", CompareOp::Lt, 500.0),
            pushed_local: Some(Predicate::cmp("p_activity", CompareOp::Ge, 6.0)),
            ligand_join: true,
            similarity: None,
            substructure: None,
            finish: Finish::TopK {
                column: 5,
                k: 10,
                descending: true,
            },
            notes: vec!["pushdown: p_activity >= 6".into()],
            estimated_cost: Duration::from_millis(42),
            estimated_rows: 7,
            candidates: vec![
                PlanCandidate {
                    group: "access".into(),
                    label: "batched-fetch".into(),
                    cost_secs: 0.012,
                    rows: 7,
                    chosen: true,
                },
                PlanCandidate {
                    group: "access".into(),
                    label: "per-key-fetch".into(),
                    cost_secs: 0.024,
                    rows: 7,
                    chosen: false,
                },
            ],
            rule_trace: vec![crate::phases::PassTrace {
                phase: crate::phases::RewritePhase::Optimize,
                pass: 1,
                firings: vec![crate::phases::RuleFiring {
                    rule: "pushdown",
                    outcome: crate::phases::RuleOutcome::Changed,
                }],
            }],
        };
        let text = plan.explain();
        assert!(text.contains("interval=[2, 9)"));
        assert!(text.contains("est_cost=42ms est_rows=7"));
        assert!(text.contains("SourceFetch source=assay-sim keys=2"));
        assert!(text.contains("batched=true"));
        assert!(text.contains("est_cost=12ms est_rows=7"));
        assert!(
            text.contains("Candidate [access] batched-fetch: est_cost=12ms est_rows=7 (chosen)")
        );
        assert!(text.contains("Candidate [access] per-key-fetch: est_cost=24ms est_rows=7\n"));
        assert!(text.contains("mw < 500"));
        assert!(text.contains("LigandJoin"));
        assert!(text.contains("TopK k=10"));
        assert!(text.contains("# pushdown"));
        assert!(text.contains("RuleTrace optimize/1: pushdown=changed"));
    }

    #[test]
    fn predicate_formatting() {
        let p = Predicate::And(vec![
            Predicate::eq("a", 1i64),
            Predicate::Or(vec![
                Predicate::between("b", 1i64, 2i64),
                Predicate::Not(Box::new(Predicate::IsNull { column: "c".into() })),
            ]),
        ]);
        assert_eq!(
            fmt_pred(&p),
            "(a = 1 and (b between 1 and 2 or not c is null))"
        );
        assert_eq!(fmt_pred(&Predicate::True), "true");
        // Literals render in query-language syntax.
        assert_eq!(fmt_pred(&Predicate::eq("s", "it's")), "s = 'it''s'");
        let inset = Predicate::InSet {
            column: "ligand_id".into(),
            values: vec![Value::from("L1"), Value::from("L2")],
        };
        assert_eq!(fmt_pred(&inset), "ligand_id in ('L1', 'L2')");
    }

    #[test]
    fn proved_empty_explain() {
        let plan = PhysicalPlan {
            scope_node: NodeId(0),
            interval: LeafInterval { lo: 0, hi: 0 },
            pruned_leaves: 5,
            access: Access::ProvedEmpty,
            residual: Predicate::True,
            pushed_local: None,
            ligand_join: false,
            similarity: None,
            substructure: None,
            finish: Finish::Collect,
            notes: vec![],
            estimated_cost: Duration::ZERO,
            estimated_rows: 0,
            candidates: vec![],
            rule_trace: vec![],
        };
        assert!(plan.explain().contains("ProvedEmpty"));
    }
}
