//! Overlay statistics: the optimizer's knowledge of the data.
//!
//! Collected once after integration (one scan per assay source — an
//! ingest-time cost the paper's interactive queries amortize), the
//! statistics answer two planning questions:
//!
//! 1. **Pruning (D4)** — "can this subtree/leaf contribute at all?"
//!    via per-leaf record counts (prefix sums → O(1) per interval) and
//!    per-leaf maximum pActivity (sparse table → O(1) range max).
//! 2. **Selectivity** — "how selective is this predicate?" via
//!    equi-width histograms on the numeric columns.

use crate::dataset::{unify_assay_row, Dataset};
use crate::Result;
use drugtree_phylo::index::LeafInterval;
use drugtree_sources::source::{FetchRequest, SourceKind};
use drugtree_store::expr::{CompareOp, Predicate};
use drugtree_store::value::Value;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// An equi-width histogram over one numeric column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    min: f64,
    max: f64,
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Build from observed values with `nbuckets` buckets.
    pub fn build(values: impl IntoIterator<Item = f64>, nbuckets: usize) -> Histogram {
        let values: Vec<f64> = values.into_iter().filter(|v| v.is_finite()).collect();
        let nbuckets = nbuckets.max(1);
        if values.is_empty() {
            return Histogram {
                min: 0.0,
                max: 0.0,
                buckets: vec![0; nbuckets],
                total: 0,
            };
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut buckets = vec![0u64; nbuckets];
        let width = ((max - min) / nbuckets as f64).max(f64::MIN_POSITIVE);
        for v in &values {
            let b = (((v - min) / width) as usize).min(nbuckets - 1);
            buckets[b] += 1;
        }
        Histogram {
            min,
            max,
            buckets,
            total: values.len() as u64,
        }
    }

    /// Number of observed values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Estimated fraction of values satisfying `op value` (in [0, 1]).
    ///
    /// Edge cases are pinned rather than extrapolated: a NaN literal
    /// matches nothing (except `Ne`, which every stored value
    /// satisfies), infinite literals clamp to all-or-nothing, and `Eq`
    /// estimates one row's share in the probed bucket (zero for an
    /// empty bucket or an out-of-range probe) instead of a whole
    /// bucket's share — so a single-bucket histogram no longer claims
    /// every row equals any probed value.
    pub fn selectivity(&self, op: CompareOp, value: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if value.is_nan() {
            // IEEE comparisons against NaN are all false; `Ne` is the
            // lone complement that is always true.
            return if op == CompareOp::Ne { 1.0 } else { 0.0 };
        }
        if value.is_infinite() {
            let everything_below = value.is_sign_positive();
            return match op {
                CompareOp::Lt | CompareOp::Le => {
                    if everything_below {
                        1.0
                    } else {
                        0.0
                    }
                }
                CompareOp::Gt | CompareOp::Ge => {
                    if everything_below {
                        0.0
                    } else {
                        1.0
                    }
                }
                // Only finite values are binned (see `build`), so no
                // stored value equals an infinity.
                CompareOp::Eq => 0.0,
                CompareOp::Ne => 1.0,
            };
        }
        let frac_below = self.fraction_below(value);
        let eq = self.point_mass(value);
        match op {
            CompareOp::Lt => frac_below,
            CompareOp::Le => (frac_below + eq).min(1.0),
            CompareOp::Gt => 1.0 - (frac_below + eq).min(1.0),
            CompareOp::Ge => 1.0 - frac_below,
            CompareOp::Eq => eq,
            CompareOp::Ne => 1.0 - eq,
        }
        .clamp(0.0, 1.0)
    }

    /// Estimated fraction of values exactly equal to `value`: one
    /// row's share when the probed bucket is non-empty (values within
    /// a bucket are assumed distinct), zero for empty buckets and for
    /// probes outside `[min, max]`; a constant column (`min == max`)
    /// is all-or-nothing.
    fn point_mass(&self, value: f64) -> f64 {
        if self.total == 0 || value < self.min || value > self.max {
            return 0.0;
        }
        if self.min == self.max {
            return if value == self.min { 1.0 } else { 0.0 };
        }
        let width = ((self.max - self.min) / self.buckets.len() as f64).max(f64::MIN_POSITIVE);
        let b = (((value - self.min) / width) as usize).min(self.buckets.len() - 1);
        if self.buckets[b] == 0 {
            0.0
        } else {
            1.0 / self.total as f64
        }
    }

    /// Estimated fraction of values strictly below `value`.
    fn fraction_below(&self, value: f64) -> f64 {
        if self.total == 0 || value <= self.min {
            return 0.0;
        }
        if value > self.max {
            return 1.0;
        }
        let width = ((self.max - self.min) / self.buckets.len() as f64).max(f64::MIN_POSITIVE);
        let pos = (value - self.min) / width;
        let full = pos.floor() as usize;
        let below: u64 = self.buckets.iter().take(full.min(self.buckets.len())).sum();
        let partial = if full < self.buckets.len() {
            self.buckets[full] as f64 * (pos - pos.floor())
        } else {
            0.0
        };
        ((below as f64 + partial) / self.total as f64).clamp(0.0, 1.0)
    }
}

/// O(1) range-maximum over a fixed array (sparse table).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RangeMax {
    /// table[k][i] = max of [i, i + 2^k).
    table: Vec<Vec<f64>>,
}

impl RangeMax {
    /// Build over the values.
    pub fn build(values: &[f64]) -> RangeMax {
        let n = values.len();
        let mut table = vec![values.to_vec()];
        let mut k = 1;
        while (1 << k) <= n {
            let prev = &table[k - 1];
            let half = 1 << (k - 1);
            let row: Vec<f64> = (0..=(n - (1 << k)))
                .map(|i| prev[i].max(prev[i + half]))
                .collect();
            table.push(row);
            k += 1;
        }
        RangeMax { table }
    }

    /// Maximum over `[lo, hi)`; `None` for an empty range.
    pub fn max(&self, lo: u32, hi: u32) -> Option<f64> {
        let (lo, hi) = (lo as usize, hi as usize);
        let n = self.table.first().map_or(0, Vec::len);
        if lo >= hi || lo >= n {
            return None;
        }
        let hi = hi.min(n);
        let len = hi - lo;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize;
        Some(self.table[k][lo].max(self.table[k][hi - (1 << k)]))
    }
}

/// The statistics bundle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverlayStats {
    /// Per-leaf activity record counts.
    counts: Vec<u64>,
    /// Prefix sums of `counts` (length n+1).
    prefix: Vec<u64>,
    /// Per-leaf maximum pActivity (NEG_INFINITY for empty leaves).
    max_p: RangeMax,
    /// pActivity histogram.
    pub p_activity: Histogram,
    /// Molecular-weight histogram (from the local ligand table).
    pub mw: Histogram,
    /// Simulated cost of the collection pass.
    pub collection_cost: Duration,
}

impl OverlayStats {
    /// Collect statistics with one scan per assay source.
    pub fn collect(dataset: &Dataset) -> Result<OverlayStats> {
        let n = dataset.leaf_count();
        let mut counts = vec![0u64; n];
        let mut max_p = vec![f64::NEG_INFINITY; n];
        let mut p_values = Vec::new();
        let mut cost = Duration::ZERO;

        for source in dataset.registry.distinct_by_kind(SourceKind::Assay) {
            let resp = source.fetch(&FetchRequest::scan())?;
            cost += resp.cost;
            for raw in &resp.rows {
                if let Some(row) = unify_assay_row(dataset, raw) {
                    // `unify_assay_row` fixed the column types; skip
                    // rather than panic if not.
                    let (Some(rank), Some(p)) = (row[0].as_int(), row[5].as_f64()) else {
                        continue;
                    };
                    let rank = rank as usize;
                    counts[rank] += 1;
                    max_p[rank] = max_p[rank].max(p);
                    p_values.push(p);
                }
            }
        }

        let mut prefix = vec![0u64; n + 1];
        for (i, &c) in counts.iter().enumerate() {
            prefix[i + 1] = prefix[i] + c;
        }

        // Ligand MW histogram from the local table.
        let ligands = dataset
            .overlay
            .catalog()
            .table(drugtree_integrate::overlay::tables::LIGAND)?;
        let mw_col = ligands.schema().column_index("mw")?;
        let mws: Vec<f64> = ligands
            .scan()
            .filter_map(|(_, r)| r[mw_col].as_f64())
            .collect();

        Ok(OverlayStats {
            counts,
            prefix,
            max_p: RangeMax::build(&max_p),
            p_activity: Histogram::build(p_values, 32),
            mw: Histogram::build(mws, 32),
            collection_cost: cost,
        })
    }

    /// Activity records attached to one leaf.
    pub fn leaf_count(&self, rank: u32) -> u64 {
        self.counts.get(rank as usize).copied().unwrap_or(0)
    }

    /// Total records under an interval, O(1).
    pub fn interval_count(&self, iv: LeafInterval) -> u64 {
        let lo = (iv.lo as usize).min(self.prefix.len() - 1);
        let hi = (iv.hi as usize).min(self.prefix.len() - 1);
        if lo >= hi {
            0
        } else {
            self.prefix[hi] - self.prefix[lo]
        }
    }

    /// Maximum pActivity under an interval, O(1); `None` when the
    /// interval holds no records.
    pub fn interval_max_p(&self, iv: LeafInterval) -> Option<f64> {
        match self.max_p.max(iv.lo, iv.hi) {
            Some(v) if v.is_finite() => Some(v),
            _ => None,
        }
    }

    /// Total records overall.
    pub fn total_count(&self) -> u64 {
        *self.prefix.last().unwrap_or(&0)
    }

    /// Estimate the fraction of activity rows a predicate keeps.
    /// Conjunctions multiply (independence assumption), disjunctions
    /// saturate-add; unknown shapes estimate 1.0 (no reduction).
    pub fn predicate_selectivity(&self, pred: &Predicate) -> f64 {
        match pred {
            Predicate::True => 1.0,
            Predicate::Compare { column, op, value } => {
                let v = match value {
                    Value::Int(i) => *i as f64,
                    Value::Float(f) => *f,
                    _ => return 0.5,
                };
                match column.as_str() {
                    "p_activity" => self.p_activity.selectivity(*op, v),
                    "mw" => self.mw.selectivity(*op, v),
                    _ => 0.5,
                }
            }
            Predicate::Between { column, lo, hi } => {
                let ge = Predicate::Compare {
                    column: column.clone(),
                    op: CompareOp::Ge,
                    value: lo.clone(),
                };
                let le = Predicate::Compare {
                    column: column.clone(),
                    op: CompareOp::Le,
                    value: hi.clone(),
                };
                (self.predicate_selectivity(&ge) + self.predicate_selectivity(&le) - 1.0)
                    .clamp(0.0, 1.0)
            }
            Predicate::InSet { values, .. } => (values.len() as f64 * 0.05).clamp(0.0, 1.0),
            Predicate::IsNull { .. } => 0.05,
            Predicate::And(ps) => ps.iter().map(|p| self.predicate_selectivity(p)).product(),
            Predicate::Or(ps) => ps
                .iter()
                .map(|p| self.predicate_selectivity(p))
                .fold(0.0, |acc, s| (acc + s).min(1.0)),
            Predicate::Not(p) => 1.0 - self.predicate_selectivity(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_fixtures::small_dataset;
    use drugtree_sources::source::SourceCapabilities;

    #[test]
    fn histogram_selectivity() {
        let h = Histogram::build((0..100).map(f64::from), 10);
        assert_eq!(h.total(), 100);
        let s = h.selectivity(CompareOp::Lt, 50.0);
        assert!((s - 0.5).abs() < 0.06, "got {s}");
        assert!(h.selectivity(CompareOp::Lt, -5.0) == 0.0);
        assert!(h.selectivity(CompareOp::Ge, -5.0) == 1.0);
        assert!(h.selectivity(CompareOp::Gt, 200.0) <= 0.11);
        let eq = h.selectivity(CompareOp::Eq, 42.0);
        assert!(eq > 0.0 && eq <= 0.11);
    }

    #[test]
    fn histogram_empty_and_constant() {
        let h = Histogram::build(std::iter::empty(), 8);
        assert_eq!(h.total(), 0);
        assert_eq!(h.selectivity(CompareOp::Lt, 1.0), 0.0);
        let h = Histogram::build([5.0, 5.0, 5.0], 8);
        assert_eq!(h.total(), 3);
        assert!(h.selectivity(CompareOp::Ge, 5.0) > 0.9);
    }

    #[test]
    fn range_max() {
        let rm = RangeMax::build(&[1.0, 5.0, 2.0, 9.0, 3.0]);
        assert_eq!(rm.max(0, 5), Some(9.0));
        assert_eq!(rm.max(0, 3), Some(5.0));
        assert_eq!(rm.max(2, 3), Some(2.0));
        assert_eq!(rm.max(4, 5), Some(3.0));
        assert_eq!(rm.max(3, 3), None);
        assert_eq!(rm.max(9, 12), None);
        let empty = RangeMax::build(&[]);
        assert_eq!(empty.max(0, 1), None);
    }

    #[test]
    fn histogram_single_bucket_and_out_of_range() {
        // A single bucket no longer claims every row equals the probe:
        // `Eq` is one row's share of the (non-empty) bucket.
        let h = Histogram::build([1.0, 2.0, 3.0, 4.0], 1);
        assert_eq!(h.total(), 4);
        assert_eq!(h.selectivity(CompareOp::Eq, 2.0), 0.25);
        assert_eq!(h.selectivity(CompareOp::Ne, 2.0), 0.75);
        assert_eq!(h.selectivity(CompareOp::Lt, 1.0), 0.0);
        assert_eq!(h.selectivity(CompareOp::Ge, 1.0), 1.0);
        // Probes entirely outside the observed [min, max] clamp to 0 or 1.
        assert_eq!(h.selectivity(CompareOp::Lt, -100.0), 0.0);
        assert_eq!(h.selectivity(CompareOp::Ge, -100.0), 1.0);
        assert_eq!(h.selectivity(CompareOp::Lt, 100.0), 1.0);
        assert_eq!(h.selectivity(CompareOp::Ge, 100.0), 0.0);
        assert_eq!(h.selectivity(CompareOp::Eq, 100.0), 0.0);
        assert_eq!(h.selectivity(CompareOp::Ne, 100.0), 1.0);
        // nbuckets = 0 is clamped to one bucket rather than panicking;
        // a constant column stays all-or-nothing on the exact value.
        let h = Histogram::build([7.0], 0);
        assert_eq!(h.total(), 1);
        assert_eq!(h.selectivity(CompareOp::Eq, 7.0), 1.0);
        assert_eq!(h.selectivity(CompareOp::Ne, 7.0), 0.0);
    }

    #[test]
    fn histogram_nan_and_infinite_literals() {
        let h = Histogram::build((0..100).map(f64::from), 10);
        // NaN comparisons are all false except `Ne`, which is always
        // true — no extrapolated garbage from the bucket arithmetic.
        for op in [
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
            CompareOp::Eq,
        ] {
            assert_eq!(h.selectivity(op, f64::NAN), 0.0, "{op:?} NaN");
        }
        assert_eq!(h.selectivity(CompareOp::Ne, f64::NAN), 1.0);
        // +inf: every stored value is below it; none equals it.
        assert_eq!(h.selectivity(CompareOp::Lt, f64::INFINITY), 1.0);
        assert_eq!(h.selectivity(CompareOp::Le, f64::INFINITY), 1.0);
        assert_eq!(h.selectivity(CompareOp::Gt, f64::INFINITY), 0.0);
        assert_eq!(h.selectivity(CompareOp::Ge, f64::INFINITY), 0.0);
        assert_eq!(h.selectivity(CompareOp::Eq, f64::INFINITY), 0.0);
        assert_eq!(h.selectivity(CompareOp::Ne, f64::INFINITY), 1.0);
        // -inf mirrors.
        assert_eq!(h.selectivity(CompareOp::Lt, f64::NEG_INFINITY), 0.0);
        assert_eq!(h.selectivity(CompareOp::Le, f64::NEG_INFINITY), 0.0);
        assert_eq!(h.selectivity(CompareOp::Gt, f64::NEG_INFINITY), 1.0);
        assert_eq!(h.selectivity(CompareOp::Ge, f64::NEG_INFINITY), 1.0);
        assert_eq!(h.selectivity(CompareOp::Eq, f64::NEG_INFINITY), 0.0);
        assert_eq!(h.selectivity(CompareOp::Ne, f64::NEG_INFINITY), 1.0);
        // An empty histogram stays 0.0 for every op, NaN included.
        let empty = Histogram::build(std::iter::empty(), 4);
        assert_eq!(empty.selectivity(CompareOp::Ne, f64::NAN), 0.0);
        assert_eq!(empty.selectivity(CompareOp::Lt, f64::INFINITY), 0.0);
    }

    #[test]
    fn histogram_eq_empty_bucket_is_zero() {
        // Bimodal data: the middle buckets are empty, so an equality
        // probe landing there estimates zero rather than a fake mass.
        let values = (0..10).map(f64::from).chain((90..100).map(f64::from));
        let h = Histogram::build(values, 10);
        assert_eq!(h.selectivity(CompareOp::Eq, 50.0), 0.0);
        assert_eq!(h.selectivity(CompareOp::Ne, 50.0), 1.0);
        let hit = h.selectivity(CompareOp::Eq, 5.0);
        assert!(hit > 0.0 && hit <= 0.06, "got {hit}");
    }

    #[test]
    fn range_max_degenerate_ranges() {
        let rm = RangeMax::build(&[4.0, 1.0, 8.0]);
        // Inverted bounds (lo > hi) are an empty range, not a panic.
        assert_eq!(rm.max(2, 1), None);
        assert_eq!(rm.max(3, 0), None);
        // Zero-width and fully out-of-range probes are empty too.
        assert_eq!(rm.max(1, 1), None);
        assert_eq!(rm.max(5, 9), None);
        // A range overhanging the end clamps to the array.
        assert_eq!(rm.max(1, 100), Some(8.0));
        // Single-element build answers its only range.
        let one = RangeMax::build(&[2.5]);
        assert_eq!(one.max(0, 1), Some(2.5));
        assert_eq!(one.max(1, 2), None);
        // Empty build with inverted bounds stays None.
        let empty = RangeMax::build(&[]);
        assert_eq!(empty.max(3, 1), None);
    }

    #[test]
    fn collect_from_sources() {
        let d = small_dataset(SourceCapabilities::full());
        let stats = OverlayStats::collect(&d).unwrap();
        assert_eq!(stats.total_count(), 4);
        assert_eq!(stats.leaf_count(0), 2); // P1 has two records
        assert_eq!(stats.leaf_count(3), 0); // P4 is empty
        assert_eq!(stats.interval_count(LeafInterval { lo: 0, hi: 2 }), 3);
        assert_eq!(stats.interval_count(LeafInterval { lo: 3, hi: 4 }), 0);
        assert!(stats.collection_cost > Duration::ZERO);
        // P3-L3 at 1 nM -> pActivity 9 is the global max.
        let max = stats.interval_max_p(LeafInterval { lo: 0, hi: 4 }).unwrap();
        assert!((max - 9.0).abs() < 1e-9);
        assert!(stats
            .interval_max_p(LeafInterval { lo: 3, hi: 4 })
            .is_none());
    }

    #[test]
    fn predicate_selectivity_composition() {
        let d = small_dataset(SourceCapabilities::full());
        let stats = OverlayStats::collect(&d).unwrap();
        let narrow = Predicate::cmp("p_activity", CompareOp::Ge, 8.5);
        let wide = Predicate::cmp("p_activity", CompareOp::Ge, 5.0);
        assert!(stats.predicate_selectivity(&narrow) < stats.predicate_selectivity(&wide));
        assert_eq!(stats.predicate_selectivity(&Predicate::True), 1.0);
        let conj = narrow.clone().and(wide.clone());
        assert!(stats.predicate_selectivity(&conj) <= stats.predicate_selectivity(&narrow) + 1e-12);
        let not = Predicate::Not(Box::new(narrow.clone()));
        let s = stats.predicate_selectivity(&narrow) + stats.predicate_selectivity(&not);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
