//! The phased rewrite engine that turns a [`Query`] into a
//! [`PhysicalPlan`] (design decision D13).
//!
//! Planning runs four explicit phases in order (see
//! [`crate::phases::PHASE_ORDER`]):
//!
//! 1. **Analyze** resolves the query against the dataset: the scope
//!    becomes a leaf interval via the tree index (the "standard" from
//!    tree/XML databases, design decision D1), similarity and
//!    substructure references resolve to fingerprints/patterns, and
//!    the assay sources, candidate keys, and ligand-join need are
//!    discovered.
//! 2. **Canonicalize** normalizes the predicate ([`crate::ast::canon`]):
//!    negation-normal form, flattening, constant folding, `between`
//!    merging, and conjunct deduplication, each individually gated.
//! 3. **Optimize** applies the cost-reducing rewrites: statistics
//!    pruning (D4), predicate pushdown, selectivity ordering,
//!    cardinality estimation from the overlay histograms, replica
//!    selection, and matview/columnar/cache eligibility.
//! 4. **Lower** produces the physical shape: batching + concurrent
//!    dispatch (D3), per-source fetch plans, access-path selection
//!    (including the semantic cache wrap, D2), and the finish operator.
//!
//! Every rule lives in the per-phase registry
//! ([`crate::phases::REGISTRY`]) with a name, description, and — for
//! flag-gated rules — a toggle into [`OptimizerConfig`], so experiment
//! E4's ablations and the `drugtree rules` listing derive from one
//! table. Within a phase the driver repeats its rules until a pass
//! changes nothing (bounded by [`crate::phases::MAX_PASSES_PER_PHASE`]),
//! records every firing in the plan's rule trace for EXPLAIN, and
//! checks that phase's structural invariants at the boundary
//! (`crate::validate`). `OptimizerConfig::naive()` reproduces the
//! unoptimized DrugTree described in the paper's opening: one
//! sequential round-trip per leaf per source, all filtering
//! client-side, no caching, no pruning.
//!
//! With [`OptimizerConfig::cost_based`] set, the Lower phase's
//! access-path selection switches from the flag-driven fixed order to
//! enumeration: rules *propose* alternatives
//! ([`crate::plan::PlanCandidate`] — matview answer vs. batched vs.
//! per-key fetch; per-replica access paths; cached vs. direct) and the
//! calibrated cost model ([`crate::cost::CostModel`], design decision
//! D8) prices each one; the cheapest correct alternative wins and
//! every candidate is recorded on the plan for EXPLAIN and validation.

use crate::adaptive::{LearnedStats, SelectivitySource, StatsView};
use crate::ast::{columns, Query, QueryKind, SimilaritySpec};
use crate::columnar::ActivityColumns;
use crate::cost::CostModel;
use crate::dataset::{unified_schema, Dataset};
use crate::matview::MaterializedAggregates;
use crate::phases::{
    PassTrace, RewritePhase, RuleDef, RuleFiring, RuleOutcome, MAX_PASSES_PER_PHASE, PHASE_ORDER,
};
use crate::plan::{
    Access, FetchPlan, Finish, PhysicalPlan, PlanCandidate, ResolvedSimilarity,
    ResolvedSubstructure,
};
use crate::stats::OverlayStats;
use crate::{QueryError, Result};
use drugtree_chem::fingerprint::Fingerprint;
use drugtree_chem::smiles::parse_smiles;
use drugtree_phylo::index::LeafInterval;
use drugtree_phylo::tree::NodeId;
use drugtree_sources::source::SourceKind;
use drugtree_sources::DataSource;
use drugtree_store::expr::{CompareOp, Predicate};
use drugtree_store::value::Value;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;

/// Which rewrites are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Canonicalize: push negations to the predicate leaves
    /// (double-negation elimination, De Morgan).
    #[serde(default)]
    pub canon_nnf: bool,
    /// Canonicalize: flatten nested and/or, unwrap singletons.
    #[serde(default)]
    pub canon_flatten: bool,
    /// Canonicalize: fold constant true/false subterms.
    #[serde(default)]
    pub canon_fold: bool,
    /// Canonicalize: merge a column's >= and <= bounds into `between`.
    #[serde(default)]
    pub canon_between: bool,
    /// Canonicalize: drop duplicate conjuncts and disjuncts.
    #[serde(default)]
    pub canon_dedup: bool,
    /// Push supported predicate conjuncts into source fetches.
    pub pushdown: bool,
    /// Coalesce key lookups into batches.
    pub batching: bool,
    /// Dispatch batches and sources concurrently.
    pub concurrent_dispatch: bool,
    /// Prune leaves/subtrees via statistics.
    pub stats_pruning: bool,
    /// Probe and populate the semantic cache.
    pub semantic_cache: bool,
    /// Reorder residual conjuncts by selectivity.
    pub selectivity_ordering: bool,
    /// Answer eligible aggregates from the materialized view.
    pub use_matview: bool,
    /// Serve each declared replica group from its cheapest member
    /// instead of fetching every copy.
    pub replica_selection: bool,
    /// Answer interval scopes from the local columnar activity mirror
    /// (when one is built and fresh) with vectorized kernels instead
    /// of fetching from sources.
    pub columnar_scan: bool,
    /// Run the plan-invariant validator on every plan the executor
    /// receives (debug builds always validate inside the optimizer;
    /// this flag extends the check to release builds so benches can
    /// measure its cost). Not a rewrite rule: absent from
    /// [`crate::phases::REGISTRY`] and untouched by `ablate`.
    pub validate: bool,
    /// Choose access paths by enumerating alternatives and pricing
    /// them with the calibrated cost model instead of applying the
    /// fixed rule order. Not a rewrite rule: absent from
    /// [`crate::phases::REGISTRY`] and untouched by `ablate`.
    pub cost_based: bool,
}

impl OptimizerConfig {
    /// Everything on.
    pub fn full() -> OptimizerConfig {
        OptimizerConfig {
            canon_nnf: true,
            canon_flatten: true,
            canon_fold: true,
            canon_between: true,
            canon_dedup: true,
            pushdown: true,
            batching: true,
            concurrent_dispatch: true,
            stats_pruning: true,
            semantic_cache: true,
            selectivity_ordering: true,
            use_matview: true,
            replica_selection: true,
            columnar_scan: true,
            validate: true,
            cost_based: false,
        }
    }

    /// Everything on, with access paths chosen by the calibrated cost
    /// model instead of the fixed rule order.
    pub fn cost_based() -> OptimizerConfig {
        OptimizerConfig {
            cost_based: true,
            ..OptimizerConfig::full()
        }
    }

    /// The unoptimized baseline.
    pub fn naive() -> OptimizerConfig {
        OptimizerConfig {
            canon_nnf: false,
            canon_flatten: false,
            canon_fold: false,
            canon_between: false,
            canon_dedup: false,
            pushdown: false,
            batching: false,
            concurrent_dispatch: false,
            stats_pruning: false,
            semantic_cache: false,
            selectivity_ordering: false,
            use_matview: false,
            replica_selection: false,
            columnar_scan: false,
            validate: false,
            cost_based: false,
        }
    }

    /// `full()` with one named rule disabled — the E4 ablation helper.
    /// Names resolve against the phase registry
    /// ([`crate::phases::REGISTRY`]), so every flag-gated rule is
    /// ablatable automatically. Unknown (or structural, always-on)
    /// rule names are a caller error reported as
    /// [`QueryError::UnknownRule`], never a panic.
    pub fn ablate(rule: &str) -> Result<OptimizerConfig> {
        let mut c = OptimizerConfig::full();
        match crate::phases::rule_named(rule).and_then(|r| r.toggle) {
            Some(toggle) => {
                toggle(&mut c, false);
                Ok(c)
            }
            None => Err(QueryError::UnknownRule(rule.to_string())),
        }
    }
}

/// The planner.
#[derive(Debug, Clone)]
pub struct Optimizer {
    config: OptimizerConfig,
}

impl Optimizer {
    /// Build with a configuration.
    pub fn new(config: OptimizerConfig) -> Optimizer {
        Optimizer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> OptimizerConfig {
        self.config
    }

    /// Plan a query. In cost-based mode alternatives are priced with
    /// an uncalibrated (prior-only) model; executors that carry a
    /// calibrated [`CostModel`] use [`Optimizer::plan_with`] instead.
    pub fn plan(
        &self,
        dataset: &Dataset,
        stats: Option<&OverlayStats>,
        matview: Option<&MaterializedAggregates>,
        query: &Query,
    ) -> Result<PhysicalPlan> {
        self.plan_with(dataset, stats, matview, None, query)
    }

    /// Plan a query, pricing cost-based alternatives with `cost` (the
    /// prior-only default model when absent). Fixed-order planning
    /// ignores `cost` entirely. Plans without a columnar mirror; the
    /// executor carries one via [`Optimizer::plan_full`].
    pub fn plan_with(
        &self,
        dataset: &Dataset,
        stats: Option<&OverlayStats>,
        matview: Option<&MaterializedAggregates>,
        cost: Option<&CostModel>,
        query: &Query,
    ) -> Result<PhysicalPlan> {
        self.plan_full(dataset, stats, matview, None, cost, query)
    }

    /// Plan with every auxiliary structure the executor can carry: the
    /// materialized aggregate view, the columnar activity mirror, and
    /// the calibrated cost model.
    pub fn plan_full(
        &self,
        dataset: &Dataset,
        stats: Option<&OverlayStats>,
        matview: Option<&MaterializedAggregates>,
        columnar: Option<&ActivityColumns>,
        cost: Option<&CostModel>,
        query: &Query,
    ) -> Result<PhysicalPlan> {
        self.plan_adaptive(dataset, stats, None, 0, matview, columnar, cost, query)
    }

    /// Plan with every auxiliary structure *plus* the adaptive layer's
    /// learned statistics (design decision D15). When `learned` is
    /// present, selectivity ordering and cardinality estimation route
    /// through a [`StatsView`] that prefers fresh learned coverage over
    /// the nominal histograms; `now_ns` is the virtual-clock instant
    /// used for the learned staleness check. `plan_full` delegates here
    /// with no learned provider, so nominal-only planning is
    /// byte-identical to before the seam existed.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_adaptive(
        &self,
        dataset: &Dataset,
        stats: Option<&OverlayStats>,
        learned: Option<&LearnedStats>,
        now_ns: u64,
        matview: Option<&MaterializedAggregates>,
        columnar: Option<&ActivityColumns>,
        cost: Option<&CostModel>,
        query: &Query,
    ) -> Result<PhysicalPlan> {
        validate(query)?;
        let default_cost_model;
        let cost_model: Option<&CostModel> = if self.config.cost_based {
            Some(match cost {
                Some(c) => c,
                None => {
                    default_cost_model = CostModel::new();
                    &default_cost_model
                }
            })
        } else {
            None
        };

        let mut rw = Rewrite::new(
            &self.config,
            dataset,
            stats,
            learned,
            now_ns,
            matview,
            columnar,
            cost_model,
            query,
        );
        for phase in PHASE_ORDER {
            rw.run_phase(phase)?;
            rw.check_phase_boundary(phase)?;
        }
        let plan = rw.into_plan();

        // In debug builds every plan the rewrite pipeline emits is
        // validated, so a rule regression fails fast in any test that
        // plans a query. Release builds opt in via `config.validate`
        // (checked by the executor) to keep the planner's hot path
        // measurable with and without the cost. This full-plan check
        // doubles as the Lower phase's boundary validation.
        #[cfg(debug_assertions)]
        crate::validate::PlanValidator::new(dataset)
            .validate(&plan)
            .map_err(QueryError::Invariant)?;

        Ok(plan)
    }
}

/// The in-flight draft the phased engine rewrites (design decision
/// D13): the planning inputs plus every product a phase computes.
/// Rules mutate the draft through [`Rewrite::apply`] and report a
/// [`RuleOutcome`]; [`Rewrite::into_plan`] assembles the final
/// [`PhysicalPlan`] once every phase has run.
struct Rewrite<'a> {
    config: &'a OptimizerConfig,
    dataset: &'a Dataset,
    stats: Option<&'a OverlayStats>,
    /// Learned statistics provider (adaptive layer); selectivity
    /// estimates route through [`StatsView`] so fresh learned coverage
    /// wins over the nominal histograms when it exists.
    learned: Option<&'a LearnedStats>,
    /// Virtual-clock instant for the learned staleness check.
    now_ns: u64,
    matview: Option<&'a MaterializedAggregates>,
    columnar: Option<&'a ActivityColumns>,
    cost_model: Option<&'a CostModel>,
    query: &'a Query,

    notes: Vec<String>,
    candidates: Vec<PlanCandidate>,
    rule_trace: Vec<PassTrace>,
    /// Structural and run-once rules that already fired (so every
    /// later pass honestly reports `NoChange`).
    done: Vec<&'static str>,

    // Analyze products.
    scope_node: Option<NodeId>,
    interval: Option<LeafInterval>,
    similarity: Option<ResolvedSimilarity>,
    substructure: Option<ResolvedSubstructure>,
    assay_sources: Vec<Arc<dyn DataSource>>,
    ligand_join: bool,
    keys: Vec<(u32, Value)>,
    total_leaves: usize,

    // Canonicalize product: the normalized predicate. Starts as the
    // query predicate verbatim; with every canon flag off it stays
    // byte-identical to it.
    canonical: Predicate,

    // Optimize products.
    residual: Option<Predicate>,
    pruned: usize,
    proved_empty: bool,
    pruning_bound: Option<f64>,
    pushdown: Option<Predicate>,
    /// Local (pre-translation) forms of the pushed conjuncts, used to
    /// price their selectivity against the overlay histograms (which
    /// index local columns like `p_activity`, not remote `value_nm`).
    pushed_local: Option<Predicate>,
    key_values: Vec<Value>,
    expected_rows: u64,
    /// `Some` once replica selection ran; `None` means every assay
    /// source participates.
    chosen_sources: Option<Vec<Arc<dyn DataSource>>>,
    matview_eligible: bool,
    columnar_ready: bool,
    cache_wrap: bool,
    cache_pred: Option<Predicate>,

    // Lower products.
    fixed_fetches: Vec<FetchPlan>,
    access: Option<Access>,
    finish: Option<Finish>,
}

impl<'a> Rewrite<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        config: &'a OptimizerConfig,
        dataset: &'a Dataset,
        stats: Option<&'a OverlayStats>,
        learned: Option<&'a LearnedStats>,
        now_ns: u64,
        matview: Option<&'a MaterializedAggregates>,
        columnar: Option<&'a ActivityColumns>,
        cost_model: Option<&'a CostModel>,
        query: &'a Query,
    ) -> Rewrite<'a> {
        Rewrite {
            config,
            dataset,
            stats,
            learned,
            now_ns,
            matview,
            columnar,
            cost_model,
            query,
            notes: Vec::new(),
            candidates: Vec::new(),
            rule_trace: Vec::new(),
            done: Vec::new(),
            scope_node: None,
            interval: None,
            similarity: None,
            substructure: None,
            assay_sources: Vec::new(),
            ligand_join: false,
            keys: Vec::new(),
            total_leaves: 0,
            canonical: query.predicate.clone(),
            residual: None,
            pruned: 0,
            proved_empty: false,
            pruning_bound: None,
            pushdown: None,
            pushed_local: None,
            key_values: Vec::new(),
            expected_rows: 0,
            chosen_sources: None,
            matview_eligible: false,
            columnar_ready: false,
            cache_wrap: false,
            cache_pred: None,
            fixed_fetches: Vec::new(),
            access: None,
            finish: None,
        }
    }

    /// The selectivity seam for this planning run: a [`StatsView`]
    /// over the nominal histograms plus any learned provider. `None`
    /// only when no statistics were collected at all.
    fn stats_view(&self) -> Option<StatsView<'a>> {
        self.stats
            .map(|s| StatsView::with_learned(s, self.learned, self.now_ns))
    }

    /// Run one phase's rules to a fixpoint (every rule once per pass,
    /// repeated until a pass changes nothing), recording each firing.
    fn run_phase(&mut self, phase: RewritePhase) -> Result<()> {
        for pass in 1..=MAX_PASSES_PER_PHASE {
            let mut firings = Vec::new();
            let mut any_changed = false;
            for rule in crate::phases::rules_in(phase) {
                let outcome = self.apply(rule)?;
                any_changed |= outcome == RuleOutcome::Changed;
                firings.push(RuleFiring {
                    rule: rule.name,
                    outcome,
                });
            }
            self.rule_trace.push(PassTrace {
                phase,
                pass,
                firings,
            });
            if !any_changed {
                return Ok(());
            }
        }
        Err(QueryError::Plan(format!(
            "phase {} did not reach a fixpoint within {MAX_PASSES_PER_PHASE} passes",
            phase.label()
        )))
    }

    /// The phase's structural postconditions, checked the moment it
    /// completes so a bad rule fails at its own boundary. Lower's
    /// boundary is the full [`crate::validate::PlanValidator`], run on
    /// the assembled plan by `plan_full`.
    fn check_phase_boundary(&self, phase: RewritePhase) -> Result<()> {
        let mut violations = Vec::new();
        match phase {
            RewritePhase::Analyze => {
                crate::validate::phase_interval_bounds(
                    self.dataset,
                    self.interval(),
                    &mut violations,
                );
            }
            RewritePhase::Canonicalize => {
                crate::validate::phase_canonical_form(
                    self.config,
                    &self.canonical,
                    &mut violations,
                );
            }
            RewritePhase::Optimize => {
                crate::validate::phase_key_order(&self.key_values, &mut violations);
                crate::validate::phase_pushdown_remote(
                    self.pushdown.as_ref(),
                    &self.sources_for_fetch(),
                    &mut violations,
                );
                crate::validate::phase_pruning_counts(
                    self.proved_empty,
                    self.keys.len(),
                    self.pruned,
                    self.total_leaves,
                    &mut violations,
                );
            }
            RewritePhase::Lower => {}
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(QueryError::Invariant(violations))
        }
    }

    fn interval(&self) -> LeafInterval {
        match self.interval {
            Some(iv) => iv,
            None => unreachable!("Analyze resolved the interval"),
        }
    }

    fn scope(&self) -> NodeId {
        match self.scope_node {
            Some(node) => node,
            None => unreachable!("Analyze resolved the scope"),
        }
    }

    fn is_done(&self, rule: &'static str) -> bool {
        self.done.contains(&rule)
    }

    fn mark_done(&mut self, rule: &'static str) {
        self.done.push(rule);
    }

    /// The sources the fetch path targets: the replica-selection
    /// winners when that rule ran, every assay source otherwise.
    fn sources_for_fetch(&self) -> Vec<Arc<dyn DataSource>> {
        self.chosen_sources
            .clone()
            .unwrap_or_else(|| self.assay_sources.clone())
    }

    /// Apply one canonicalization step to the draft predicate.
    fn canon_step(
        &mut self,
        enabled: bool,
        step: fn(Predicate) -> (Predicate, bool),
    ) -> RuleOutcome {
        if !enabled {
            return RuleOutcome::Off;
        }
        let (p, changed) = step(std::mem::replace(&mut self.canonical, Predicate::True));
        self.canonical = p;
        if changed {
            RuleOutcome::Changed
        } else {
            RuleOutcome::NoChange
        }
    }

    /// Apply one registered rule to the draft.
    fn apply(&mut self, rule: &'static RuleDef) -> Result<RuleOutcome> {
        use RuleOutcome::{Changed, NoChange, NotApplicable, Off};
        Ok(match rule.name {
            // ---------------- Analyze ----------------
            "interval_rewrite" => {
                if self.is_done(rule.name) {
                    NoChange
                } else {
                    self.mark_done(rule.name);
                    let (node, interval) = self.dataset.resolve_scope(&self.query.scope)?;
                    self.notes.push(format!(
                        "interval-rewrite: scope -> [{}, {})",
                        interval.lo, interval.hi
                    ));
                    self.scope_node = Some(node);
                    self.interval = Some(interval);
                    Changed
                }
            }
            "similarity_resolve" => match &self.query.similarity {
                None => NotApplicable,
                Some(spec) => {
                    if self.is_done(rule.name) {
                        NoChange
                    } else {
                        self.mark_done(rule.name);
                        self.similarity = Some(resolve_similarity(self.dataset, spec)?);
                        Changed
                    }
                }
            },
            "substructure_resolve" => match &self.query.substructure {
                None => NotApplicable,
                Some(pattern) => {
                    if self.is_done(rule.name) {
                        NoChange
                    } else {
                        self.mark_done(rule.name);
                        self.substructure = Some(resolve_substructure(self.dataset, pattern)?);
                        Changed
                    }
                }
            },
            "column_discovery" => {
                if self.is_done(rule.name) {
                    NoChange
                } else {
                    self.mark_done(rule.name);
                    let sources = self.dataset.registry.by_kind(SourceKind::Assay);
                    if sources.is_empty() {
                        return Err(QueryError::Plan("no assay sources registered".into()));
                    }
                    self.assay_sources = sources;
                    self.keys = self
                        .dataset
                        .accessions_in(self.interval())
                        .into_iter()
                        .map(|(rank, acc)| (rank, Value::from(acc)))
                        .collect();
                    self.total_leaves = self.keys.len();
                    let residual_needs_ligand = self
                        .query
                        .predicate
                        .columns()
                        .iter()
                        .any(|c| columns::LIGAND.contains(c));
                    let output_needs_ligand = matches!(
                        self.query.kind,
                        QueryKind::Activities | QueryKind::TopK { .. }
                    );
                    self.ligand_join = residual_needs_ligand
                        || output_needs_ligand
                        || self.similarity.is_some()
                        || self.substructure.is_some();
                    Changed
                }
            }
            // ---------------- Canonicalize ----------------
            "canon_nnf" => self.canon_step(self.config.canon_nnf, crate::ast::canon::nnf),
            "canon_flatten" => {
                self.canon_step(self.config.canon_flatten, crate::ast::canon::flatten)
            }
            "canon_fold" => self.canon_step(self.config.canon_fold, crate::ast::canon::fold),
            "canon_between" => {
                self.canon_step(self.config.canon_between, crate::ast::canon::between_merge)
            }
            "canon_dedup" => self.canon_step(self.config.canon_dedup, crate::ast::canon::dedup),
            // ---------------- Optimize ----------------
            "selectivity_ordering" => {
                if !self.config.selectivity_ordering {
                    Off
                } else {
                    let Some(view) = self.stats_view() else {
                        return Ok(NotApplicable);
                    };
                    if self.is_done(rule.name) {
                        NoChange
                    } else {
                        self.mark_done(rule.name);
                        self.residual = Some(order_by_selectivity(self.canonical.clone(), &view));
                        self.notes
                            .push("selectivity-ordering: residual conjuncts reordered".into());
                        Changed
                    }
                }
            }
            "stats_pruning" => {
                if !self.config.stats_pruning {
                    Off
                } else {
                    let Some(stats) = self.stats else {
                        return Ok(NotApplicable);
                    };
                    if self.is_done(rule.name) {
                        NoChange
                    } else {
                        self.mark_done(rule.name);
                        let interval = self.interval();
                        if stats.interval_count(interval) == 0 {
                            self.proved_empty = true;
                            self.notes
                                .push("stats-pruning: interval proven empty".into());
                            Changed
                        } else {
                            let p_bound = min_p_activity_bound(&self.canonical);
                            self.pruning_bound = p_bound;
                            let before = self.keys.len();
                            self.keys.retain(|(rank, _)| {
                                let leaf_iv = LeafInterval {
                                    lo: *rank,
                                    hi: rank + 1,
                                };
                                if stats.interval_count(leaf_iv) == 0 {
                                    return false;
                                }
                                if let Some(bound) = p_bound {
                                    if stats.interval_max_p(leaf_iv).is_none_or(|m| m < bound) {
                                        return false;
                                    }
                                }
                                true
                            });
                            self.pruned = before - self.keys.len();
                            if self.pruned > 0 {
                                let pruned = self.pruned;
                                self.notes
                                    .push(format!("stats-pruning: {pruned} leaves dropped"));
                                Changed
                            } else {
                                NoChange
                            }
                        }
                    }
                }
            }
            "pushdown" => {
                if !self.config.pushdown {
                    Off
                } else if self.is_done(rule.name) {
                    NoChange
                } else {
                    // Conjuncts translated into the remote assay schema
                    // (derived columns like p_activity become value_nm
                    // bounds) and supported by every assay source; the
                    // local forms are kept for histogram pricing.
                    let mut remote = Vec::new();
                    let mut local = Vec::new();
                    for conjunct in conjuncts_of(&self.canonical) {
                        let Some(r) = remote_form(conjunct) else {
                            continue;
                        };
                        if self
                            .assay_sources
                            .iter()
                            .all(|s| s.capabilities().supports_predicate(&r))
                        {
                            remote.push(r);
                            local.push(conjunct.clone());
                        }
                    }
                    if remote.is_empty() {
                        NotApplicable
                    } else {
                        self.mark_done(rule.name);
                        let combined = remote.into_iter().fold(Predicate::True, Predicate::and);
                        self.notes
                            .push(format!("pushdown: {}", crate::plan::fmt_pred(&combined)));
                        self.pushdown = Some(combined);
                        self.pushed_local =
                            Some(local.into_iter().fold(Predicate::True, Predicate::and));
                        Changed
                    }
                }
            }
            "cardinality_estimate" => {
                if self.is_done(rule.name) {
                    NoChange
                } else {
                    self.mark_done(rule.name);
                    // Keys ship sorted and deduplicated (a plan
                    // invariant): batching is deterministic and the
                    // executor's rank re-sort makes row order
                    // config-independent.
                    let mut key_values: Vec<Value> =
                        self.keys.iter().map(|(_, k)| k.clone()).collect();
                    key_values.sort();
                    key_values.dedup();
                    self.key_values = key_values;
                    let (rows, source) =
                        estimate_rows(self.stats_view(), self.interval(), &self.pushed_local);
                    self.expected_rows = rows;
                    // Only annotate when a learned provider is
                    // installed and a pushdown exists to price — plans
                    // from nominal-only sessions (and every golden
                    // EXPLAIN) stay byte-identical.
                    if self.learned.is_some() && self.pushed_local.is_some() {
                        let label = match source {
                            SelectivitySource::Learned => "learned",
                            SelectivitySource::Nominal => "nominal",
                        };
                        self.notes.push(format!("selectivity-source: {label}"));
                    }
                    Changed
                }
            }
            "replica_selection" => {
                if !self.config.replica_selection {
                    Off
                } else if !self
                    .assay_sources
                    .iter()
                    .any(|s| self.dataset.registry.replica_group_of(s.name()).is_some())
                {
                    // No declared replica groups: every source
                    // participates (chosen_sources stays None).
                    NotApplicable
                } else if self.is_done(rule.name) {
                    NoChange
                } else {
                    self.mark_done(rule.name);
                    self.select_replicas();
                    Changed
                }
            }
            "use_matview" => {
                if !self.config.use_matview {
                    Off
                } else if self.is_done(rule.name) {
                    NoChange
                } else {
                    // Eligibility is a correctness gate: the view holds
                    // whole-clade aggregates, so the scope must cover
                    // the clade exactly — an interval or leaf-set scope
                    // that only partially covers its tightest enclosing
                    // clade aggregates a subset of each child's rows,
                    // which the view cannot answer. (Found by the
                    // differential oracle.)
                    let eligible = self.matview.is_some_and(|v| v.is_fresh(self.dataset))
                        && matches!(self.query.kind, QueryKind::AggregateChildren { .. })
                        && self.interval() == self.dataset.index.interval(self.scope())
                        && self.canonical == Predicate::True
                        && self.similarity.is_none()
                        && self.substructure.is_none();
                    if eligible {
                        self.mark_done(rule.name);
                        self.matview_eligible = true;
                        Changed
                    } else {
                        NotApplicable
                    }
                }
            }
            "columnar_scan" => {
                if !self.config.columnar_scan {
                    Off
                } else if self.is_done(rule.name) {
                    NoChange
                } else if !self.columnar.is_some_and(|c| c.is_fresh(self.dataset)) {
                    // The mirror replays the fetch path's row pipeline
                    // at build time, so any interval scope can be
                    // served locally as long as no source has drifted.
                    NotApplicable
                } else {
                    self.mark_done(rule.name);
                    self.columnar_ready = true;
                    Changed
                }
            }
            "semantic_cache" => {
                if !self.config.semantic_cache {
                    Off
                } else if self.is_done(rule.name) {
                    NoChange
                } else {
                    self.mark_done(rule.name);
                    // The cache key must capture every row-reducing
                    // effect of this plan's fetch: the source pushdown
                    // AND any statistics-pruning potency bound (pruned
                    // leaves' weak rows are absent from the fetched
                    // set, so an entry without the bound in its key
                    // would wrongly answer unfiltered probes).
                    let mut key = self.pushdown.clone().unwrap_or(Predicate::True);
                    if let Some(bound) = self.pruning_bound {
                        key = key.and(Predicate::cmp("p_activity", CompareOp::Ge, bound));
                    }
                    self.cache_pred = match key {
                        Predicate::True => None,
                        other => Some(other),
                    };
                    self.cache_wrap = true;
                    Changed
                }
            }
            // ---------------- Lower ----------------
            "batching" => {
                if !self.config.batching {
                    Off
                } else if self.cost_model.is_some() {
                    // Cost-based planning prices batched vs per-key as
                    // access alternatives instead of applying the flag.
                    NotApplicable
                } else if self.is_done(rule.name) {
                    NoChange
                } else {
                    self.mark_done(rule.name);
                    self.notes.push("batching: keyed lookups coalesced".into());
                    Changed
                }
            }
            "concurrent_dispatch" => {
                if !self.config.concurrent_dispatch {
                    Off
                } else if self.is_done(rule.name) {
                    NoChange
                } else {
                    self.mark_done(rule.name);
                    Changed
                }
            }
            "lower_fetches" => {
                if self.cost_model.is_some() {
                    // Cost-based fetches are built during access
                    // selection, where batched vs per-key is priced.
                    NotApplicable
                } else if self.is_done(rule.name) {
                    NoChange
                } else {
                    self.mark_done(rule.name);
                    let sources = self.sources_for_fetch();
                    self.fixed_fetches = sources
                        .iter()
                        .map(|s| {
                            fetch_for_source(
                                s.as_ref(),
                                &self.key_values,
                                &self.pushdown,
                                self.config.batching,
                                self.config.concurrent_dispatch,
                                self.expected_rows,
                            )
                        })
                        .collect();
                    Changed
                }
            }
            "access_select" => {
                if self.is_done(rule.name) {
                    NoChange
                } else {
                    self.mark_done(rule.name);
                    let access = self.select_access();
                    self.access = Some(access);
                    Changed
                }
            }
            "finish_build" => {
                if self.is_done(rule.name) {
                    NoChange
                } else {
                    self.mark_done(rule.name);
                    self.finish = Some(build_finish(self.dataset, self.scope(), self.query)?);
                    Changed
                }
            }
            other => {
                return Err(QueryError::Plan(format!(
                    "registered rule {other:?} has no implementation"
                )))
            }
        })
    }

    /// Replica selection: from each declared replica group, fetch only
    /// the member with the cheapest estimated access; ungrouped sources
    /// all participate. The fixed pipeline prices members from their
    /// self-declared latency model at a nominal 100 rows; cost-based
    /// planning prices each member with its calibrated parameters at
    /// this query's estimated shape and records every member as a
    /// candidate.
    fn select_replicas(&mut self) {
        let sources = self.assay_sources.clone();
        let key_count = self.key_values.len();
        let expected_rows = self.expected_rows;
        let mut chosen: Vec<Arc<dyn DataSource>> = Vec::new();
        let mut handled_groups: Vec<&[String]> = Vec::new();
        for s in &sources {
            match self.dataset.registry.replica_group_of(s.name()) {
                None => chosen.push(s.clone()),
                Some(group) => {
                    if handled_groups.contains(&group) {
                        continue;
                    }
                    handled_groups.push(group);
                    let members = sources
                        .iter()
                        .filter(|c| group.iter().any(|n| n == c.name()));
                    let cheapest = if let Some(model) = self.cost_model {
                        let mut best: Option<(&Arc<dyn DataSource>, f64)> = None;
                        let group_name = format!("replica:{}", group[0]);
                        let mut group_candidates = Vec::new();
                        for c in members {
                            let reqs = effective_requests(
                                self.config,
                                key_count,
                                self.config.batching,
                                c.capabilities().max_batch,
                            );
                            let secs = model.params_for(c.name()).price(reqs, expected_rows);
                            group_candidates.push(PlanCandidate {
                                group: group_name.clone(),
                                label: c.name().to_string(),
                                cost_secs: secs,
                                rows: expected_rows,
                                chosen: false,
                            });
                            if best.as_ref().is_none_or(|(_, b)| secs < *b) {
                                best = Some((c, secs));
                            }
                        }
                        if let Some((winner, _)) = best {
                            for cand in &mut group_candidates {
                                cand.chosen = cand.label == winner.name();
                            }
                        }
                        self.candidates.extend(group_candidates);
                        best.map(|(c, _)| c)
                    } else {
                        members.min_by_key(|c| {
                            let m = c.latency_model();
                            m.base_rtt + m.per_row * 100
                        })
                    };
                    // Registration guarantees groups are non-empty;
                    // fall back to the current source rather than
                    // trusting that here.
                    let Some(cheapest) = cheapest else {
                        chosen.push(s.clone());
                        continue;
                    };
                    self.notes.push(format!(
                        "replica-selection: {} chosen from {group:?}",
                        cheapest.name()
                    ));
                    chosen.push(cheapest.clone());
                }
            }
        }
        self.chosen_sources = Some(chosen);
    }

    /// Access-path selection: the fixed pipeline decides by flag order,
    /// cost-based planning enumerates the correct alternatives, prices
    /// each, and keeps the cheapest (first minimum on ties).
    fn select_access(&mut self) -> Access {
        let expected_rows = self.expected_rows;
        if self.proved_empty {
            return Access::ProvedEmpty;
        }
        if let Some(model) = self.cost_model {
            let config = *self.config;
            let sources = self.sources_for_fetch();
            let key_count = self.key_values.len();
            let price_variant = |batched: bool| -> f64 {
                let per_source = sources.iter().map(|s| {
                    let reqs =
                        effective_requests(&config, key_count, batched, s.capabilities().max_batch);
                    model.params_for(s.name()).price(reqs, expected_rows)
                });
                if config.concurrent_dispatch {
                    per_source.fold(0.0, f64::max)
                } else {
                    per_source.sum()
                }
            };
            let mut alternatives: Vec<(&str, f64)> = Vec::new();
            if self.matview_eligible {
                alternatives.push(("matview", 0.0));
            }
            if self.columnar_ready {
                alternatives.push((
                    "columnar-scan",
                    crate::cost::columnar_scan_secs(expected_rows),
                ));
            }
            alternatives.push(("batched-fetch", price_variant(true)));
            alternatives.push(("per-key-fetch", price_variant(false)));
            let best = alternatives
                .iter()
                .map(|(_, c)| *c)
                .fold(f64::INFINITY, f64::min);
            let chosen_label = alternatives
                .iter()
                .find(|(_, c)| *c <= best)
                .map_or("batched-fetch", |(l, _)| *l);
            for (label, cost_secs) in &alternatives {
                self.candidates.push(PlanCandidate {
                    group: "access".into(),
                    label: (*label).to_string(),
                    cost_secs: *cost_secs,
                    rows: if *label == "matview" {
                        0
                    } else {
                        expected_rows
                    },
                    chosen: *label == chosen_label,
                });
            }
            self.notes.push(format!(
                "cost-based: access={chosen_label} est={:?} est_rows={expected_rows}",
                crate::cost::secs_to_duration(best)
            ));
            if chosen_label == "matview" {
                self.notes
                    .push("matview: aggregate served from materialized view".into());
                return Access::MaterializedView;
            }
            if chosen_label == "columnar-scan" {
                let interval = self.interval();
                self.notes.push(format!(
                    "columnar-scan: interval [{}, {}) served by vectorized kernels",
                    interval.lo, interval.hi
                ));
                return Access::ColumnarScan {
                    pushdown: self.pushdown.clone(),
                };
            }
            let batched = chosen_label == "batched-fetch";
            let fetches: Vec<FetchPlan> = sources
                .iter()
                .map(|s| {
                    let reqs =
                        effective_requests(&config, key_count, batched, s.capabilities().max_batch);
                    let est = model.params_for(s.name()).price(reqs, expected_rows);
                    let mut f = fetch_for_source(
                        s.as_ref(),
                        &self.key_values,
                        &self.pushdown,
                        batched,
                        config.concurrent_dispatch,
                        expected_rows,
                    );
                    f.est_cost = crate::cost::secs_to_duration(est);
                    f
                })
                .collect();
            // Cache wrapping: a probe costs nothing on a hit and the
            // same as the direct fetch on a miss, so it is never worse;
            // both alternatives are recorded priced at the miss path.
            return if self.cache_wrap {
                for (label, chosen) in [("cache-probe", true), ("direct", false)] {
                    self.candidates.push(PlanCandidate {
                        group: "cache".into(),
                        label: label.to_string(),
                        cost_secs: best,
                        rows: expected_rows,
                        chosen,
                    });
                }
                Access::CacheProbe {
                    pushdown: self.cache_pred.clone(),
                    on_miss: fetches,
                    insert_on_miss: true,
                    concurrent_sources: config.concurrent_dispatch,
                }
            } else {
                Access::Fetch {
                    fetches,
                    concurrent_sources: config.concurrent_dispatch,
                }
            };
        }
        // Fixed pipeline: flag order decides.
        if self.matview_eligible {
            self.notes
                .push("matview: aggregate served from materialized view".into());
            Access::MaterializedView
        } else if self.columnar_ready {
            let interval = self.interval();
            self.notes.push(format!(
                "columnar-scan: interval [{}, {}) served by vectorized kernels",
                interval.lo, interval.hi
            ));
            Access::ColumnarScan {
                pushdown: self.pushdown.clone(),
            }
        } else if self.cache_wrap {
            Access::CacheProbe {
                pushdown: self.cache_pred.clone(),
                on_miss: std::mem::take(&mut self.fixed_fetches),
                insert_on_miss: true,
                concurrent_sources: self.config.concurrent_dispatch,
            }
        } else {
            Access::Fetch {
                fetches: std::mem::take(&mut self.fixed_fetches),
                concurrent_sources: self.config.concurrent_dispatch,
            }
        }
    }

    /// Assemble the physical plan from the finished draft.
    fn into_plan(self) -> PhysicalPlan {
        let Some(access) = self.access else {
            unreachable!("Lower selected the access path")
        };
        // Cost estimate (for EXPLAIN and plan-choice validation):
        // combine the per-fetch estimates the same way the executor
        // combines charged latency; a columnar scan's estimate is the
        // modeled local-compute term.
        let estimated_cost = match &access {
            Access::ColumnarScan { .. } => crate::cost::columnar_scan_cost(self.expected_rows),
            _ => combine_access_cost(&access),
        };
        let estimated_rows = match &access {
            Access::MaterializedView | Access::ProvedEmpty => 0,
            _ => self.expected_rows,
        };
        let (Some(scope_node), Some(interval)) = (self.scope_node, self.interval) else {
            unreachable!("Analyze resolved the scope and interval")
        };
        PhysicalPlan {
            scope_node,
            interval,
            pruned_leaves: self.pruned,
            access,
            // The full predicate re-applies client-side; pushdown only
            // reduces shipped rows, never correctness.
            residual: self.residual.unwrap_or(self.canonical),
            pushed_local: self.pushed_local,
            ligand_join: self.ligand_join,
            similarity: self.similarity,
            substructure: self.substructure,
            finish: match self.finish {
                Some(finish) => finish,
                None => unreachable!("Lower built the finish operator"),
            },
            notes: self.notes,
            estimated_cost,
            estimated_rows,
            candidates: self.candidates,
            rule_trace: self.rule_trace,
        }
    }
}

/// Reject queries referencing unknown columns early, with a good error.
fn validate(query: &Query) -> Result<()> {
    for col in query.predicate.columns() {
        if !columns::is_known(col) {
            return Err(QueryError::UnknownColumn(col.to_string()));
        }
    }
    if let QueryKind::TopK { by, .. } = &query.kind {
        if !columns::is_known(by) {
            return Err(QueryError::UnknownColumn(by.clone()));
        }
    }
    if let Some(sim) = &query.similarity {
        if !(0.0..=1.0).contains(&sim.min_tanimoto) {
            return Err(QueryError::Plan(format!(
                "similarity threshold {} outside [0, 1]",
                sim.min_tanimoto
            )));
        }
    }
    Ok(())
}

/// Resolve a similarity reference: a known ligand id first, otherwise
/// parsed as SMILES.
fn resolve_similarity(dataset: &Dataset, spec: &SimilaritySpec) -> Result<ResolvedSimilarity> {
    let fingerprint = match dataset.overlay.fingerprint(&spec.reference) {
        Some(fp) => fp.clone(),
        None => match parse_smiles(&spec.reference) {
            Ok(mol) => Fingerprint::of_molecule(&mol),
            Err(_) => return Err(QueryError::BadSimilarityReference(spec.reference.clone())),
        },
    };
    Ok(ResolvedSimilarity {
        fingerprint,
        min_tanimoto: spec.min_tanimoto,
    })
}

/// Resolve a substructure pattern: a known ligand id's structure
/// first, otherwise parsed as SMILES.
fn resolve_substructure(dataset: &Dataset, pattern: &str) -> Result<ResolvedSubstructure> {
    let molecule = match dataset.overlay.molecule(pattern) {
        Some(m) => m.clone(),
        None => parse_smiles(pattern)
            .map_err(|_| QueryError::BadSubstructurePattern(pattern.to_string()))?,
    };
    let pattern_fp = Fingerprint::of_molecule(&molecule);
    Ok(ResolvedSubstructure {
        pattern: molecule,
        pattern_fp,
    })
}

/// The tightest `p_activity >= c` (or `> c`) bound in the predicate's
/// top-level conjuncts, used for max-pActivity pruning. A `between`
/// conjunct (as canonicalization produces) contributes its lower edge:
/// `between lo and hi` only matches cells `>= lo`.
fn min_p_activity_bound(pred: &Predicate) -> Option<f64> {
    conjuncts_of(pred)
        .into_iter()
        .filter_map(|c| match c {
            Predicate::Compare { column, op, value }
                if column == "p_activity" && matches!(op, CompareOp::Ge | CompareOp::Gt) =>
            {
                value.as_f64()
            }
            Predicate::Between { column, lo, .. } if column == "p_activity" => lo.as_f64(),
            _ => None,
        })
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        })
}

/// Columns that physically exist in the remote assay schema.
pub(crate) const REMOTE_COLUMNS: &[&str] = &[
    "protein_accession",
    "ligand_id",
    "activity_type",
    "value_nm",
    "source",
    "year",
];

/// Translate one conjunct into its remote evaluable form, or `None`
/// when it cannot be pushed.
///
/// `p_activity` is derived locally (`-log10(value_nm * 1e-9)`), so its
/// bounds translate into `value_nm` bounds with the comparison flipped
/// (larger pActivity = smaller concentration). Translated bounds are
/// widened by one part in 10^9 so floating-point error at the boundary
/// can only ship an extra row (dropped by the residual), never lose
/// one. Equality on a derived float is not translated.
fn remote_form(conjunct: &Predicate) -> Option<Predicate> {
    match conjunct {
        Predicate::Compare { column, op, value } if column == "p_activity" => {
            let p = value.as_f64()?;
            let (op, slack) = match op {
                CompareOp::Ge => (CompareOp::Le, 1.0 + 1e-9),
                CompareOp::Gt => (CompareOp::Lt, 1.0 + 1e-9),
                CompareOp::Le => (CompareOp::Ge, 1.0 - 1e-9),
                CompareOp::Lt => (CompareOp::Gt, 1.0 - 1e-9),
                CompareOp::Eq | CompareOp::Ne => return None,
            };
            Some(Predicate::Compare {
                column: "value_nm".into(),
                op,
                value: Value::Float(p_to_nm(p) * slack),
            })
        }
        Predicate::Between { column, lo, hi } if column == "p_activity" => {
            let (lo, hi) = (lo.as_f64()?, hi.as_f64()?);
            Some(Predicate::Between {
                column: "value_nm".into(),
                lo: Value::Float(p_to_nm(hi) * (1.0 - 1e-9)),
                hi: Value::Float(p_to_nm(lo) * (1.0 + 1e-9)),
            })
        }
        other => {
            let remote = other.columns().iter().all(|c| REMOTE_COLUMNS.contains(c));
            remote.then(|| other.clone())
        }
    }
}

/// Concentration (nM) at a given pActivity.
fn p_to_nm(p: f64) -> f64 {
    10f64.powf(9.0 - p)
}

pub(crate) fn conjuncts_of(p: &Predicate) -> Vec<&Predicate> {
    match p {
        Predicate::And(ps) => ps.iter().flat_map(conjuncts_of).collect(),
        Predicate::True => Vec::new(),
        other => vec![other],
    }
}

/// Reorder a conjunction most-selective-first; other shapes unchanged.
/// Prices through the [`StatsView`] seam so fresh learned coverage
/// (when a provider is installed) reorders with observed fractions.
fn order_by_selectivity(pred: Predicate, view: &StatsView<'_>) -> Predicate {
    match pred {
        Predicate::And(mut ps) => {
            ps.sort_by(|a, b| view.selectivity(a).total_cmp(&view.selectivity(b)));
            Predicate::And(ps)
        }
        other => other,
    }
}

/// Build the finish operator.
fn build_finish(
    dataset: &Dataset,
    scope_node: drugtree_phylo::tree::NodeId,
    query: &Query,
) -> Result<Finish> {
    Ok(match &query.kind {
        QueryKind::Activities => Finish::Collect,
        QueryKind::TopK { by, k, descending } => Finish::TopK {
            column: unified_schema().column_index(by)?,
            k: *k,
            descending: *descending,
        },
        QueryKind::AggregateChildren { metric } => {
            let children = dataset
                .tree
                .node_unchecked(scope_node)
                .children
                .iter()
                .map(|&c| {
                    let label = dataset
                        .tree
                        .node_unchecked(c)
                        .label
                        .clone()
                        .unwrap_or_else(|| format!("n{}", c.0));
                    (c, label, dataset.index.interval(c))
                })
                .collect();
            Finish::AggregateChildren {
                children,
                metric: *metric,
            }
        }
        QueryKind::CountPerLeaf => Finish::CountPerLeaf,
    })
}

/// Cardinality estimate for the access: interval record count scaled
/// by the histogram selectivity of the pushed conjuncts, passed in
/// their *local* column forms (interval length when no statistics were
/// collected). The local forms matter: the overlay histograms index
/// local columns like `p_activity`, so pricing the remote-translated
/// `value_nm` bound would fall back to the nominal 0.5 guess and
/// mis-rank access paths on affinity filters (experiment E12).
fn estimate_rows(
    view: Option<StatsView<'_>>,
    interval: LeafInterval,
    pushdown: &Option<Predicate>,
) -> (u64, SelectivitySource) {
    view.map_or((interval.len() as u64, SelectivitySource::Nominal), |v| {
        let base = v.overlay().interval_count(interval);
        let (sel, source) = pushdown
            .as_ref()
            .map_or((1.0, SelectivitySource::Nominal), |p| {
                v.selectivity_with_source(p)
            });
        ((base as f64 * sel).ceil() as u64, source)
    })
}

/// Effective sequential round trips for cost-model pricing: concurrent
/// dispatch overlaps every request into one effective RTT.
fn effective_requests(
    config: &OptimizerConfig,
    key_count: usize,
    batched: bool,
    max_batch: usize,
) -> u64 {
    if config.concurrent_dispatch {
        return 1;
    }
    let requests = if batched {
        key_count.div_ceil(max_batch.max(1))
    } else {
        key_count
    };
    requests.max(1) as u64
}

/// Build one source's fetch plan with its fixed-pipeline latency
/// estimate: exact `Duration` arithmetic from the source's
/// self-declared latency model (the cost-based planner overwrites
/// `est_cost` with its calibrated price).
fn fetch_for_source(
    source: &dyn drugtree_sources::DataSource,
    key_values: &[Value],
    pushdown: &Option<Predicate>,
    batched: bool,
    concurrent: bool,
    expected_rows: u64,
) -> FetchPlan {
    let max_batch = if batched {
        source.capabilities().max_batch.max(1)
    } else {
        1
    };
    let requests = if batched {
        key_values.len().div_ceil(max_batch)
    } else {
        key_values.len()
    }
    .max(1);
    let model = source.latency_model();
    let transfer = model.per_row * (expected_rows as u32);
    let est_cost = if concurrent {
        // All requests in flight: one RTT plus the transfer.
        model.base_rtt + transfer
    } else {
        model.base_rtt * requests as u32 + transfer
    };
    FetchPlan {
        source: source.name().to_string(),
        keys: key_values.to_vec(),
        pushdown: pushdown.clone(),
        batched,
        max_batch,
        concurrent,
        est_cost,
        est_rows: expected_rows,
    }
}

/// Combine per-fetch estimates the way the executor combines charged
/// latency: max across concurrent sources, sum across sequential.
fn combine_access_cost(access: &Access) -> Duration {
    let (fetches, concurrent_sources) = match access {
        Access::Fetch {
            fetches,
            concurrent_sources,
        } => (fetches, *concurrent_sources),
        // The cache hit path costs ~nothing; estimate the miss path so
        // EXPLAIN shows the worst case.
        Access::CacheProbe {
            on_miss,
            concurrent_sources,
            ..
        } => (on_miss, *concurrent_sources),
        // Columnar scans price via the compute model, not fetch
        // estimates; the caller special-cases them before combining.
        Access::ColumnarScan { .. } | Access::MaterializedView | Access::ProvedEmpty => {
            return Duration::ZERO
        }
    };
    if concurrent_sources {
        fetches
            .iter()
            .map(|f| f.est_cost)
            .max()
            .unwrap_or(Duration::ZERO)
    } else {
        fetches.iter().map(|f| f.est_cost).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Metric, Scope};
    use crate::dataset::test_fixtures::small_dataset;
    use drugtree_sources::source::SourceCapabilities;

    fn dataset() -> Dataset {
        small_dataset(SourceCapabilities::full())
    }

    #[test]
    fn naive_plan_shape() {
        let d = dataset();
        let q = Query::activities(Scope::Tree);
        let plan = Optimizer::new(OptimizerConfig::naive())
            .plan(&d, None, None, &q)
            .unwrap();
        match &plan.access {
            Access::Fetch {
                fetches,
                concurrent_sources,
            } => {
                assert!(!concurrent_sources);
                assert_eq!(fetches.len(), 1);
                assert_eq!(fetches[0].keys.len(), 4);
                assert!(!fetches[0].batched);
                assert!(fetches[0].pushdown.is_none());
            }
            other => panic!("expected Fetch, got {other:?}"),
        }
        assert_eq!(plan.pruned_leaves, 0);
        assert!(plan.ligand_join);
    }

    #[test]
    fn full_plan_uses_cache_and_pushdown() {
        let d = dataset();
        let stats = OverlayStats::collect(&d).unwrap();
        let q = Query::activities(Scope::Subtree("cladeA".into())).filter(Predicate::cmp(
            "p_activity",
            CompareOp::Ge,
            6.5,
        ));
        let plan = Optimizer::new(OptimizerConfig::full())
            .plan(&d, Some(&stats), None, &q)
            .unwrap();
        match &plan.access {
            Access::CacheProbe {
                pushdown,
                on_miss,
                insert_on_miss,
                ..
            } => {
                assert!(insert_on_miss);
                assert!(pushdown.is_some(), "p_activity filter is pushable");
                assert!(on_miss.iter().all(|f| f.batched && f.concurrent));
            }
            other => panic!("expected CacheProbe, got {other:?}"),
        }
        assert!(plan.explain().contains("pushdown"));
    }

    #[test]
    fn ligand_columns_not_pushed_down() {
        let d = dataset();
        let q = Query::activities(Scope::Tree)
            .filter(Predicate::cmp("mw", CompareOp::Lt, 500.0))
            .filter(Predicate::cmp("year", CompareOp::Ge, 2012i64));
        let plan = Optimizer::new(OptimizerConfig::full())
            .plan(&d, None, None, &q)
            .unwrap();
        let pushdown = match &plan.access {
            Access::CacheProbe { pushdown, .. } => pushdown.clone(),
            other => panic!("{other:?}"),
        };
        // Only the year conjunct is pushable.
        let p = pushdown.expect("year pushable");
        assert!(crate::plan::fmt_pred(&p).contains("year"));
        assert!(!crate::plan::fmt_pred(&p).contains("mw"));
    }

    #[test]
    fn incapable_sources_receive_no_pushdown() {
        let d = small_dataset(SourceCapabilities::minimal());
        let q =
            Query::activities(Scope::Tree).filter(Predicate::cmp("year", CompareOp::Ge, 2012i64));
        let plan = Optimizer::new(OptimizerConfig::full())
            .plan(&d, None, None, &q)
            .unwrap();
        match &plan.access {
            Access::CacheProbe { pushdown, .. } => assert!(pushdown.is_none()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_pruning_drops_empty_leaves() {
        let d = dataset();
        let stats = OverlayStats::collect(&d).unwrap();
        // P4 (rank 3) has no activities.
        let q = Query::activities(Scope::Tree);
        let plan = Optimizer::new(OptimizerConfig::full())
            .plan(&d, Some(&stats), None, &q)
            .unwrap();
        assert_eq!(plan.pruned_leaves, 1);
        match &plan.access {
            Access::CacheProbe { on_miss, .. } => {
                assert_eq!(on_miss[0].keys.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn p_activity_bound_prunes_by_range_max() {
        let d = dataset();
        let stats = OverlayStats::collect(&d).unwrap();
        // Only P3 (1 nM -> p=9) clears p >= 8.5; P1/P2/P4 pruned.
        let q =
            Query::activities(Scope::Tree).filter(Predicate::cmp("p_activity", CompareOp::Ge, 8.5));
        let plan = Optimizer::new(OptimizerConfig::full())
            .plan(&d, Some(&stats), None, &q)
            .unwrap();
        assert_eq!(plan.pruned_leaves, 3);
    }

    #[test]
    fn empty_interval_proved_empty() {
        let d = dataset();
        let stats = OverlayStats::collect(&d).unwrap();
        // cladeB's P4 side: leaves [3, 4) hold nothing.
        let q = Query::activities(Scope::Subtree("P4".into()));
        let plan = Optimizer::new(OptimizerConfig::full())
            .plan(&d, Some(&stats), None, &q)
            .unwrap();
        assert_eq!(plan.access, Access::ProvedEmpty);
        assert_eq!(plan.estimated_cost, Duration::ZERO);
    }

    #[test]
    fn validation_errors() {
        let d = dataset();
        let opt = Optimizer::new(OptimizerConfig::full());
        let q = Query::activities(Scope::Tree).filter(Predicate::eq("bogus", 1i64));
        assert!(matches!(
            opt.plan(&d, None, None, &q),
            Err(QueryError::UnknownColumn(_))
        ));
        let q = Query::activities(Scope::Tree).top_k("nope", 5, true);
        assert!(matches!(
            opt.plan(&d, None, None, &q),
            Err(QueryError::UnknownColumn(_))
        ));
        let q = Query::activities(Scope::Tree).similar_to("CCO", 1.5);
        assert!(opt.plan(&d, None, None, &q).is_err());
        let q = Query::activities(Scope::Tree).similar_to("((((", 0.5);
        assert!(matches!(
            opt.plan(&d, None, None, &q),
            Err(QueryError::BadSimilarityReference(_))
        ));
    }

    #[test]
    fn similarity_resolves_ligand_id_or_smiles() {
        let d = dataset();
        let opt = Optimizer::new(OptimizerConfig::full());
        // Known ligand id.
        let q = Query::activities(Scope::Tree).similar_to("L1", 0.5);
        let plan = opt.plan(&d, None, None, &q).unwrap();
        assert!(plan.similarity.is_some());
        // Raw SMILES.
        let q = Query::activities(Scope::Tree).similar_to("CCO", 0.5);
        let plan = opt.plan(&d, None, None, &q).unwrap();
        let sim = plan.similarity.unwrap();
        let ethanol_fp = d.overlay.fingerprint("L2").unwrap();
        assert_eq!(&sim.fingerprint, ethanol_fp, "SMILES CCO == ligand L2");
    }

    #[test]
    fn aggregate_children_enumerated() {
        let d = dataset();
        let q = Query::activities(Scope::Tree).aggregate(Metric::Count);
        let plan = Optimizer::new(OptimizerConfig::naive())
            .plan(&d, None, None, &q)
            .unwrap();
        match &plan.finish {
            Finish::AggregateChildren { children, .. } => {
                let labels: Vec<&str> = children.iter().map(|(_, l, _)| l.as_str()).collect();
                assert_eq!(labels, ["cladeA", "cladeB"]);
            }
            other => panic!("{other:?}"),
        }
        // Aggregates without ligand predicates skip the join.
        assert!(!plan.ligand_join);
    }

    #[test]
    fn matview_rejected_for_partial_clade_coverage() {
        use crate::matview::MaterializedAggregates;
        let d = dataset();
        let view = MaterializedAggregates::build(&d).unwrap();
        let opt = Optimizer::new(OptimizerConfig::full());
        // Whole tree: eligible.
        let q = Query::activities(Scope::Tree).aggregate(Metric::Count);
        let plan = opt.plan(&d, None, Some(&view), &q).unwrap();
        assert_eq!(plan.access, Access::MaterializedView);
        // Leaves P2..P3 span clades A and B, so the tightest clade is
        // the whole root but the interval is [1, 3): the view's whole-
        // clade aggregates would overcount. (Differential-oracle
        // regression.)
        let q = Query::activities(Scope::Leaves(vec!["P2".into(), "P3".into()]))
            .aggregate(Metric::Count);
        let plan = opt.plan(&d, None, Some(&view), &q).unwrap();
        assert_ne!(plan.access, Access::MaterializedView);
    }

    #[test]
    fn selectivity_ordering_reorders_residual() {
        let d = dataset();
        let stats = OverlayStats::collect(&d).unwrap();
        let wide = Predicate::cmp("p_activity", CompareOp::Ge, 5.0);
        let narrow = Predicate::cmp("p_activity", CompareOp::Ge, 8.9);
        let q = Query::activities(Scope::Tree)
            .filter(wide.clone())
            .filter(narrow.clone());
        let plan = Optimizer::new(OptimizerConfig::full())
            .plan(&d, Some(&stats), None, &q)
            .unwrap();
        match &plan.residual {
            Predicate::And(ps) => {
                assert_eq!(ps[0], narrow, "most selective first");
                assert_eq!(ps[1], wide);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cost_estimate_orders_plans_sanely() {
        let d = dataset();
        let stats = OverlayStats::collect(&d).unwrap();
        let q = Query::activities(Scope::Tree);
        let naive = Optimizer::new(OptimizerConfig::naive())
            .plan(&d, Some(&stats), None, &q)
            .unwrap();
        let full = Optimizer::new(OptimizerConfig::full())
            .plan(&d, Some(&stats), None, &q)
            .unwrap();
        assert!(
            full.estimated_cost < naive.estimated_cost,
            "optimized estimate {:?} not below naive {:?}",
            full.estimated_cost,
            naive.estimated_cost
        );
    }

    #[test]
    fn ablation_helper() {
        for rule in crate::phases::ablatable_rules() {
            let c = OptimizerConfig::ablate(rule.name).unwrap();
            assert_ne!(
                c,
                OptimizerConfig::full(),
                "{} should change config",
                rule.name
            );
        }
        assert!(OptimizerConfig::ablate("no_such_rule").is_err());
        // Structural rules are registered but not ablatable.
        assert!(OptimizerConfig::ablate("interval_rewrite").is_err());
    }

    #[test]
    fn remote_form_translates_derived_columns() {
        // p_activity >= 8  <=>  value_nm <= 10 (widened by 1e-9).
        let p = Predicate::cmp("p_activity", CompareOp::Ge, 8.0);
        match remote_form(&p).unwrap() {
            Predicate::Compare { column, op, value } => {
                assert_eq!(column, "value_nm");
                assert_eq!(op, CompareOp::Le);
                let v = value.as_f64().unwrap();
                assert!((v - 10.0).abs() < 1e-6 && v >= 10.0, "got {v}");
            }
            other => panic!("{other:?}"),
        }
        // Between flips and swaps bounds.
        let p = Predicate::between("p_activity", 6.0, 8.0);
        match remote_form(&p).unwrap() {
            Predicate::Between { column, lo, hi } => {
                assert_eq!(column, "value_nm");
                assert!(lo.as_f64().unwrap() < hi.as_f64().unwrap());
                assert!((lo.as_f64().unwrap() - 10.0).abs() < 1e-6);
                assert!((hi.as_f64().unwrap() - 1000.0).abs() < 1e-3);
            }
            other => panic!("{other:?}"),
        }
        // Equality on a derived float is never pushed.
        assert!(remote_form(&Predicate::eq("p_activity", 8.0)).is_none());
        // Local-only coordinates are never pushed.
        assert!(remote_form(&Predicate::eq("leaf_rank", 3i64)).is_none());
        // Ligand columns are never pushed.
        assert!(remote_form(&Predicate::cmp("mw", CompareOp::Lt, 500.0)).is_none());
        // Native remote columns pass through unchanged.
        let p = Predicate::eq("year", 2012i64);
        assert_eq!(remote_form(&p).unwrap(), p);
    }

    #[test]
    fn ablate_unknown_rule_is_an_error() {
        match OptimizerConfig::ablate("warp-drive") {
            Err(QueryError::UnknownRule(rule)) => assert_eq!(rule, "warp-drive"),
            other => panic!("expected UnknownRule, got {other:?}"),
        }
    }

    #[test]
    fn cost_based_plan_enumerates_candidates_and_picks_minimum() {
        let d = dataset();
        let stats = OverlayStats::collect(&d).unwrap();
        let q = Query::activities(Scope::Tree);
        let plan = Optimizer::new(OptimizerConfig::cost_based())
            .plan(&d, Some(&stats), None, &q)
            .unwrap();
        assert!(!plan.candidates.is_empty(), "candidates must be recorded");
        let access: Vec<&PlanCandidate> = plan
            .candidates
            .iter()
            .filter(|c| c.group == "access")
            .collect();
        assert_eq!(access.iter().filter(|c| c.chosen).count(), 1);
        let chosen = access.iter().find(|c| c.chosen).unwrap();
        for c in &access {
            assert!(c.cost_secs.is_finite() && c.cost_secs >= 0.0);
            assert!(chosen.cost_secs <= c.cost_secs, "chosen must be minimal");
        }
        // Same result shape as the fixed pipeline: still a cache probe
        // over batched concurrent fetches on this dataset.
        assert!(matches!(plan.access, Access::CacheProbe { .. }));
        assert!(plan.estimated_rows > 0);
    }

    #[test]
    fn fixed_pipeline_emits_no_candidates() {
        let d = dataset();
        let q = Query::activities(Scope::Tree);
        let plan = Optimizer::new(OptimizerConfig::full())
            .plan(&d, None, None, &q)
            .unwrap();
        assert!(plan.candidates.is_empty());
    }

    #[test]
    fn calibrated_cost_model_steers_plan_estimates() {
        use crate::cost::CostParams;
        let d = dataset();
        let stats = OverlayStats::collect(&d).unwrap();
        let q = Query::activities(Scope::Tree);
        let opt = Optimizer::new(OptimizerConfig::cost_based());
        let model = CostModel::new();
        let prior_plan = opt
            .plan_with(&d, Some(&stats), None, Some(&model), &q)
            .unwrap();
        // Teach the model that assay-sim is 10x the prior's round trip.
        let slow = CostParams {
            rtt_secs: CostParams::prior().rtt_secs * 10.0,
            per_row_secs: CostParams::prior().per_row_secs,
        };
        for (reqs, rows) in [(1u64, 10u64), (2, 50), (1, 200), (3, 30)] {
            let obs = crate::cost::secs_to_duration(slow.price(reqs, rows));
            model.observe("assay-sim", reqs, rows, obs, Duration::from_millis(1));
        }
        let calibrated_plan = opt
            .plan_with(&d, Some(&stats), None, Some(&model), &q)
            .unwrap();
        assert!(
            calibrated_plan.estimated_cost > prior_plan.estimated_cost,
            "calibration must raise the estimate for a slow source: {:?} vs {:?}",
            calibrated_plan.estimated_cost,
            prior_plan.estimated_cost
        );
    }
}
