//! The rewrite pipeline that turns a [`Query`] into a [`PhysicalPlan`].
//!
//! Every rule is individually switchable so experiment E4 can measure
//! its contribution. `OptimizerConfig::naive()` reproduces the
//! unoptimized DrugTree described in the paper's opening: one
//! sequential round-trip per leaf per source, all filtering
//! client-side, no caching, no pruning.
//!
//! Rules, in application order:
//!
//! 1. **Interval rewrite** (structural, always on): the scope resolves
//!    to a leaf interval via the tree index — the "standard" from tree/
//!    XML databases (design decision D1).
//! 2. **Statistics pruning** (D4): leaves proven empty (zero records,
//!    or max pActivity below a `p_activity >=` bound) are dropped from
//!    the key set; an interval proven empty skips access entirely.
//! 3. **Predicate pushdown**: the conjuncts over activity columns that
//!    *every* assay source can evaluate remotely are pushed into the
//!    fetches (uniform across sources, so cached results remain
//!    reusable under one predicate key).
//! 4. **Batching + concurrent dispatch** (D3): key lookups coalesce to
//!    the source's max batch size and batches/sources go out together.
//! 5. **Semantic cache** (D2): the fetch is wrapped in a cache probe.
//! 6. **Materialized view**: unfiltered per-clade aggregates are
//!    answered from the view when it is fresh.
//! 7. **Selectivity ordering**: residual conjuncts are reordered
//!    most-selective-first using the histogram statistics.
//!
//! With [`OptimizerConfig::cost_based`] set, access-path selection
//! switches from the flag-driven fixed order above to enumeration:
//! rules *propose* alternatives ([`crate::plan::PlanCandidate`] —
//! matview answer vs. batched vs. per-key fetch; per-replica access
//! paths; cached vs. direct) and the calibrated cost model
//! ([`crate::cost::CostModel`], design decision D8) prices each one;
//! the cheapest correct alternative wins and every candidate is
//! recorded on the plan for EXPLAIN and validation.

use crate::ast::{columns, Query, QueryKind, SimilaritySpec};
use crate::columnar::ActivityColumns;
use crate::cost::CostModel;
use crate::dataset::{unified_schema, Dataset};
use crate::matview::MaterializedAggregates;
use crate::plan::{
    Access, FetchPlan, Finish, PhysicalPlan, PlanCandidate, ResolvedSimilarity,
    ResolvedSubstructure,
};
use crate::stats::OverlayStats;
use crate::{QueryError, Result};
use drugtree_chem::fingerprint::Fingerprint;
use drugtree_chem::smiles::parse_smiles;
use drugtree_phylo::index::LeafInterval;
use drugtree_sources::source::SourceKind;
use drugtree_store::expr::{CompareOp, Predicate};
use drugtree_store::value::Value;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Which rewrites are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Push supported predicate conjuncts into source fetches.
    pub pushdown: bool,
    /// Coalesce key lookups into batches.
    pub batching: bool,
    /// Dispatch batches and sources concurrently.
    pub concurrent_dispatch: bool,
    /// Prune leaves/subtrees via statistics.
    pub stats_pruning: bool,
    /// Probe and populate the semantic cache.
    pub semantic_cache: bool,
    /// Reorder residual conjuncts by selectivity.
    pub selectivity_ordering: bool,
    /// Answer eligible aggregates from the materialized view.
    pub use_matview: bool,
    /// Serve each declared replica group from its cheapest member
    /// instead of fetching every copy.
    pub replica_selection: bool,
    /// Answer interval scopes from the local columnar activity mirror
    /// (when one is built and fresh) with vectorized kernels instead
    /// of fetching from sources.
    pub columnar_scan: bool,
    /// Run the plan-invariant validator on every plan the executor
    /// receives (debug builds always validate inside the optimizer;
    /// this flag extends the check to release builds so benches can
    /// measure its cost). Not a rewrite rule: excluded from
    /// [`OptimizerConfig::RULES`] and untouched by `ablate`.
    pub validate: bool,
    /// Choose access paths by enumerating alternatives and pricing
    /// them with the calibrated cost model instead of applying the
    /// fixed rule order. Not a rewrite rule: excluded from
    /// [`OptimizerConfig::RULES`] and untouched by `ablate`.
    pub cost_based: bool,
}

impl OptimizerConfig {
    /// Everything on.
    pub fn full() -> OptimizerConfig {
        OptimizerConfig {
            pushdown: true,
            batching: true,
            concurrent_dispatch: true,
            stats_pruning: true,
            semantic_cache: true,
            selectivity_ordering: true,
            use_matview: true,
            replica_selection: true,
            columnar_scan: true,
            validate: true,
            cost_based: false,
        }
    }

    /// Everything on, with access paths chosen by the calibrated cost
    /// model instead of the fixed rule order.
    pub fn cost_based() -> OptimizerConfig {
        OptimizerConfig {
            cost_based: true,
            ..OptimizerConfig::full()
        }
    }

    /// The unoptimized baseline.
    pub fn naive() -> OptimizerConfig {
        OptimizerConfig {
            pushdown: false,
            batching: false,
            concurrent_dispatch: false,
            stats_pruning: false,
            semantic_cache: false,
            selectivity_ordering: false,
            use_matview: false,
            replica_selection: false,
            columnar_scan: false,
            validate: false,
            cost_based: false,
        }
    }

    /// `full()` with one named rule disabled — the E4 ablation helper.
    /// Unknown rule names are a caller error reported as
    /// [`QueryError::UnknownRule`], never a panic.
    pub fn ablate(rule: &str) -> Result<OptimizerConfig> {
        let mut c = OptimizerConfig::full();
        match rule {
            "pushdown" => c.pushdown = false,
            "batching" => c.batching = false,
            "concurrent_dispatch" => c.concurrent_dispatch = false,
            "stats_pruning" => c.stats_pruning = false,
            "semantic_cache" => c.semantic_cache = false,
            "selectivity_ordering" => c.selectivity_ordering = false,
            "use_matview" => c.use_matview = false,
            "replica_selection" => c.replica_selection = false,
            "columnar_scan" => c.columnar_scan = false,
            other => return Err(QueryError::UnknownRule(other.to_string())),
        }
        Ok(c)
    }

    /// The names accepted by [`OptimizerConfig::ablate`].
    pub const RULES: &'static [&'static str] = &[
        "pushdown",
        "batching",
        "concurrent_dispatch",
        "stats_pruning",
        "semantic_cache",
        "selectivity_ordering",
        "use_matview",
        "replica_selection",
        "columnar_scan",
    ];
}

/// The planner.
#[derive(Debug, Clone)]
pub struct Optimizer {
    config: OptimizerConfig,
}

impl Optimizer {
    /// Build with a configuration.
    pub fn new(config: OptimizerConfig) -> Optimizer {
        Optimizer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> OptimizerConfig {
        self.config
    }

    /// Plan a query. In cost-based mode alternatives are priced with
    /// an uncalibrated (prior-only) model; executors that carry a
    /// calibrated [`CostModel`] use [`Optimizer::plan_with`] instead.
    pub fn plan(
        &self,
        dataset: &Dataset,
        stats: Option<&OverlayStats>,
        matview: Option<&MaterializedAggregates>,
        query: &Query,
    ) -> Result<PhysicalPlan> {
        self.plan_with(dataset, stats, matview, None, query)
    }

    /// Plan a query, pricing cost-based alternatives with `cost` (the
    /// prior-only default model when absent). Fixed-order planning
    /// ignores `cost` entirely. Plans without a columnar mirror; the
    /// executor carries one via [`Optimizer::plan_full`].
    pub fn plan_with(
        &self,
        dataset: &Dataset,
        stats: Option<&OverlayStats>,
        matview: Option<&MaterializedAggregates>,
        cost: Option<&CostModel>,
        query: &Query,
    ) -> Result<PhysicalPlan> {
        self.plan_full(dataset, stats, matview, None, cost, query)
    }

    /// Plan with every auxiliary structure the executor can carry: the
    /// materialized aggregate view, the columnar activity mirror, and
    /// the calibrated cost model.
    pub fn plan_full(
        &self,
        dataset: &Dataset,
        stats: Option<&OverlayStats>,
        matview: Option<&MaterializedAggregates>,
        columnar: Option<&ActivityColumns>,
        cost: Option<&CostModel>,
        query: &Query,
    ) -> Result<PhysicalPlan> {
        validate(query)?;
        let mut notes = Vec::new();
        let default_cost_model;
        let cost_model: Option<&CostModel> = if self.config.cost_based {
            Some(match cost {
                Some(c) => c,
                None => {
                    default_cost_model = CostModel::new();
                    &default_cost_model
                }
            })
        } else {
            None
        };
        let mut candidates: Vec<PlanCandidate> = Vec::new();

        // 1. Interval rewrite.
        let (scope_node, interval) = dataset.resolve_scope(&query.scope)?;
        notes.push(format!(
            "interval-rewrite: scope -> [{}, {})",
            interval.lo, interval.hi
        ));

        // Similarity resolution (needed before pushdown decisions to
        // know the ligand join is required).
        let similarity = match &query.similarity {
            Some(spec) => Some(resolve_similarity(dataset, spec)?),
            None => None,
        };
        let substructure = match &query.substructure {
            Some(pattern) => Some(resolve_substructure(dataset, pattern)?),
            None => None,
        };

        // Residual predicate (full query predicate, re-applied client-
        // side; pushdown only reduces shipped rows, never correctness).
        let mut residual = query.predicate.clone();
        if self.config.selectivity_ordering {
            if let Some(stats) = stats {
                residual = order_by_selectivity(residual, stats);
                notes.push("selectivity-ordering: residual conjuncts reordered".into());
            }
        }

        // 2. Statistics pruning.
        let mut keys: Vec<(u32, Value)> = dataset
            .accessions_in(interval)
            .into_iter()
            .map(|(rank, acc)| (rank, Value::from(acc)))
            .collect();
        let total_leaves = keys.len();
        let mut pruned = 0;
        let mut proved_empty = false;
        let mut pruning_bound: Option<f64> = None;
        if self.config.stats_pruning {
            if let Some(stats) = stats {
                if stats.interval_count(interval) == 0 {
                    proved_empty = true;
                    notes.push("stats-pruning: interval proven empty".into());
                } else {
                    let p_bound = min_p_activity_bound(&query.predicate);
                    pruning_bound = p_bound;
                    keys.retain(|(rank, _)| {
                        let leaf_iv = LeafInterval {
                            lo: *rank,
                            hi: rank + 1,
                        };
                        if stats.interval_count(leaf_iv) == 0 {
                            return false;
                        }
                        if let Some(bound) = p_bound {
                            if stats.interval_max_p(leaf_iv).is_none_or(|m| m < bound) {
                                return false;
                            }
                        }
                        true
                    });
                    pruned = total_leaves - keys.len();
                    if pruned > 0 {
                        notes.push(format!("stats-pruning: {pruned} leaves dropped"));
                    }
                }
            }
        }

        // 3. Pushdown: conjuncts translated into the remote assay
        // schema (derived columns like p_activity become value_nm
        // bounds) and supported by every assay source.
        let assay_sources = dataset.registry.by_kind(SourceKind::Assay);
        if assay_sources.is_empty() {
            return Err(QueryError::Plan("no assay sources registered".into()));
        }
        let pushdown: Option<Predicate> = if self.config.pushdown {
            let eligible: Vec<Predicate> = conjuncts_of(&query.predicate)
                .into_iter()
                .filter_map(remote_form)
                .filter(|c| {
                    assay_sources
                        .iter()
                        .all(|s| s.capabilities().supports_predicate(c))
                })
                .collect();
            if eligible.is_empty() {
                None
            } else {
                let combined = eligible.into_iter().fold(Predicate::True, Predicate::and);
                notes.push(format!("pushdown: {}", crate::plan::fmt_pred(&combined)));
                Some(combined)
            }
        } else {
            None
        };

        // Keys ship sorted and deduplicated (a plan invariant):
        // batching is deterministic and the executor's rank re-sort
        // makes row order config-independent. Computed before replica
        // selection because cost-based pricing needs the key count.
        let mut key_values: Vec<Value> = keys.iter().map(|(_, k)| k.clone()).collect();
        key_values.sort();
        key_values.dedup();

        // Cardinality estimate: interval count scaled by the pushdown
        // selectivity (histogram-based). Shared by both planning modes.
        let expected_rows = estimate_rows(stats, interval, &pushdown);

        // 4. Replica selection: from each declared replica group,
        // fetch only the member with the cheapest estimated access;
        // ungrouped sources all participate. The fixed pipeline prices
        // members from their self-declared latency model at a nominal
        // 100 rows; cost-based planning prices each member with its
        // calibrated parameters at this query's estimated shape and
        // records every member as a candidate.
        let chosen_sources: Vec<&std::sync::Arc<dyn drugtree_sources::DataSource>> =
            if self.config.replica_selection {
                let mut chosen = Vec::new();
                let mut handled_groups: Vec<&[String]> = Vec::new();
                for s in &assay_sources {
                    match dataset.registry.replica_group_of(s.name()) {
                        None => chosen.push(s),
                        Some(group) => {
                            if handled_groups.contains(&group) {
                                continue;
                            }
                            handled_groups.push(group);
                            let members = assay_sources
                                .iter()
                                .filter(|c| group.iter().any(|n| n == c.name()));
                            let cheapest = if let Some(model) = cost_model {
                                let mut best: Option<(
                                    &std::sync::Arc<dyn drugtree_sources::DataSource>,
                                    f64,
                                )> = None;
                                let group_name = format!("replica:{}", group[0]);
                                let mut group_candidates = Vec::new();
                                for c in members {
                                    let reqs = effective_requests(
                                        &self.config,
                                        key_values.len(),
                                        self.config.batching,
                                        c.capabilities().max_batch,
                                    );
                                    let secs =
                                        model.params_for(c.name()).price(reqs, expected_rows);
                                    group_candidates.push(PlanCandidate {
                                        group: group_name.clone(),
                                        label: c.name().to_string(),
                                        cost_secs: secs,
                                        rows: expected_rows,
                                        chosen: false,
                                    });
                                    if best.as_ref().is_none_or(|(_, b)| secs < *b) {
                                        best = Some((c, secs));
                                    }
                                }
                                if let Some((winner, _)) = best {
                                    for cand in &mut group_candidates {
                                        cand.chosen = cand.label == winner.name();
                                    }
                                }
                                candidates.extend(group_candidates);
                                best.map(|(c, _)| c)
                            } else {
                                members.min_by_key(|c| {
                                    let m = c.latency_model();
                                    m.base_rtt + m.per_row * 100
                                })
                            };
                            // Registration guarantees groups are
                            // non-empty; fall back to the current
                            // source rather than trusting that here.
                            let Some(cheapest) = cheapest else {
                                chosen.push(s);
                                continue;
                            };
                            notes.push(format!(
                                "replica-selection: {} chosen from {group:?}",
                                cheapest.name()
                            ));
                            chosen.push(cheapest);
                        }
                    }
                }
                chosen
            } else {
                assay_sources.iter().collect()
            };

        // 5. Batching + dispatch (fixed pipeline). Cost-based planning
        // builds its fetches during access selection below, where
        // batched vs per-key is itself a priced choice.
        let fixed_fetches: Vec<FetchPlan> = if cost_model.is_none() {
            chosen_sources
                .iter()
                .map(|s| {
                    fetch_for_source(
                        s.as_ref(),
                        &key_values,
                        &pushdown,
                        self.config.batching,
                        self.config.concurrent_dispatch,
                        expected_rows,
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        if cost_model.is_none() && self.config.batching {
            notes.push("batching: keyed lookups coalesced".into());
        }

        // Finish operator.
        let finish = build_finish(dataset, scope_node, query)?;

        // Ligand join requirement.
        let residual_needs_ligand = query
            .predicate
            .columns()
            .iter()
            .any(|c| columns::LIGAND.contains(c));
        let output_needs_ligand =
            matches!(query.kind, QueryKind::Activities | QueryKind::TopK { .. });
        let ligand_join = residual_needs_ligand
            || output_needs_ligand
            || similarity.is_some()
            || substructure.is_some();

        // Matview eligibility is a correctness gate in both planning
        // modes. The view holds whole-clade aggregates, so the scope
        // must cover the clade exactly: an interval or leaf-set scope
        // that only partially covers its tightest enclosing clade
        // aggregates a subset of each child's rows, which the view
        // cannot answer. (Found by the differential oracle.)
        let matview_eligible = matview.is_some_and(|v| v.is_fresh(dataset))
            && matches!(query.kind, QueryKind::AggregateChildren { .. })
            && interval == dataset.index.interval(scope_node)
            && query.predicate == Predicate::True
            && similarity.is_none()
            && substructure.is_none();

        // Columnar-scan eligibility: the mirror replays the fetch
        // path's row pipeline at build time, so any interval scope can
        // be served locally as long as no source has drifted since.
        let columnar_ready =
            self.config.columnar_scan && columnar.is_some_and(|c| c.is_fresh(dataset));

        // The cache key must capture every row-reducing effect of
        // this plan's fetch: the source pushdown AND any
        // statistics-pruning potency bound (pruned leaves' weak
        // rows are absent from the fetched set, so an entry without
        // the bound in its key would wrongly answer unfiltered
        // probes).
        let cache_key = || {
            let mut key = pushdown.clone().unwrap_or(Predicate::True);
            if let Some(bound) = pruning_bound {
                key = key.and(Predicate::cmp("p_activity", CompareOp::Ge, bound));
            }
            match key {
                Predicate::True => None,
                other => Some(other),
            }
        };

        // 5/6. Access selection.
        let access = if proved_empty {
            Access::ProvedEmpty
        } else if let Some(model) = cost_model {
            // Cost-based: enumerate the correct alternatives, price
            // each, keep the cheapest (first minimum on ties).
            let price_variant = |batched: bool| -> f64 {
                let per_source = chosen_sources.iter().map(|s| {
                    let reqs = effective_requests(
                        &self.config,
                        key_values.len(),
                        batched,
                        s.capabilities().max_batch,
                    );
                    model.params_for(s.name()).price(reqs, expected_rows)
                });
                if self.config.concurrent_dispatch {
                    per_source.fold(0.0, f64::max)
                } else {
                    per_source.sum()
                }
            };
            let mut alternatives: Vec<(&str, f64)> = Vec::new();
            if self.config.use_matview && matview_eligible {
                alternatives.push(("matview", 0.0));
            }
            if columnar_ready {
                alternatives.push((
                    "columnar-scan",
                    crate::cost::columnar_scan_secs(expected_rows),
                ));
            }
            alternatives.push(("batched-fetch", price_variant(true)));
            alternatives.push(("per-key-fetch", price_variant(false)));
            let best = alternatives
                .iter()
                .map(|(_, c)| *c)
                .fold(f64::INFINITY, f64::min);
            let chosen_label = alternatives
                .iter()
                .find(|(_, c)| *c <= best)
                .map_or("batched-fetch", |(l, _)| *l);
            for (label, cost_secs) in &alternatives {
                candidates.push(PlanCandidate {
                    group: "access".into(),
                    label: (*label).to_string(),
                    cost_secs: *cost_secs,
                    rows: if *label == "matview" {
                        0
                    } else {
                        expected_rows
                    },
                    chosen: *label == chosen_label,
                });
            }
            notes.push(format!(
                "cost-based: access={chosen_label} est={:?} est_rows={expected_rows}",
                crate::cost::secs_to_duration(best)
            ));
            if chosen_label == "matview" {
                notes.push("matview: aggregate served from materialized view".into());
                Access::MaterializedView
            } else if chosen_label == "columnar-scan" {
                notes.push(format!(
                    "columnar-scan: interval [{}, {}) served by vectorized kernels",
                    interval.lo, interval.hi
                ));
                Access::ColumnarScan {
                    pushdown: pushdown.clone(),
                }
            } else {
                let batched = chosen_label == "batched-fetch";
                let fetches: Vec<FetchPlan> = chosen_sources
                    .iter()
                    .map(|s| {
                        let reqs = effective_requests(
                            &self.config,
                            key_values.len(),
                            batched,
                            s.capabilities().max_batch,
                        );
                        let est = model.params_for(s.name()).price(reqs, expected_rows);
                        let mut f = fetch_for_source(
                            s.as_ref(),
                            &key_values,
                            &pushdown,
                            batched,
                            self.config.concurrent_dispatch,
                            expected_rows,
                        );
                        f.est_cost = crate::cost::secs_to_duration(est);
                        f
                    })
                    .collect();
                // Cache wrapping: a probe costs nothing on a hit and
                // the same as the direct fetch on a miss, so it is
                // never worse; both alternatives are recorded priced
                // at the miss path.
                if self.config.semantic_cache {
                    for (label, chosen) in [("cache-probe", true), ("direct", false)] {
                        candidates.push(PlanCandidate {
                            group: "cache".into(),
                            label: label.to_string(),
                            cost_secs: best,
                            rows: expected_rows,
                            chosen,
                        });
                    }
                    Access::CacheProbe {
                        pushdown: cache_key(),
                        on_miss: fetches,
                        insert_on_miss: true,
                        concurrent_sources: self.config.concurrent_dispatch,
                    }
                } else {
                    Access::Fetch {
                        fetches,
                        concurrent_sources: self.config.concurrent_dispatch,
                    }
                }
            }
        } else if self.config.use_matview && matview_eligible {
            notes.push("matview: aggregate served from materialized view".into());
            Access::MaterializedView
        } else if columnar_ready {
            notes.push(format!(
                "columnar-scan: interval [{}, {}) served by vectorized kernels",
                interval.lo, interval.hi
            ));
            Access::ColumnarScan {
                pushdown: pushdown.clone(),
            }
        } else if self.config.semantic_cache {
            Access::CacheProbe {
                pushdown: cache_key(),
                on_miss: fixed_fetches,
                insert_on_miss: true,
                concurrent_sources: self.config.concurrent_dispatch,
            }
        } else {
            Access::Fetch {
                fetches: fixed_fetches,
                concurrent_sources: self.config.concurrent_dispatch,
            }
        };

        // Cost estimate (for EXPLAIN and plan-choice validation):
        // combine the per-fetch estimates the same way the executor
        // combines charged latency; a columnar scan's estimate is the
        // modeled local-compute term.
        let estimated_cost = match &access {
            Access::ColumnarScan { .. } => crate::cost::columnar_scan_cost(expected_rows),
            _ => combine_access_cost(&access),
        };
        let estimated_rows = match &access {
            Access::MaterializedView | Access::ProvedEmpty => 0,
            _ => expected_rows,
        };

        let plan = PhysicalPlan {
            scope_node,
            interval,
            pruned_leaves: pruned,
            access,
            residual,
            ligand_join,
            similarity,
            substructure,
            finish,
            notes,
            estimated_cost,
            estimated_rows,
            candidates,
        };

        // In debug builds every plan the rewrite pipeline emits is
        // validated, so a rule regression fails fast in any test that
        // plans a query. Release builds opt in via `config.validate`
        // (checked by the executor) to keep the planner's hot path
        // measurable with and without the cost.
        #[cfg(debug_assertions)]
        crate::validate::PlanValidator::new(dataset)
            .validate(&plan)
            .map_err(QueryError::Invariant)?;

        Ok(plan)
    }
}

/// Reject queries referencing unknown columns early, with a good error.
fn validate(query: &Query) -> Result<()> {
    for col in query.predicate.columns() {
        if !columns::is_known(col) {
            return Err(QueryError::UnknownColumn(col.to_string()));
        }
    }
    if let QueryKind::TopK { by, .. } = &query.kind {
        if !columns::is_known(by) {
            return Err(QueryError::UnknownColumn(by.clone()));
        }
    }
    if let Some(sim) = &query.similarity {
        if !(0.0..=1.0).contains(&sim.min_tanimoto) {
            return Err(QueryError::Plan(format!(
                "similarity threshold {} outside [0, 1]",
                sim.min_tanimoto
            )));
        }
    }
    Ok(())
}

/// Resolve a similarity reference: a known ligand id first, otherwise
/// parsed as SMILES.
fn resolve_similarity(dataset: &Dataset, spec: &SimilaritySpec) -> Result<ResolvedSimilarity> {
    let fingerprint = match dataset.overlay.fingerprint(&spec.reference) {
        Some(fp) => fp.clone(),
        None => match parse_smiles(&spec.reference) {
            Ok(mol) => Fingerprint::of_molecule(&mol),
            Err(_) => return Err(QueryError::BadSimilarityReference(spec.reference.clone())),
        },
    };
    Ok(ResolvedSimilarity {
        fingerprint,
        min_tanimoto: spec.min_tanimoto,
    })
}

/// Resolve a substructure pattern: a known ligand id's structure
/// first, otherwise parsed as SMILES.
fn resolve_substructure(dataset: &Dataset, pattern: &str) -> Result<ResolvedSubstructure> {
    let molecule = match dataset.overlay.molecule(pattern) {
        Some(m) => m.clone(),
        None => parse_smiles(pattern)
            .map_err(|_| QueryError::BadSubstructurePattern(pattern.to_string()))?,
    };
    let pattern_fp = Fingerprint::of_molecule(&molecule);
    Ok(ResolvedSubstructure {
        pattern: molecule,
        pattern_fp,
    })
}

/// The tightest `p_activity >= c` (or `> c`) bound in the predicate's
/// top-level conjuncts, used for max-pActivity pruning.
fn min_p_activity_bound(pred: &Predicate) -> Option<f64> {
    conjuncts_of(pred)
        .into_iter()
        .filter_map(|c| match c {
            Predicate::Compare { column, op, value }
                if column == "p_activity" && matches!(op, CompareOp::Ge | CompareOp::Gt) =>
            {
                value.as_f64()
            }
            _ => None,
        })
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        })
}

/// Columns that physically exist in the remote assay schema.
pub(crate) const REMOTE_COLUMNS: &[&str] = &[
    "protein_accession",
    "ligand_id",
    "activity_type",
    "value_nm",
    "source",
    "year",
];

/// Translate one conjunct into its remote evaluable form, or `None`
/// when it cannot be pushed.
///
/// `p_activity` is derived locally (`-log10(value_nm * 1e-9)`), so its
/// bounds translate into `value_nm` bounds with the comparison flipped
/// (larger pActivity = smaller concentration). Translated bounds are
/// widened by one part in 10^9 so floating-point error at the boundary
/// can only ship an extra row (dropped by the residual), never lose
/// one. Equality on a derived float is not translated.
fn remote_form(conjunct: &Predicate) -> Option<Predicate> {
    match conjunct {
        Predicate::Compare { column, op, value } if column == "p_activity" => {
            let p = value.as_f64()?;
            let (op, slack) = match op {
                CompareOp::Ge => (CompareOp::Le, 1.0 + 1e-9),
                CompareOp::Gt => (CompareOp::Lt, 1.0 + 1e-9),
                CompareOp::Le => (CompareOp::Ge, 1.0 - 1e-9),
                CompareOp::Lt => (CompareOp::Gt, 1.0 - 1e-9),
                CompareOp::Eq | CompareOp::Ne => return None,
            };
            Some(Predicate::Compare {
                column: "value_nm".into(),
                op,
                value: Value::Float(p_to_nm(p) * slack),
            })
        }
        Predicate::Between { column, lo, hi } if column == "p_activity" => {
            let (lo, hi) = (lo.as_f64()?, hi.as_f64()?);
            Some(Predicate::Between {
                column: "value_nm".into(),
                lo: Value::Float(p_to_nm(hi) * (1.0 - 1e-9)),
                hi: Value::Float(p_to_nm(lo) * (1.0 + 1e-9)),
            })
        }
        other => {
            let remote = other.columns().iter().all(|c| REMOTE_COLUMNS.contains(c));
            remote.then(|| other.clone())
        }
    }
}

/// Concentration (nM) at a given pActivity.
fn p_to_nm(p: f64) -> f64 {
    10f64.powf(9.0 - p)
}

pub(crate) fn conjuncts_of(p: &Predicate) -> Vec<&Predicate> {
    match p {
        Predicate::And(ps) => ps.iter().flat_map(conjuncts_of).collect(),
        Predicate::True => Vec::new(),
        other => vec![other],
    }
}

/// Reorder a conjunction most-selective-first; other shapes unchanged.
fn order_by_selectivity(pred: Predicate, stats: &OverlayStats) -> Predicate {
    match pred {
        Predicate::And(mut ps) => {
            ps.sort_by(|a, b| {
                stats
                    .predicate_selectivity(a)
                    .total_cmp(&stats.predicate_selectivity(b))
            });
            Predicate::And(ps)
        }
        other => other,
    }
}

/// Build the finish operator.
fn build_finish(
    dataset: &Dataset,
    scope_node: drugtree_phylo::tree::NodeId,
    query: &Query,
) -> Result<Finish> {
    Ok(match &query.kind {
        QueryKind::Activities => Finish::Collect,
        QueryKind::TopK { by, k, descending } => Finish::TopK {
            column: unified_schema().column_index(by)?,
            k: *k,
            descending: *descending,
        },
        QueryKind::AggregateChildren { metric } => {
            let children = dataset
                .tree
                .node_unchecked(scope_node)
                .children
                .iter()
                .map(|&c| {
                    let label = dataset
                        .tree
                        .node_unchecked(c)
                        .label
                        .clone()
                        .unwrap_or_else(|| format!("n{}", c.0));
                    (c, label, dataset.index.interval(c))
                })
                .collect();
            Finish::AggregateChildren {
                children,
                metric: *metric,
            }
        }
        QueryKind::CountPerLeaf => Finish::CountPerLeaf,
    })
}

/// Cardinality estimate for the access: interval record count scaled
/// by the histogram selectivity of the pushdown (interval length when
/// no statistics were collected).
fn estimate_rows(
    stats: Option<&OverlayStats>,
    interval: LeafInterval,
    pushdown: &Option<Predicate>,
) -> u64 {
    stats.map_or(interval.len() as u64, |s| {
        let base = s.interval_count(interval);
        let sel = pushdown
            .as_ref()
            .map_or(1.0, |p| s.predicate_selectivity(p));
        (base as f64 * sel).ceil() as u64
    })
}

/// Effective sequential round trips for cost-model pricing: concurrent
/// dispatch overlaps every request into one effective RTT.
fn effective_requests(
    config: &OptimizerConfig,
    key_count: usize,
    batched: bool,
    max_batch: usize,
) -> u64 {
    if config.concurrent_dispatch {
        return 1;
    }
    let requests = if batched {
        key_count.div_ceil(max_batch.max(1))
    } else {
        key_count
    };
    requests.max(1) as u64
}

/// Build one source's fetch plan with its fixed-pipeline latency
/// estimate: exact `Duration` arithmetic from the source's
/// self-declared latency model (the cost-based planner overwrites
/// `est_cost` with its calibrated price).
fn fetch_for_source(
    source: &dyn drugtree_sources::DataSource,
    key_values: &[Value],
    pushdown: &Option<Predicate>,
    batched: bool,
    concurrent: bool,
    expected_rows: u64,
) -> FetchPlan {
    let max_batch = if batched {
        source.capabilities().max_batch.max(1)
    } else {
        1
    };
    let requests = if batched {
        key_values.len().div_ceil(max_batch)
    } else {
        key_values.len()
    }
    .max(1);
    let model = source.latency_model();
    let transfer = model.per_row * (expected_rows as u32);
    let est_cost = if concurrent {
        // All requests in flight: one RTT plus the transfer.
        model.base_rtt + transfer
    } else {
        model.base_rtt * requests as u32 + transfer
    };
    FetchPlan {
        source: source.name().to_string(),
        keys: key_values.to_vec(),
        pushdown: pushdown.clone(),
        batched,
        max_batch,
        concurrent,
        est_cost,
        est_rows: expected_rows,
    }
}

/// Combine per-fetch estimates the way the executor combines charged
/// latency: max across concurrent sources, sum across sequential.
fn combine_access_cost(access: &Access) -> Duration {
    let (fetches, concurrent_sources) = match access {
        Access::Fetch {
            fetches,
            concurrent_sources,
        } => (fetches, *concurrent_sources),
        // The cache hit path costs ~nothing; estimate the miss path so
        // EXPLAIN shows the worst case.
        Access::CacheProbe {
            on_miss,
            concurrent_sources,
            ..
        } => (on_miss, *concurrent_sources),
        // Columnar scans price via the compute model, not fetch
        // estimates; the caller special-cases them before combining.
        Access::ColumnarScan { .. } | Access::MaterializedView | Access::ProvedEmpty => {
            return Duration::ZERO
        }
    };
    if concurrent_sources {
        fetches
            .iter()
            .map(|f| f.est_cost)
            .max()
            .unwrap_or(Duration::ZERO)
    } else {
        fetches.iter().map(|f| f.est_cost).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Metric, Scope};
    use crate::dataset::test_fixtures::small_dataset;
    use drugtree_sources::source::SourceCapabilities;

    fn dataset() -> Dataset {
        small_dataset(SourceCapabilities::full())
    }

    #[test]
    fn naive_plan_shape() {
        let d = dataset();
        let q = Query::activities(Scope::Tree);
        let plan = Optimizer::new(OptimizerConfig::naive())
            .plan(&d, None, None, &q)
            .unwrap();
        match &plan.access {
            Access::Fetch {
                fetches,
                concurrent_sources,
            } => {
                assert!(!concurrent_sources);
                assert_eq!(fetches.len(), 1);
                assert_eq!(fetches[0].keys.len(), 4);
                assert!(!fetches[0].batched);
                assert!(fetches[0].pushdown.is_none());
            }
            other => panic!("expected Fetch, got {other:?}"),
        }
        assert_eq!(plan.pruned_leaves, 0);
        assert!(plan.ligand_join);
    }

    #[test]
    fn full_plan_uses_cache_and_pushdown() {
        let d = dataset();
        let stats = OverlayStats::collect(&d).unwrap();
        let q = Query::activities(Scope::Subtree("cladeA".into())).filter(Predicate::cmp(
            "p_activity",
            CompareOp::Ge,
            6.5,
        ));
        let plan = Optimizer::new(OptimizerConfig::full())
            .plan(&d, Some(&stats), None, &q)
            .unwrap();
        match &plan.access {
            Access::CacheProbe {
                pushdown,
                on_miss,
                insert_on_miss,
                ..
            } => {
                assert!(insert_on_miss);
                assert!(pushdown.is_some(), "p_activity filter is pushable");
                assert!(on_miss.iter().all(|f| f.batched && f.concurrent));
            }
            other => panic!("expected CacheProbe, got {other:?}"),
        }
        assert!(plan.explain().contains("pushdown"));
    }

    #[test]
    fn ligand_columns_not_pushed_down() {
        let d = dataset();
        let q = Query::activities(Scope::Tree)
            .filter(Predicate::cmp("mw", CompareOp::Lt, 500.0))
            .filter(Predicate::cmp("year", CompareOp::Ge, 2012i64));
        let plan = Optimizer::new(OptimizerConfig::full())
            .plan(&d, None, None, &q)
            .unwrap();
        let pushdown = match &plan.access {
            Access::CacheProbe { pushdown, .. } => pushdown.clone(),
            other => panic!("{other:?}"),
        };
        // Only the year conjunct is pushable.
        let p = pushdown.expect("year pushable");
        assert!(crate::plan::fmt_pred(&p).contains("year"));
        assert!(!crate::plan::fmt_pred(&p).contains("mw"));
    }

    #[test]
    fn incapable_sources_receive_no_pushdown() {
        let d = small_dataset(SourceCapabilities::minimal());
        let q =
            Query::activities(Scope::Tree).filter(Predicate::cmp("year", CompareOp::Ge, 2012i64));
        let plan = Optimizer::new(OptimizerConfig::full())
            .plan(&d, None, None, &q)
            .unwrap();
        match &plan.access {
            Access::CacheProbe { pushdown, .. } => assert!(pushdown.is_none()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stats_pruning_drops_empty_leaves() {
        let d = dataset();
        let stats = OverlayStats::collect(&d).unwrap();
        // P4 (rank 3) has no activities.
        let q = Query::activities(Scope::Tree);
        let plan = Optimizer::new(OptimizerConfig::full())
            .plan(&d, Some(&stats), None, &q)
            .unwrap();
        assert_eq!(plan.pruned_leaves, 1);
        match &plan.access {
            Access::CacheProbe { on_miss, .. } => {
                assert_eq!(on_miss[0].keys.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn p_activity_bound_prunes_by_range_max() {
        let d = dataset();
        let stats = OverlayStats::collect(&d).unwrap();
        // Only P3 (1 nM -> p=9) clears p >= 8.5; P1/P2/P4 pruned.
        let q =
            Query::activities(Scope::Tree).filter(Predicate::cmp("p_activity", CompareOp::Ge, 8.5));
        let plan = Optimizer::new(OptimizerConfig::full())
            .plan(&d, Some(&stats), None, &q)
            .unwrap();
        assert_eq!(plan.pruned_leaves, 3);
    }

    #[test]
    fn empty_interval_proved_empty() {
        let d = dataset();
        let stats = OverlayStats::collect(&d).unwrap();
        // cladeB's P4 side: leaves [3, 4) hold nothing.
        let q = Query::activities(Scope::Subtree("P4".into()));
        let plan = Optimizer::new(OptimizerConfig::full())
            .plan(&d, Some(&stats), None, &q)
            .unwrap();
        assert_eq!(plan.access, Access::ProvedEmpty);
        assert_eq!(plan.estimated_cost, Duration::ZERO);
    }

    #[test]
    fn validation_errors() {
        let d = dataset();
        let opt = Optimizer::new(OptimizerConfig::full());
        let q = Query::activities(Scope::Tree).filter(Predicate::eq("bogus", 1i64));
        assert!(matches!(
            opt.plan(&d, None, None, &q),
            Err(QueryError::UnknownColumn(_))
        ));
        let q = Query::activities(Scope::Tree).top_k("nope", 5, true);
        assert!(matches!(
            opt.plan(&d, None, None, &q),
            Err(QueryError::UnknownColumn(_))
        ));
        let q = Query::activities(Scope::Tree).similar_to("CCO", 1.5);
        assert!(opt.plan(&d, None, None, &q).is_err());
        let q = Query::activities(Scope::Tree).similar_to("((((", 0.5);
        assert!(matches!(
            opt.plan(&d, None, None, &q),
            Err(QueryError::BadSimilarityReference(_))
        ));
    }

    #[test]
    fn similarity_resolves_ligand_id_or_smiles() {
        let d = dataset();
        let opt = Optimizer::new(OptimizerConfig::full());
        // Known ligand id.
        let q = Query::activities(Scope::Tree).similar_to("L1", 0.5);
        let plan = opt.plan(&d, None, None, &q).unwrap();
        assert!(plan.similarity.is_some());
        // Raw SMILES.
        let q = Query::activities(Scope::Tree).similar_to("CCO", 0.5);
        let plan = opt.plan(&d, None, None, &q).unwrap();
        let sim = plan.similarity.unwrap();
        let ethanol_fp = d.overlay.fingerprint("L2").unwrap();
        assert_eq!(&sim.fingerprint, ethanol_fp, "SMILES CCO == ligand L2");
    }

    #[test]
    fn aggregate_children_enumerated() {
        let d = dataset();
        let q = Query::activities(Scope::Tree).aggregate(Metric::Count);
        let plan = Optimizer::new(OptimizerConfig::naive())
            .plan(&d, None, None, &q)
            .unwrap();
        match &plan.finish {
            Finish::AggregateChildren { children, .. } => {
                let labels: Vec<&str> = children.iter().map(|(_, l, _)| l.as_str()).collect();
                assert_eq!(labels, ["cladeA", "cladeB"]);
            }
            other => panic!("{other:?}"),
        }
        // Aggregates without ligand predicates skip the join.
        assert!(!plan.ligand_join);
    }

    #[test]
    fn matview_rejected_for_partial_clade_coverage() {
        use crate::matview::MaterializedAggregates;
        let d = dataset();
        let view = MaterializedAggregates::build(&d).unwrap();
        let opt = Optimizer::new(OptimizerConfig::full());
        // Whole tree: eligible.
        let q = Query::activities(Scope::Tree).aggregate(Metric::Count);
        let plan = opt.plan(&d, None, Some(&view), &q).unwrap();
        assert_eq!(plan.access, Access::MaterializedView);
        // Leaves P2..P3 span clades A and B, so the tightest clade is
        // the whole root but the interval is [1, 3): the view's whole-
        // clade aggregates would overcount. (Differential-oracle
        // regression.)
        let q = Query::activities(Scope::Leaves(vec!["P2".into(), "P3".into()]))
            .aggregate(Metric::Count);
        let plan = opt.plan(&d, None, Some(&view), &q).unwrap();
        assert_ne!(plan.access, Access::MaterializedView);
    }

    #[test]
    fn selectivity_ordering_reorders_residual() {
        let d = dataset();
        let stats = OverlayStats::collect(&d).unwrap();
        let wide = Predicate::cmp("p_activity", CompareOp::Ge, 5.0);
        let narrow = Predicate::cmp("p_activity", CompareOp::Ge, 8.9);
        let q = Query::activities(Scope::Tree)
            .filter(wide.clone())
            .filter(narrow.clone());
        let plan = Optimizer::new(OptimizerConfig::full())
            .plan(&d, Some(&stats), None, &q)
            .unwrap();
        match &plan.residual {
            Predicate::And(ps) => {
                assert_eq!(ps[0], narrow, "most selective first");
                assert_eq!(ps[1], wide);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn cost_estimate_orders_plans_sanely() {
        let d = dataset();
        let stats = OverlayStats::collect(&d).unwrap();
        let q = Query::activities(Scope::Tree);
        let naive = Optimizer::new(OptimizerConfig::naive())
            .plan(&d, Some(&stats), None, &q)
            .unwrap();
        let full = Optimizer::new(OptimizerConfig::full())
            .plan(&d, Some(&stats), None, &q)
            .unwrap();
        assert!(
            full.estimated_cost < naive.estimated_cost,
            "optimized estimate {:?} not below naive {:?}",
            full.estimated_cost,
            naive.estimated_cost
        );
    }

    #[test]
    fn ablation_helper() {
        for rule in OptimizerConfig::RULES {
            let c = OptimizerConfig::ablate(rule).unwrap();
            assert_ne!(c, OptimizerConfig::full(), "{rule} should change config");
        }
    }

    #[test]
    fn remote_form_translates_derived_columns() {
        // p_activity >= 8  <=>  value_nm <= 10 (widened by 1e-9).
        let p = Predicate::cmp("p_activity", CompareOp::Ge, 8.0);
        match remote_form(&p).unwrap() {
            Predicate::Compare { column, op, value } => {
                assert_eq!(column, "value_nm");
                assert_eq!(op, CompareOp::Le);
                let v = value.as_f64().unwrap();
                assert!((v - 10.0).abs() < 1e-6 && v >= 10.0, "got {v}");
            }
            other => panic!("{other:?}"),
        }
        // Between flips and swaps bounds.
        let p = Predicate::between("p_activity", 6.0, 8.0);
        match remote_form(&p).unwrap() {
            Predicate::Between { column, lo, hi } => {
                assert_eq!(column, "value_nm");
                assert!(lo.as_f64().unwrap() < hi.as_f64().unwrap());
                assert!((lo.as_f64().unwrap() - 10.0).abs() < 1e-6);
                assert!((hi.as_f64().unwrap() - 1000.0).abs() < 1e-3);
            }
            other => panic!("{other:?}"),
        }
        // Equality on a derived float is never pushed.
        assert!(remote_form(&Predicate::eq("p_activity", 8.0)).is_none());
        // Local-only coordinates are never pushed.
        assert!(remote_form(&Predicate::eq("leaf_rank", 3i64)).is_none());
        // Ligand columns are never pushed.
        assert!(remote_form(&Predicate::cmp("mw", CompareOp::Lt, 500.0)).is_none());
        // Native remote columns pass through unchanged.
        let p = Predicate::eq("year", 2012i64);
        assert_eq!(remote_form(&p).unwrap(), p);
    }

    #[test]
    fn ablate_unknown_rule_is_an_error() {
        match OptimizerConfig::ablate("warp-drive") {
            Err(QueryError::UnknownRule(rule)) => assert_eq!(rule, "warp-drive"),
            other => panic!("expected UnknownRule, got {other:?}"),
        }
    }

    #[test]
    fn cost_based_plan_enumerates_candidates_and_picks_minimum() {
        let d = dataset();
        let stats = OverlayStats::collect(&d).unwrap();
        let q = Query::activities(Scope::Tree);
        let plan = Optimizer::new(OptimizerConfig::cost_based())
            .plan(&d, Some(&stats), None, &q)
            .unwrap();
        assert!(!plan.candidates.is_empty(), "candidates must be recorded");
        let access: Vec<&PlanCandidate> = plan
            .candidates
            .iter()
            .filter(|c| c.group == "access")
            .collect();
        assert_eq!(access.iter().filter(|c| c.chosen).count(), 1);
        let chosen = access.iter().find(|c| c.chosen).unwrap();
        for c in &access {
            assert!(c.cost_secs.is_finite() && c.cost_secs >= 0.0);
            assert!(chosen.cost_secs <= c.cost_secs, "chosen must be minimal");
        }
        // Same result shape as the fixed pipeline: still a cache probe
        // over batched concurrent fetches on this dataset.
        assert!(matches!(plan.access, Access::CacheProbe { .. }));
        assert!(plan.estimated_rows > 0);
    }

    #[test]
    fn fixed_pipeline_emits_no_candidates() {
        let d = dataset();
        let q = Query::activities(Scope::Tree);
        let plan = Optimizer::new(OptimizerConfig::full())
            .plan(&d, None, None, &q)
            .unwrap();
        assert!(plan.candidates.is_empty());
    }

    #[test]
    fn calibrated_cost_model_steers_plan_estimates() {
        use crate::cost::CostParams;
        let d = dataset();
        let stats = OverlayStats::collect(&d).unwrap();
        let q = Query::activities(Scope::Tree);
        let opt = Optimizer::new(OptimizerConfig::cost_based());
        let model = CostModel::new();
        let prior_plan = opt
            .plan_with(&d, Some(&stats), None, Some(&model), &q)
            .unwrap();
        // Teach the model that assay-sim is 10x the prior's round trip.
        let slow = CostParams {
            rtt_secs: CostParams::prior().rtt_secs * 10.0,
            per_row_secs: CostParams::prior().per_row_secs,
        };
        for (reqs, rows) in [(1u64, 10u64), (2, 50), (1, 200), (3, 30)] {
            let obs = crate::cost::secs_to_duration(slow.price(reqs, rows));
            model.observe("assay-sim", reqs, rows, obs, Duration::from_millis(1));
        }
        let calibrated_plan = opt
            .plan_with(&d, Some(&stats), None, Some(&model), &q)
            .unwrap();
        assert!(
            calibrated_plan.estimated_cost > prior_plan.estimated_cost,
            "calibration must raise the estimate for a slow source: {:?} vs {:?}",
            calibrated_plan.estimated_cost,
            prior_plan.estimated_cost
        );
    }
}
