//! The phased rewrite engine's rule registry (design decision D13).
//!
//! The optimizer runs four explicit phases in a fixed order
//! ([`PHASE_ORDER`]): **Analyze** resolves the query against the
//! dataset (scope interval, similarity/substructure references, source
//! and key discovery), **Canonicalize** normalizes the predicate (NNF,
//! flattening, constant folding, `between` merging, deduplication),
//! **Optimize** applies the cost-reducing rewrites (pruning, pushdown,
//! selectivity ordering, matview/cache/candidate enumeration), and
//! **Lower** turns the optimized draft into the physical plan
//! (batching, fetch construction, access selection, finish shape).
//!
//! Every rule is registered here as a [`RuleDef`] with its phase, a
//! one-line description, and — for flag-gated rules — a toggle into
//! [`OptimizerConfig`], so ablation (`OptimizerConfig::ablate`), the
//! `drugtree rules` listing, the differential oracle's single-rule
//! configs, and the repo-lint registry check all derive from one
//! table instead of hand-maintained `match` arms.
//!
//! Within each phase the driver runs every rule once per pass and
//! repeats until a pass changes nothing, bounded by
//! [`MAX_PASSES_PER_PHASE`]; each firing's [`RuleOutcome`] is recorded
//! in the plan's rule trace ([`PassTrace`]) and rendered by EXPLAIN.

use crate::optimizer::OptimizerConfig;

/// One of the rewrite engine's four phases, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RewritePhase {
    /// Resolve the query against the dataset into the analysis context.
    Analyze,
    /// Normalize the predicate into canonical form.
    Canonicalize,
    /// Apply cost-reducing rewrites to the draft.
    Optimize,
    /// Construct the physical access path and finish operator.
    Lower,
}

impl RewritePhase {
    /// Stable label for rendering and metric keys.
    pub fn label(self) -> &'static str {
        match self {
            RewritePhase::Analyze => "analyze",
            RewritePhase::Canonicalize => "canonicalize",
            RewritePhase::Optimize => "optimize",
            RewritePhase::Lower => "lower",
        }
    }
}

/// The phases, in the order the driver runs them.
pub const PHASE_ORDER: [RewritePhase; 4] = [
    RewritePhase::Analyze,
    RewritePhase::Canonicalize,
    RewritePhase::Optimize,
    RewritePhase::Lower,
];

/// Upper bound on fixpoint passes within one phase. Canonicalization
/// strictly shrinks a measure of the predicate each changing pass, so
/// real queries converge in two or three passes; the bound exists so a
/// buggy rule oscillating between forms fails loudly instead of
/// spinning.
pub const MAX_PASSES_PER_PHASE: usize = 32;

/// What one rule application did to the draft.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleOutcome {
    /// The rule's config flag is disabled.
    Off,
    /// Enabled, but the rule's context gate did not match this query.
    NotApplicable,
    /// Ran and left the draft as it was (already at fixpoint).
    NoChange,
    /// Ran and changed the draft.
    Changed,
}

impl RuleOutcome {
    /// Stable label for the EXPLAIN rule trace.
    pub fn label(self) -> &'static str {
        match self {
            RuleOutcome::Off => "off",
            RuleOutcome::NotApplicable => "n/a",
            RuleOutcome::NoChange => "no-change",
            RuleOutcome::Changed => "changed",
        }
    }
}

/// One registered rewrite rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleDef {
    /// Registry name (also the `ablate` / EXPLAIN trace name).
    pub name: &'static str,
    /// The phase the rule runs in.
    pub phase: RewritePhase,
    /// One-line description for `drugtree rules`.
    pub description: &'static str,
    /// Flag setter on [`OptimizerConfig`] for ablatable rules;
    /// `None` marks a structural rule that always runs.
    pub toggle: Option<fn(&mut OptimizerConfig, bool)>,
}

impl RuleDef {
    /// Whether the rule can be switched off (has a config flag).
    pub fn ablatable(&self) -> bool {
        self.toggle.is_some()
    }
}

// Named toggle functions: function pointers in a `const` table must be
// items, not closures.
fn t_canon_nnf(c: &mut OptimizerConfig, on: bool) {
    c.canon_nnf = on;
}
fn t_canon_flatten(c: &mut OptimizerConfig, on: bool) {
    c.canon_flatten = on;
}
fn t_canon_fold(c: &mut OptimizerConfig, on: bool) {
    c.canon_fold = on;
}
fn t_canon_between(c: &mut OptimizerConfig, on: bool) {
    c.canon_between = on;
}
fn t_canon_dedup(c: &mut OptimizerConfig, on: bool) {
    c.canon_dedup = on;
}
fn t_selectivity_ordering(c: &mut OptimizerConfig, on: bool) {
    c.selectivity_ordering = on;
}
fn t_stats_pruning(c: &mut OptimizerConfig, on: bool) {
    c.stats_pruning = on;
}
fn t_pushdown(c: &mut OptimizerConfig, on: bool) {
    c.pushdown = on;
}
fn t_replica_selection(c: &mut OptimizerConfig, on: bool) {
    c.replica_selection = on;
}
fn t_use_matview(c: &mut OptimizerConfig, on: bool) {
    c.use_matview = on;
}
fn t_columnar_scan(c: &mut OptimizerConfig, on: bool) {
    c.columnar_scan = on;
}
fn t_semantic_cache(c: &mut OptimizerConfig, on: bool) {
    c.semantic_cache = on;
}
fn t_batching(c: &mut OptimizerConfig, on: bool) {
    c.batching = on;
}
fn t_concurrent_dispatch(c: &mut OptimizerConfig, on: bool) {
    c.concurrent_dispatch = on;
}

/// Every rewrite rule, grouped by phase in application order. The
/// driver iterates this table directly, so registry order IS rule
/// order within a phase (the EXPLAIN note order depends on it).
pub const REGISTRY: &[RuleDef] = &[
    // -------- Analyze --------
    RuleDef {
        name: "interval_rewrite",
        phase: RewritePhase::Analyze,
        description: "resolve the scope to a leaf interval via the tree index",
        toggle: None,
    },
    RuleDef {
        name: "similarity_resolve",
        phase: RewritePhase::Analyze,
        description: "resolve a similarity reference to a fingerprint",
        toggle: None,
    },
    RuleDef {
        name: "substructure_resolve",
        phase: RewritePhase::Analyze,
        description: "parse a substructure pattern and its prescreen fingerprint",
        toggle: None,
    },
    RuleDef {
        name: "column_discovery",
        phase: RewritePhase::Analyze,
        description: "discover assay sources, candidate keys, and the ligand-join need",
        toggle: None,
    },
    // -------- Canonicalize --------
    RuleDef {
        name: "canon_nnf",
        phase: RewritePhase::Canonicalize,
        description: "push negations to the leaves (double negation, De Morgan)",
        toggle: Some(t_canon_nnf),
    },
    RuleDef {
        name: "canon_flatten",
        phase: RewritePhase::Canonicalize,
        description: "flatten nested and/or and unwrap single-member connectives",
        toggle: Some(t_canon_flatten),
    },
    RuleDef {
        name: "canon_fold",
        phase: RewritePhase::Canonicalize,
        description: "fold constant true/false subterms",
        toggle: Some(t_canon_fold),
    },
    RuleDef {
        name: "canon_between",
        phase: RewritePhase::Canonicalize,
        description: "merge a column's >= and <= bounds into one between",
        toggle: Some(t_canon_between),
    },
    RuleDef {
        name: "canon_dedup",
        phase: RewritePhase::Canonicalize,
        description: "drop duplicate conjuncts and disjuncts",
        toggle: Some(t_canon_dedup),
    },
    // -------- Optimize --------
    RuleDef {
        name: "selectivity_ordering",
        phase: RewritePhase::Optimize,
        description: "reorder residual conjuncts most-selective-first",
        toggle: Some(t_selectivity_ordering),
    },
    RuleDef {
        name: "stats_pruning",
        phase: RewritePhase::Optimize,
        description: "drop leaves (or the whole interval) proven empty by statistics",
        toggle: Some(t_stats_pruning),
    },
    RuleDef {
        name: "pushdown",
        phase: RewritePhase::Optimize,
        description: "push remotely evaluable conjuncts into the source fetches",
        toggle: Some(t_pushdown),
    },
    RuleDef {
        name: "cardinality_estimate",
        phase: RewritePhase::Optimize,
        description: "sort/dedup the key set and estimate shipped rows from histograms",
        toggle: None,
    },
    RuleDef {
        name: "replica_selection",
        phase: RewritePhase::Optimize,
        description: "fetch each replica group from its cheapest member only",
        toggle: Some(t_replica_selection),
    },
    RuleDef {
        name: "use_matview",
        phase: RewritePhase::Optimize,
        description: "answer eligible aggregates from the materialized view",
        toggle: Some(t_use_matview),
    },
    RuleDef {
        name: "columnar_scan",
        phase: RewritePhase::Optimize,
        description: "serve interval scopes from the columnar mirror's kernels",
        toggle: Some(t_columnar_scan),
    },
    RuleDef {
        name: "semantic_cache",
        phase: RewritePhase::Optimize,
        description: "wrap the fetch in a semantic cache probe",
        toggle: Some(t_semantic_cache),
    },
    // -------- Lower --------
    RuleDef {
        name: "batching",
        phase: RewritePhase::Lower,
        description: "coalesce key lookups into max-batch requests",
        toggle: Some(t_batching),
    },
    RuleDef {
        name: "concurrent_dispatch",
        phase: RewritePhase::Lower,
        description: "dispatch batches and sources concurrently",
        toggle: Some(t_concurrent_dispatch),
    },
    RuleDef {
        name: "lower_fetches",
        phase: RewritePhase::Lower,
        description: "build per-source fetch plans with latency estimates",
        toggle: None,
    },
    RuleDef {
        name: "access_select",
        phase: RewritePhase::Lower,
        description: "select the access path (flag order, or priced enumeration)",
        toggle: None,
    },
    RuleDef {
        name: "finish_build",
        phase: RewritePhase::Lower,
        description: "construct the finishing operator",
        toggle: None,
    },
];

/// The registered rules of one phase, in application order.
pub fn rules_in(phase: RewritePhase) -> impl Iterator<Item = &'static RuleDef> {
    REGISTRY.iter().filter(move |r| r.phase == phase)
}

/// Look up a rule by its registry name.
pub fn rule_named(name: &str) -> Option<&'static RuleDef> {
    REGISTRY.iter().find(|r| r.name == name)
}

/// The flag-gated rules, in registry order — the `ablate` name space.
pub fn ablatable_rules() -> impl Iterator<Item = &'static RuleDef> {
    REGISTRY.iter().filter(|r| r.ablatable())
}

/// One rule application recorded in the plan's rule trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleFiring {
    /// Registry name of the rule.
    pub rule: &'static str,
    /// What the application did.
    pub outcome: RuleOutcome,
}

/// One fixpoint pass of one phase: every rule of the phase fired once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassTrace {
    /// The phase the pass belongs to.
    pub phase: RewritePhase,
    /// 1-based pass number within the phase.
    pub pass: usize,
    /// Per-rule outcomes, in registry order.
    pub firings: Vec<RuleFiring>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_name_is_unique() {
        let mut names: Vec<&str> = REGISTRY.iter().map(|r| r.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate rule names in REGISTRY");
    }

    #[test]
    fn registry_is_grouped_in_phase_order() {
        // Rules appear phase-contiguously in PHASE_ORDER order, so
        // iterating the registry directly equals iterating phase by
        // phase (the EXPLAIN note order depends on this).
        let phases: Vec<RewritePhase> = REGISTRY.iter().map(|r| r.phase).collect();
        let mut sorted = phases.clone();
        sorted.sort();
        assert_eq!(phases, sorted, "REGISTRY must be grouped by phase");
        for phase in PHASE_ORDER {
            assert!(rules_in(phase).count() > 0, "{phase:?} has no rules");
        }
    }

    #[test]
    fn toggles_flip_exactly_one_flag() {
        for rule in ablatable_rules() {
            let mut c = OptimizerConfig::full();
            (rule.toggle.unwrap())(&mut c, false);
            assert_ne!(c, OptimizerConfig::full(), "{} toggles nothing", rule.name);
            (rule.toggle.unwrap())(&mut c, true);
            assert_eq!(c, OptimizerConfig::full(), "{} does not restore", rule.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(rule_named("pushdown").is_some());
        assert!(rule_named("interval_rewrite").is_some());
        assert!(rule_named("warp-drive").is_none());
        assert!(!rule_named("access_select").unwrap().ablatable());
        assert!(rule_named("canon_nnf").unwrap().ablatable());
    }
}
