//! Rolling SLO windows: time-windowed latency aggregation per query
//! class and per serving session, with breach counting against
//! per-class targets.
//!
//! Windows live on the **virtual clock** ([`WindowedHistogram`] keys
//! slots by `timestamp / width`), so window boundaries — and every
//! exported rollover event — are deterministic under replay. Each
//! closed window folds into a [`WindowSummary`] (count / p50 / p95 /
//! p99 / max from interpolated histogram quantiles); a bounded ring
//! retains the most recent N summaries per scope.

use crate::ast::{Query, QueryKind};
use drugtree_sources::sync::RwLock;
use drugtree_sources::telemetry::{Counter, FixedHistogram};
pub use drugtree_sources::telemetry::{WindowSummary, WindowedHistogram};
use drugtree_store::expr::Predicate;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Workload class of a query, derived from its AST shape.
///
/// Classes partition the fleet's traffic the way an operator reasons
/// about it: cheap viewport listings vs. filtered scans vs. the
/// chemistry-heavy similarity path, each with its own latency target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueryClass {
    /// Bare subtree listing (no predicate, no structure constraint).
    Listing,
    /// Listing with a row predicate.
    Filtered,
    /// Similarity or substructure constrained.
    Similarity,
    /// Top-k ranking.
    TopK,
    /// Per-child aggregation (collapsed branch view).
    Aggregate,
    /// Per-leaf match counting (heat strips).
    CountPerLeaf,
}

impl QueryClass {
    /// Every class, in display order.
    pub const ALL: [QueryClass; 6] = [
        QueryClass::Listing,
        QueryClass::Filtered,
        QueryClass::Similarity,
        QueryClass::TopK,
        QueryClass::Aggregate,
        QueryClass::CountPerLeaf,
    ];

    /// Classify a query. The finishing operator wins (a filtered
    /// top-k is still `TopK`); plain listings split on structure
    /// constraints first, then on the predicate.
    pub fn of(query: &Query) -> QueryClass {
        match query.kind {
            QueryKind::AggregateChildren { .. } => QueryClass::Aggregate,
            QueryKind::CountPerLeaf => QueryClass::CountPerLeaf,
            QueryKind::TopK { .. } => QueryClass::TopK,
            QueryKind::Activities => {
                if query.similarity.is_some() || query.substructure.is_some() {
                    QueryClass::Similarity
                } else if query.predicate != Predicate::True {
                    QueryClass::Filtered
                } else {
                    QueryClass::Listing
                }
            }
        }
    }

    /// Stable label for rendering and export.
    pub fn label(self) -> &'static str {
        match self {
            QueryClass::Listing => "listing",
            QueryClass::Filtered => "filtered",
            QueryClass::Similarity => "similarity",
            QueryClass::TopK => "top_k",
            QueryClass::Aggregate => "aggregate",
            QueryClass::CountPerLeaf => "count_per_leaf",
        }
    }

    /// Parse a label produced by [`QueryClass::label`].
    pub fn from_label(label: &str) -> Option<QueryClass> {
        QueryClass::ALL.into_iter().find(|c| c.label() == label)
    }

    pub(crate) fn index(self) -> usize {
        match self {
            QueryClass::Listing => 0,
            QueryClass::Filtered => 1,
            QueryClass::Similarity => 2,
            QueryClass::TopK => 3,
            QueryClass::Aggregate => 4,
            QueryClass::CountPerLeaf => 5,
        }
    }
}

/// Latency targets: one per query class plus one end-to-end target
/// for per-session gesture latency.
///
/// A recorded latency strictly above its target counts as a breach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloPolicy {
    class_targets: [Duration; QueryClass::ALL.len()],
    session_target: Duration,
}

impl Default for SloPolicy {
    /// Targets tuned to the simulated fleet: interactive listings and
    /// rankings inside 50 ms of source time, the chemistry path at
    /// 100 ms, cached aggregates at 25 ms, and a 250 ms end-to-end
    /// gesture budget (the 4G link's transfer dominates it).
    fn default() -> SloPolicy {
        let ms = Duration::from_millis;
        let mut class_targets = [ms(50); QueryClass::ALL.len()];
        class_targets[QueryClass::Similarity.index()] = ms(100);
        class_targets[QueryClass::Aggregate.index()] = ms(25);
        SloPolicy {
            class_targets,
            session_target: ms(250),
        }
    }
}

impl SloPolicy {
    /// The target for a query class.
    pub fn target(&self, class: QueryClass) -> Duration {
        self.class_targets[class.index()]
    }

    /// The end-to-end per-gesture session target.
    pub fn session_target(&self) -> Duration {
        self.session_target
    }

    /// Replace one class target.
    pub fn with_target(mut self, class: QueryClass, target: Duration) -> SloPolicy {
        self.class_targets[class.index()] = target;
        self
    }

    /// Replace the session target.
    pub fn with_session_target(mut self, target: Duration) -> SloPolicy {
        self.session_target = target;
        self
    }
}

/// One scope's rolling window plus its cumulative breach counter.
#[derive(Debug)]
struct ScopeWindow {
    window: WindowedHistogram,
    breaches: Counter,
}

impl ScopeWindow {
    fn new(width: Duration, ring: usize) -> ScopeWindow {
        ScopeWindow {
            window: WindowedHistogram::new(width, ring, latency_bounds()),
            breaches: Counter::new(),
        }
    }

    fn record(&self, at_ns: u64, latency: Duration, target: Duration) -> Vec<WindowSummary> {
        if latency > target {
            self.breaches.incr();
        }
        self.window.record(at_ns, nanos(latency))
    }
}

fn latency_bounds() -> &'static [u64] {
    // The 1-2-5 decade ladder of `FixedHistogram::latency_buckets`,
    // shared so window quantiles and cumulative quantiles agree.
    const MS: u64 = 1_000_000;
    const BOUNDS: [u64; 13] = [
        MS,
        2 * MS,
        5 * MS,
        10 * MS,
        20 * MS,
        50 * MS,
        100 * MS,
        200 * MS,
        500 * MS,
        1_000 * MS,
        2_000 * MS,
        5_000 * MS,
        10_000 * MS,
    ];
    &BOUNDS
}

fn nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Rolling SLO windows for the whole fleet: one windowed ring per
/// query class (charged query latency against the class target) and
/// one per serving session (end-to-end gesture latency against the
/// session target).
///
/// Recording returns the windows each record closed, so an exporter
/// can emit exactly one rollover event per finalized window.
#[derive(Debug)]
pub struct RollingWindows {
    width: Duration,
    ring: usize,
    policy: SloPolicy,
    per_class: [ScopeWindow; QueryClass::ALL.len()],
    per_session: RwLock<BTreeMap<u32, Arc<ScopeWindow>>>,
}

impl RollingWindows {
    /// Rolling windows of `width` each, retaining `ring` closed
    /// summaries per scope, breached against `policy`.
    pub fn new(width: Duration, ring: usize, policy: SloPolicy) -> RollingWindows {
        RollingWindows {
            per_class: std::array::from_fn(|_| ScopeWindow::new(width, ring)),
            per_session: RwLock::new(BTreeMap::new()),
            width,
            ring,
            policy,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// Window width.
    pub fn width(&self) -> Duration {
        self.width
    }

    /// Fold one query's charged latency into its class window,
    /// returning any windows the record closed.
    pub fn record_query(
        &self,
        class: QueryClass,
        at_ns: u64,
        charged: Duration,
    ) -> Vec<WindowSummary> {
        self.per_class[class.index()].record(at_ns, charged, self.policy.target(class))
    }

    /// Fold one gesture's end-to-end latency into its session window,
    /// returning any windows the record closed.
    pub fn record_session(
        &self,
        session: u32,
        at_ns: u64,
        charged: Duration,
    ) -> Vec<WindowSummary> {
        // Bind the fast-path lookup first: an `if let` on the read
        // guard would keep it alive into the else branch and self-
        // deadlock against the write lock below.
        let existing = self.per_session.read().get(&session).map(Arc::clone);
        let slot = match existing {
            Some(slot) => slot,
            None => Arc::clone(
                self.per_session
                    .write()
                    .entry(session)
                    .or_insert_with(|| Arc::new(ScopeWindow::new(self.width, self.ring))),
            ),
        };
        slot.record(at_ns, charged, self.policy.session_target)
    }

    /// Cumulative SLO breaches for a class.
    pub fn class_breaches(&self, class: QueryClass) -> u64 {
        self.per_class[class.index()].breaches.get()
    }

    /// Closed-window summaries retained for a class (oldest first).
    pub fn class_summaries(&self, class: QueryClass) -> Vec<WindowSummary> {
        self.per_class[class.index()].window.summaries()
    }

    /// Every session that recorded at least one gesture, sorted.
    pub fn session_ids(&self) -> Vec<u32> {
        self.per_session.read().keys().copied().collect()
    }

    /// Cumulative SLO breaches for a session (0 if unseen).
    pub fn session_breaches(&self, session: u32) -> u64 {
        self.per_session
            .read()
            .get(&session)
            .map_or(0, |s| s.breaches.get())
    }

    /// Closed-window summaries retained for a session.
    pub fn session_summaries(&self, session: u32) -> Vec<WindowSummary> {
        self.per_session
            .read()
            .get(&session)
            .map_or_else(Vec::new, |s| s.window.summaries())
    }

    /// A cumulative histogram sharing the window bucket layout
    /// (helper for observers that also keep whole-run distributions).
    pub(crate) fn cumulative_histogram() -> FixedHistogram {
        FixedHistogram::new(latency_bounds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Scope;
    use crate::parser::parse_query;

    fn class_of(text: &str) -> QueryClass {
        QueryClass::of(&parse_query(text).unwrap())
    }

    #[test]
    fn classes_follow_ast_shape() {
        assert_eq!(class_of("activities in tree"), QueryClass::Listing);
        assert_eq!(
            class_of("activities in tree where p_activity >= 6"),
            QueryClass::Filtered
        );
        assert_eq!(
            class_of("activities in tree similar to 'CCO' >= 0.4"),
            QueryClass::Similarity
        );
        assert_eq!(
            class_of("activities in tree top 5 by p_activity"),
            QueryClass::TopK
        );
        assert_eq!(
            class_of("aggregate max_p_activity in tree"),
            QueryClass::Aggregate
        );
        assert_eq!(class_of("count per leaf in tree"), QueryClass::CountPerLeaf);
        // A bare scoped listing classifies through the constructor too.
        assert_eq!(
            QueryClass::of(&Query::activities(Scope::Tree)),
            QueryClass::Listing
        );
    }

    #[test]
    fn labels_round_trip() {
        for class in QueryClass::ALL {
            assert_eq!(QueryClass::from_label(class.label()), Some(class));
        }
        assert_eq!(QueryClass::from_label("nope"), None);
    }

    #[test]
    fn breaches_count_strictly_above_target() {
        let policy =
            SloPolicy::default().with_target(QueryClass::Listing, Duration::from_millis(10));
        let w = RollingWindows::new(Duration::from_secs(1), 4, policy);
        let ms = Duration::from_millis;
        w.record_query(QueryClass::Listing, 0, ms(10));
        w.record_query(QueryClass::Listing, 1, ms(11));
        w.record_query(QueryClass::Listing, 2, ms(200));
        assert_eq!(w.class_breaches(QueryClass::Listing), 2);
        assert_eq!(w.class_breaches(QueryClass::Filtered), 0);
    }

    #[test]
    fn rollover_summaries_come_back_from_record() {
        const S: u64 = 1_000_000_000;
        let w = RollingWindows::new(Duration::from_secs(1), 4, SloPolicy::default());
        assert!(w
            .record_query(QueryClass::TopK, 10, Duration::from_millis(5))
            .is_empty());
        let closed = w.record_query(QueryClass::TopK, S + 10, Duration::from_millis(5));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].count, 1);
        assert_eq!(w.class_summaries(QueryClass::TopK), closed);
        // Other classes are untouched.
        assert!(w.class_summaries(QueryClass::Listing).is_empty());
    }

    #[test]
    fn sessions_get_their_own_windows() {
        let policy = SloPolicy::default().with_session_target(Duration::from_millis(100));
        let w = RollingWindows::new(Duration::from_secs(1), 4, policy);
        w.record_session(3, 0, Duration::from_millis(300));
        w.record_session(7, 0, Duration::from_millis(50));
        assert_eq!(w.session_ids(), vec![3, 7]);
        assert_eq!(w.session_breaches(3), 1);
        assert_eq!(w.session_breaches(7), 0);
        assert_eq!(w.session_breaches(99), 0);
    }
}
