//! Bounded slow-query log: the top-K slowest *plan shapes* by charged
//! latency, with full `EXPLAIN ANALYZE` renderings.
//!
//! Entries are keyed by plan fingerprint ([`super::plan_fingerprint`])
//! so the thousand occurrences of one bad shape collapse into a single
//! entry carrying an occurrence count and the rendering of its slowest
//! occurrence. Capacity is enforced with a min-heap over charged
//! latency: a new shape must beat the current cheapest entry to get
//! in, which keeps admission O(log K) and memory strictly bounded.
//! Renderings are produced lazily — a query that will not be admitted
//! never formats anything.

use drugtree_sources::sync::Mutex;
use rustc_hash::FxHashMap;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

/// One retained slow-query shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowLogEntry {
    /// Plan-shape fingerprint (the dedup key).
    pub fingerprint: u64,
    /// Canonical plan shape (predicate constants stripped).
    pub shape: String,
    /// Query text of the slowest occurrence.
    pub query: String,
    /// Largest charged latency observed for this shape.
    pub charged: Duration,
    /// Occurrences folded into this entry while it was resident.
    pub count: u64,
    /// `EXPLAIN ANALYZE` rendering of the slowest occurrence.
    pub rendering: String,
    /// Virtual-clock nanoseconds of the most recent occurrence.
    pub last_seen_ns: u64,
}

#[derive(Debug, Default)]
struct LogState {
    entries: FxHashMap<u64, SlowLogEntry>,
    /// Min-heap of `(charged, fingerprint)` with lazy invalidation:
    /// an entry whose charged latency no longer matches the map is
    /// stale and popped on sight.
    heap: BinaryHeap<Reverse<(Duration, u64)>>,
}

impl LogState {
    /// Pop stale heap entries until the top mirrors a live map entry.
    fn settle(&mut self) {
        while let Some(Reverse((charged, fp))) = self.heap.peek().copied() {
            match self.entries.get(&fp) {
                Some(e) if e.charged == charged => return,
                _ => {
                    self.heap.pop();
                }
            }
        }
    }
}

/// A bounded, dedup-by-fingerprint slow-query log.
pub struct SlowQueryLog {
    capacity: usize,
    state: Mutex<LogState>,
}

impl std::fmt::Debug for SlowQueryLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowQueryLog")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl SlowQueryLog {
    /// A log retaining at most `capacity` shapes (minimum 1).
    pub fn new(capacity: usize) -> SlowQueryLog {
        SlowQueryLog {
            capacity: capacity.max(1),
            state: Mutex::new(LogState::default()),
        }
    }

    /// Maximum retained shapes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently retained shapes.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    /// Whether nothing has been admitted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Offer one executed query to the log. `render` is called only
    /// when this occurrence's rendering will actually be stored (a
    /// new shape admitted, or a resident shape beaten by a slower
    /// occurrence), so the common fast query costs two map probes.
    ///
    /// Returns `true` when the occurrence was folded in (resident
    /// shape or admitted), `false` when it lost to the resident top-K.
    pub fn offer(
        &self,
        fingerprint: u64,
        charged: Duration,
        at_ns: u64,
        query: &str,
        shape: impl FnOnce() -> String,
        render: impl FnOnce() -> String,
    ) -> bool {
        let mut state = self.state.lock();
        if let Some(entry) = state.entries.get_mut(&fingerprint) {
            entry.count += 1;
            entry.last_seen_ns = entry.last_seen_ns.max(at_ns);
            if charged > entry.charged {
                entry.charged = charged;
                entry.query = query.to_string();
                entry.rendering = render();
                state.heap.push(Reverse((charged, fingerprint)));
            }
            return true;
        }
        if state.entries.len() >= self.capacity {
            state.settle();
            let Some(Reverse((min_charged, min_fp))) = state.heap.peek().copied() else {
                return false;
            };
            if charged <= min_charged {
                return false;
            }
            state.entries.remove(&min_fp);
            state.heap.pop();
        }
        state.entries.insert(
            fingerprint,
            SlowLogEntry {
                fingerprint,
                shape: shape(),
                query: query.to_string(),
                charged,
                count: 1,
                rendering: render(),
                last_seen_ns: at_ns,
            },
        );
        state.heap.push(Reverse((charged, fingerprint)));
        true
    }

    /// Age out shapes that stopped appearing: drop every entry whose
    /// most recent occurrence is more than `idle` before `now_ns` on
    /// the virtual clock, freeing its top-K slot for live traffic
    /// instead of letting a one-off spike squat forever.
    ///
    /// Returns how many entries decayed. Heap entries for removed
    /// shapes go stale and are popped lazily by `settle`, so decay is
    /// O(entries) with deferred heap cleanup.
    pub fn decay_idle(&self, now_ns: u64, idle: Duration) -> usize {
        let horizon = now_ns.saturating_sub(u64::try_from(idle.as_nanos()).unwrap_or(u64::MAX));
        let mut state = self.state.lock();
        let before = state.entries.len();
        state.entries.retain(|_, e| e.last_seen_ns >= horizon);
        before - state.entries.len()
    }

    /// Retained entries, slowest first (ties break on fingerprint for
    /// deterministic output).
    pub fn entries(&self) -> Vec<SlowLogEntry> {
        let state = self.state.lock();
        let mut all: Vec<SlowLogEntry> = state.entries.values().cloned().collect();
        all.sort_by(|a, b| {
            b.charged
                .cmp(&a.charged)
                .then_with(|| a.fingerprint.cmp(&b.fingerprint))
        });
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn offer(log: &SlowQueryLog, fp: u64, charged: Duration) -> bool {
        log.offer(
            fp,
            charged,
            charged.as_nanos() as u64,
            "q",
            || format!("shape-{fp}"),
            || format!("render-{fp}-{charged:?}"),
        )
    }

    #[test]
    fn repeated_shapes_dedupe_and_keep_slowest_rendering() {
        let log = SlowQueryLog::new(4);
        assert!(offer(&log, 1, ms(10)));
        assert!(offer(&log, 1, ms(30)));
        assert!(offer(&log, 1, ms(20)));
        assert_eq!(log.len(), 1);
        let entries = log.entries();
        assert_eq!(entries[0].count, 3);
        assert_eq!(entries[0].charged, ms(30));
        assert_eq!(entries[0].rendering, "render-1-30ms");
        assert_eq!(entries[0].last_seen_ns, ms(30).as_nanos() as u64);
    }

    #[test]
    fn min_heap_evicts_the_cheapest_shape() {
        let log = SlowQueryLog::new(2);
        offer(&log, 1, ms(10));
        offer(&log, 2, ms(20));
        // Too cheap: rejected, log unchanged.
        assert!(!offer(&log, 3, ms(5)));
        assert_eq!(log.len(), 2);
        // Beats the cheapest resident shape (fp 1): admitted.
        assert!(offer(&log, 4, ms(15)));
        let fps: Vec<u64> = log.entries().iter().map(|e| e.fingerprint).collect();
        assert_eq!(fps, vec![2, 4], "slowest first, fp 1 evicted");
    }

    #[test]
    fn eviction_respects_in_place_updates() {
        let log = SlowQueryLog::new(2);
        offer(&log, 1, ms(10));
        offer(&log, 2, ms(20));
        // fp 1 gets slower in place; its old heap entry is now stale.
        offer(&log, 1, ms(50));
        // 15ms would have beaten the stale 10ms floor but not the live
        // 20ms one.
        assert!(!offer(&log, 3, ms(15)));
        assert!(offer(&log, 3, ms(25)));
        let fps: Vec<u64> = log.entries().iter().map(|e| e.fingerprint).collect();
        assert_eq!(fps, vec![1, 3]);
    }

    #[test]
    fn idle_shapes_decay_out_of_the_top_k() {
        let log = SlowQueryLog::new(4);
        // A slow one-off spike at t=10ms, then steady cheaper traffic.
        offer(&log, 1, ms(10));
        offer(&log, 2, ms(8));
        // Steady shape keeps re-occurring; re-offer refreshes its
        // last_seen even when the occurrence is not slower.
        log.offer(
            2,
            ms(3),
            ms(500).as_nanos() as u64,
            "q",
            String::new,
            String::new,
        );
        assert_eq!(log.len(), 2);
        // One virtual second later, a 100ms idle horizon drops the
        // spike (last seen at 10ms) but keeps the live shape (500ms).
        let decayed = log.decay_idle(ms(550).as_nanos() as u64, ms(100));
        assert_eq!(decayed, 1);
        let fps: Vec<u64> = log.entries().iter().map(|e| e.fingerprint).collect();
        assert_eq!(
            fps,
            vec![2],
            "the idle spike decayed, the live shape stayed"
        );
    }

    #[test]
    fn decay_frees_slots_for_new_admissions() {
        let log = SlowQueryLog::new(2);
        offer(&log, 1, ms(100));
        offer(&log, 2, ms(90));
        // Cheap shape loses while the log is full of (stale) residents.
        assert!(!offer(&log, 3, ms(5)));
        // Both residents go idle and decay; their heap entries are now
        // stale, and `settle` must not let them block admission.
        assert_eq!(log.decay_idle(ms(5_000).as_nanos() as u64, ms(1_000)), 2);
        assert!(log.is_empty());
        assert!(offer(&log, 3, ms(5)), "freed slots re-admit cheap shapes");
        assert_eq!(log.entries()[0].fingerprint, 3);
    }

    #[test]
    fn decay_is_a_no_op_inside_the_horizon() {
        let log = SlowQueryLog::new(4);
        offer(&log, 1, ms(10));
        // Horizon longer than the clock: nothing can be idle yet.
        assert_eq!(log.decay_idle(ms(20).as_nanos() as u64, ms(100)), 0);
        assert_eq!(log.len(), 1);
        // Entry exactly at the horizon boundary survives (>= horizon).
        assert_eq!(log.decay_idle(ms(110).as_nanos() as u64, ms(100)), 0);
        assert_eq!(log.len(), 1);
        // One nanosecond past, it decays.
        assert_eq!(log.decay_idle(ms(110).as_nanos() as u64 + 1, ms(100)), 1);
        assert!(log.is_empty());
    }

    #[test]
    fn rendering_is_lazy_for_rejected_offers() {
        let log = SlowQueryLog::new(1);
        offer(&log, 1, ms(100));
        let rendered = std::cell::Cell::new(false);
        let admitted = log.offer(
            2,
            ms(1),
            0,
            "q",
            || {
                rendered.set(true);
                String::new()
            },
            || {
                rendered.set(true);
                String::new()
            },
        );
        assert!(!admitted);
        assert!(!rendered.get(), "losing offers must not render");
    }
}
