//! Structured JSONL trace export.
//!
//! [`TraceExport`] turns finished span trees and window rollovers into
//! one JSON object per line, written through a [`Sink`]. The query
//! crate performs **no I/O**: the file-backed sink lives in the core
//! crate, and tests use [`VecSink`]. Every field is derived from the
//! virtual clock and a process-local sequence number, so two replays
//! of the same workload export byte-identical streams.

use crate::trace::QueryTrace;
use drugtree_sources::telemetry::WindowSummary;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Destination for exported JSONL lines.
///
/// Implementations append `line` (no trailing newline included) as
/// one record. They must tolerate concurrent calls; ordering between
/// racing writers is the sink's choice.
pub trait Sink: Send + Sync {
    /// Append one line to the export.
    fn write_line(&self, line: &str);
}

/// An in-memory [`Sink`] collecting lines into a `Vec` (tests, and
/// the determinism check in experiment E14).
#[derive(Debug, Default)]
pub struct VecSink(Mutex<Vec<String>>);

impl VecSink {
    /// An empty sink.
    pub fn new() -> VecSink {
        VecSink::default()
    }

    /// Lines written so far.
    pub fn lines(&self) -> Vec<String> {
        self.0.lock().clone()
    }
}

impl Sink for VecSink {
    fn write_line(&self, line: &str) {
        self.0.lock().push(line.to_string());
    }
}

/// One span of an exported query event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Stage label (`"fetch"`, `"overlay"`, …).
    pub stage: String,
    /// Stage detail (source name, `"hit"`/`"miss"`, …).
    pub detail: String,
    /// Virtual cost charged to the stage, in nanoseconds.
    pub actual_ns: u64,
    /// Rows the stage produced (0 when not meaningful).
    pub rows: u64,
}

/// One finished query: the JSONL record emitted per span tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryEvent {
    /// Record discriminator: always `"query"`.
    pub event: String,
    /// Export-order sequence number.
    pub seq: u64,
    /// Query class label.
    pub class: String,
    /// Query text.
    pub query: String,
    /// Plan-shape fingerprint, zero-padded hex.
    pub fingerprint: String,
    /// Virtual clock at query start.
    pub started_ns: u64,
    /// Virtual clock at query end.
    pub ended_ns: u64,
    /// Cost charged to this query alone (its share of coalesced
    /// work), in nanoseconds.
    pub charged_ns: u64,
    /// End-to-end virtual cost, in nanoseconds.
    pub total_ns: u64,
    /// Rows shipped from sources.
    pub rows: u64,
    /// Cache outcome (absent when the plan had no probe).
    pub cache_hit: Option<bool>,
    /// Whether the charged cost breached the class SLO target.
    pub breach: bool,
    /// Child spans, in pipeline order.
    pub spans: Vec<SpanEvent>,
}

/// One closed SLO window: the JSONL record emitted per rollover.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowEvent {
    /// Record discriminator: always `"window"`.
    pub event: String,
    /// Export-order sequence number.
    pub seq: u64,
    /// Window scope: `"class:<label>"` or `"session:<id>"`.
    pub scope: String,
    /// Window index (`start_ns / width`).
    pub index: u64,
    /// Window open, virtual nanoseconds.
    pub start_ns: u64,
    /// Window close (exclusive), virtual nanoseconds.
    pub end_ns: u64,
    /// Records folded into the window.
    pub count: u64,
    /// Interpolated median, nanoseconds (rounded).
    pub p50_ns: u64,
    /// Interpolated p95, nanoseconds (rounded).
    pub p95_ns: u64,
    /// Interpolated p99, nanoseconds (rounded).
    pub p99_ns: u64,
    /// Window maximum, nanoseconds.
    pub max_ns: u64,
    /// Cumulative SLO breaches for the scope at rollover time.
    pub breaches: u64,
}

/// One per-class serving rollup: the JSONL record the fleet scheduler
/// emits at the end of a run, one line per query class that saw
/// traffic. `drugtree top` folds these into its shed/hedge/deadline
/// columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeEvent {
    /// Record discriminator: always `"serve"`.
    pub event: String,
    /// Export-order sequence number.
    pub seq: u64,
    /// Query class label.
    pub class: String,
    /// Queries admitted for this class (executed or joined a flight).
    pub admitted: u64,
    /// Queries shed by admission control before execution.
    pub shed: u64,
    /// Queries that trained a hedge against a replica.
    pub hedged: u64,
    /// Hedges whose replica bound actually improved the latency.
    pub hedges_won: u64,
    /// Queries that missed their per-class deadline (timed out or
    /// finished past it).
    pub deadline_missed: u64,
    /// Queries degraded to partial results by a source outage.
    pub outages: u64,
}

/// One adaptation decision: the JSONL record the self-driving layer
/// emits whenever a feedback loop fires (applies, reverts, or evicts
/// an adaptation). `drugtree advisor` folds these into its report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptEvent {
    /// Record discriminator: always `"adapt"`.
    pub event: String,
    /// Export-order sequence number.
    pub seq: u64,
    /// Virtual clock at decision time, nanoseconds.
    pub at_ns: u64,
    /// Which feedback loop fired: `"learned-stats"`, `"matview"`, or
    /// `"prefetch"`. (Named `loop_name` in the JSON too — the vendored
    /// serde stand-in has no rename support, and `loop` is reserved.)
    pub loop_name: String,
    /// What happened: `"apply"`, `"revert"`, or `"evict"`.
    pub action: String,
    /// What was adapted (a plan shape, a column, a session id).
    pub subject: String,
    /// Why the loop fired (break-even crossed, regret threshold, …).
    pub reason: String,
    /// Measured state before the adaptation, nanoseconds (0 when not
    /// meaningful for the loop).
    pub before_ns: u64,
    /// Measured (or projected) state after, nanoseconds.
    pub after_ns: u64,
}

/// JSONL writer for the observability event stream.
///
/// Sequence numbers are assigned at emit time, so a single-threaded
/// replay exports a byte-identical stream; under concurrent serving
/// the interleaving (only) follows thread scheduling.
pub struct TraceExport {
    sink: Arc<dyn Sink>,
    seq: AtomicU64,
}

impl std::fmt::Debug for TraceExport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceExport")
            .field("seq", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl TraceExport {
    /// An exporter writing to `sink`.
    pub fn new(sink: Arc<dyn Sink>) -> TraceExport {
        TraceExport {
            sink,
            seq: AtomicU64::new(0),
        }
    }

    /// Events emitted so far.
    pub fn emitted(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Emit one `query` record for a finished trace.
    pub fn emit_query(&self, trace: &QueryTrace, breach: bool) {
        let spans = trace
            .root
            .children
            .iter()
            .map(|s| SpanEvent {
                stage: s.stage.label().to_string(),
                detail: s.detail.clone(),
                actual_ns: nanos(s.actual),
                rows: s.rows.unwrap_or(0),
            })
            .collect();
        let record = QueryEvent {
            event: "query".to_string(),
            seq: self.next_seq(),
            class: trace.class.label().to_string(),
            query: trace.query.clone(),
            fingerprint: format!("{:016x}", trace.fingerprint),
            started_ns: trace.root.started.0,
            ended_ns: trace.root.ended.0,
            charged_ns: nanos(trace.access_cost),
            total_ns: nanos(trace.root.actual),
            rows: trace.rows_fetched,
            cache_hit: trace.cache_hit,
            breach,
            spans,
        };
        if let Ok(line) = serde_json::to_string(&record) {
            self.sink.write_line(&line);
        }
    }

    /// Emit one `window` record for a closed window.
    pub fn emit_window(&self, scope: &str, window: &WindowSummary, breaches: u64) {
        let record = WindowEvent {
            event: "window".to_string(),
            seq: self.next_seq(),
            scope: scope.to_string(),
            index: window.index,
            start_ns: window.start_ns,
            end_ns: window.end_ns,
            count: window.count,
            p50_ns: window.p50.round() as u64,
            p95_ns: window.p95.round() as u64,
            p99_ns: window.p99.round() as u64,
            max_ns: window.max,
            breaches,
        };
        if let Ok(line) = serde_json::to_string(&record) {
            self.sink.write_line(&line);
        }
    }

    /// Emit one `adapt` record: a self-driving-layer decision (apply /
    /// revert / evict) with its measured before/after state.
    pub fn emit_adapt(&self, event: &AdaptDecision) {
        let record = AdaptEvent {
            event: "adapt".to_string(),
            seq: self.next_seq(),
            at_ns: event.at_ns,
            loop_name: event.loop_name.clone(),
            action: event.action.clone(),
            subject: event.subject.clone(),
            reason: event.reason.clone(),
            before_ns: event.before_ns,
            after_ns: event.after_ns,
        };
        if let Ok(line) = serde_json::to_string(&record) {
            self.sink.write_line(&line);
        }
    }

    /// Emit one `serve` record: a per-class rollup of the fleet
    /// scheduler's shed/hedge/deadline/outage counters.
    pub fn emit_serve(&self, counters: &ServeClassCounters) {
        let record = ServeEvent {
            event: "serve".to_string(),
            seq: self.next_seq(),
            class: counters.class.clone(),
            admitted: counters.admitted,
            shed: counters.shed,
            hedged: counters.hedged,
            hedges_won: counters.hedges_won,
            deadline_missed: counters.deadline_missed,
            outages: counters.outages,
        };
        if let Ok(line) = serde_json::to_string(&record) {
            self.sink.write_line(&line);
        }
    }
}

/// The adaptive-layer decision bundle [`TraceExport::emit_adapt`]
/// serializes; owned by `crate::adaptive`, defined here so the export
/// layer stays the single place JSONL schemas live.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdaptDecision {
    /// Virtual clock at decision time, nanoseconds.
    pub at_ns: u64,
    /// Feedback loop name (`"learned-stats"`, `"matview"`,
    /// `"prefetch"`).
    pub loop_name: String,
    /// `"apply"`, `"revert"`, or `"evict"`.
    pub action: String,
    /// What was adapted.
    pub subject: String,
    /// Why the loop fired.
    pub reason: String,
    /// Measured state before, nanoseconds.
    pub before_ns: u64,
    /// Measured (or projected) state after, nanoseconds.
    pub after_ns: u64,
}

/// The scheduler-side counter bundle [`TraceExport::emit_serve`]
/// serializes; owned by the core crate's fleet scheduler, defined here
/// so the export layer need not depend on it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeClassCounters {
    /// Query class label.
    pub class: String,
    /// Queries admitted for this class.
    pub admitted: u64,
    /// Queries shed by admission control.
    pub shed: u64,
    /// Queries that armed a hedge.
    pub hedged: u64,
    /// Hedges that improved latency.
    pub hedges_won: u64,
    /// Deadline misses (hard timeouts plus soft overruns).
    pub deadline_missed: u64,
    /// Outage-degraded queries.
    pub outages: u64,
}

fn nanos(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::QueryClass;
    use crate::trace::{QuerySpan, Stage};
    use drugtree_sources::clock::VirtualInstant;
    use std::time::Duration;

    fn trace() -> QueryTrace {
        let mut root = QuerySpan::new(Stage::Query, "", VirtualInstant(1_000));
        root.ended = VirtualInstant(13_000_000);
        root.actual = Duration::from_millis(12);
        let mut fetch = QuerySpan::new(Stage::Fetch, "assay-sim", VirtualInstant(2_000));
        fetch.actual = Duration::from_millis(11);
        fetch.rows = Some(3);
        root.children.push(fetch);
        QueryTrace {
            query: "activities in tree".into(),
            root,
            access_cost: Duration::from_millis(11),
            rows_fetched: 3,
            cache_hit: Some(false),
            class: QueryClass::Listing,
            fingerprint: 0xabc,
        }
    }

    fn exporter() -> (TraceExport, Arc<VecSink>) {
        let sink = Arc::new(VecSink::new());
        (TraceExport::new(Arc::clone(&sink) as Arc<dyn Sink>), sink)
    }

    #[test]
    fn query_events_round_trip_and_replay_identically() {
        let t = trace();
        let emit = |t: &QueryTrace| {
            let (export, sink) = exporter();
            export.emit_query(t, true);
            assert_eq!(export.emitted(), 1);
            sink.lines()
        };
        let lines1 = emit(&t);
        let lines2 = emit(&t);
        assert_eq!(lines1, lines2, "same trace exports identical bytes");
        assert_eq!(lines1.len(), 1);
        let parsed: QueryEvent = serde_json::from_str(&lines1[0]).unwrap();
        assert_eq!(parsed.event, "query");
        assert_eq!(parsed.seq, 0);
        assert_eq!(parsed.class, "listing");
        assert_eq!(parsed.fingerprint, "0000000000000abc");
        assert_eq!(parsed.charged_ns, 11_000_000);
        assert_eq!(parsed.started_ns, 1_000);
        assert!(parsed.breach);
        assert_eq!(parsed.spans.len(), 1);
        assert_eq!(parsed.spans[0].stage, "fetch");
        assert_eq!(parsed.spans[0].rows, 3);
    }

    #[test]
    fn serve_events_round_trip() {
        let (export, sink) = exporter();
        export.emit_serve(&ServeClassCounters {
            class: "listing".into(),
            admitted: 90,
            shed: 10,
            hedged: 4,
            hedges_won: 3,
            deadline_missed: 2,
            outages: 1,
        });
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"event\":\"serve\""));
        let parsed: ServeEvent = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(parsed.class, "listing");
        assert_eq!(parsed.shed, 10);
        assert_eq!(parsed.hedged, 4);
        assert_eq!(parsed.hedges_won, 3);
        assert_eq!(parsed.deadline_missed, 2);
        assert_eq!(parsed.outages, 1);
    }

    #[test]
    fn adapt_events_round_trip() {
        let (export, sink) = exporter();
        export.emit_adapt(&AdaptDecision {
            at_ns: 42_000,
            loop_name: "matview".into(),
            action: "apply".into(),
            subject: "aggregate(count)".into(),
            reason: "break-even crossed".into(),
            before_ns: 9_000_000,
            after_ns: 12_000,
        });
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"event\":\"adapt\""));
        assert!(
            lines[0].contains("\"loop_name\":\"matview\""),
            "{}",
            lines[0]
        );
        let parsed: AdaptEvent = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(parsed.loop_name, "matview");
        assert_eq!(parsed.action, "apply");
        assert_eq!(parsed.before_ns, 9_000_000);
        assert_eq!(parsed.after_ns, 12_000);
        assert_eq!(export.emitted(), 1);
    }

    #[test]
    fn window_events_round_trip() {
        let (export, sink) = exporter();
        let summary = WindowSummary {
            index: 2,
            start_ns: 2_000_000_000,
            end_ns: 3_000_000_000,
            count: 7,
            p50: 10.4,
            p95: 99.6,
            p99: 100.0,
            max: 120,
        };
        export.emit_window("class:listing", &summary, 3);
        let lines = sink.lines();
        assert_eq!(lines.len(), 1);
        let parsed: WindowEvent = serde_json::from_str(&lines[0]).unwrap();
        assert_eq!(parsed.scope, "class:listing");
        assert_eq!(parsed.p50_ns, 10, "rounded");
        assert_eq!(parsed.p95_ns, 100, "rounded");
        assert_eq!(parsed.breaches, 3);
        assert_eq!(export.emitted(), 1);
    }
}
