//! Continuous fleet observability (design decision D10).
//!
//! Layered on the per-query tracing of design decision D9, this
//! module keeps *always-on, bounded-cost* state about the whole
//! serving fleet:
//!
//! * [`window`] — rolling SLO windows per [`QueryClass`] and per
//!   serving session, with breach counters against an [`SloPolicy`].
//! * [`slowlog`] — a top-K slow-query log keyed by plan fingerprint,
//!   deduplicating repeated shapes into one entry with an occurrence
//!   count and the `EXPLAIN ANALYZE` rendering of the slowest run.
//! * [`export`] — deterministic JSONL export of query and window
//!   events behind a [`Sink`] trait (no I/O in this crate; the core
//!   crate provides the file sink and the `drugtree top` report).
//!
//! [`FleetObserver`] composes the three behind the [`Observer`] hook,
//! so installing fleet observability is one
//! `DrugTreeBuilder::with_observer` call. Everything runs on the
//! virtual clock: replaying a workload reproduces every window
//! boundary, breach count, and exported byte.

pub mod export;
pub mod slowlog;
pub mod window;

pub use export::{
    AdaptDecision, AdaptEvent, QueryEvent, ServeClassCounters, ServeEvent, Sink, SpanEvent,
    TraceExport, VecSink, WindowEvent,
};
pub use slowlog::{SlowLogEntry, SlowQueryLog};
pub use window::{QueryClass, RollingWindows, SloPolicy, WindowSummary};

use crate::plan::{Access, FetchPlan, Finish, PhysicalPlan};
use crate::trace::{render_analyzed, GestureObservation, Observer, QueryTrace};
use drugtree_sources::telemetry::{FixedHistogram, HistogramSnapshot};
use drugtree_store::expr::Predicate;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Stable 64-bit fingerprint of a plan's logical *shape*: what the
/// plan does, with every predicate constant stripped. Two plans that
/// differ only in literals (`p_activity >= 6` vs `>= 7`), key lists,
/// or scope intervals share a fingerprint, so the slow-query log and
/// `drugtree top` aggregate them as one workload shape.
pub fn plan_fingerprint(plan: &PhysicalPlan) -> u64 {
    fnv1a(plan_shape(plan).as_bytes())
}

/// The canonical shape string behind [`plan_fingerprint`] — also the
/// human-readable `shape` column of slow-query-log entries.
pub fn plan_shape(plan: &PhysicalPlan) -> String {
    let mut s = String::new();
    match &plan.access {
        Access::CacheProbe {
            pushdown,
            on_miss,
            insert_on_miss,
            concurrent_sources,
        } => {
            let _ = write!(
                s,
                "cache-probe(pushdown={}, insert={insert_on_miss}, concurrent={concurrent_sources}, miss=[{}])",
                pred_shape_opt(pushdown),
                join_fetches(on_miss),
            );
        }
        Access::Fetch {
            fetches,
            concurrent_sources,
        } => {
            let _ = write!(
                s,
                "fetch(concurrent={concurrent_sources}, [{}])",
                join_fetches(fetches)
            );
        }
        Access::ColumnarScan { pushdown } => {
            let _ = write!(s, "columnar-scan(pushdown={})", pred_shape_opt(pushdown));
        }
        Access::MaterializedView => s.push_str("matview"),
        Access::ProvedEmpty => s.push_str("proved-empty"),
    }
    let _ = write!(s, " residual={}", pred_shape(&plan.residual));
    if plan.ligand_join {
        s.push_str(" ligand-join");
    }
    if plan.similarity.is_some() {
        s.push_str(" similarity");
    }
    if plan.substructure.is_some() {
        s.push_str(" substructure");
    }
    match &plan.finish {
        Finish::Collect => s.push_str(" finish=collect"),
        Finish::TopK {
            column, descending, ..
        } => {
            let _ = write!(
                s,
                " finish=top-k(col{column},{})",
                if *descending { "desc" } else { "asc" }
            );
        }
        Finish::AggregateChildren { metric, .. } => {
            let _ = write!(s, " finish=aggregate({})", metric.label());
        }
        Finish::CountPerLeaf => s.push_str(" finish=count-per-leaf"),
    }
    s
}

fn join_fetches(fetches: &[FetchPlan]) -> String {
    let parts: Vec<String> = fetches.iter().map(fetch_shape).collect();
    parts.join(", ")
}

fn fetch_shape(f: &FetchPlan) -> String {
    format!(
        "{}(pushdown={}, batched={}, concurrent={})",
        f.source,
        pred_shape_opt(&f.pushdown),
        f.batched,
        f.concurrent
    )
}

fn pred_shape_opt(p: &Option<Predicate>) -> String {
    match p {
        Some(p) => pred_shape(p),
        None => "-".to_string(),
    }
}

/// Predicate shape: columns and operators with every literal replaced
/// by `?`.
fn pred_shape(p: &Predicate) -> String {
    match p {
        Predicate::True => "true".into(),
        Predicate::Compare { column, op, .. } => format!("{column} {} ?", op.symbol()),
        Predicate::Between { column, .. } => format!("{column} between ? and ?"),
        Predicate::InSet { column, .. } => format!("{column} in (?)"),
        Predicate::IsNull { column } => format!("{column} is null"),
        Predicate::And(ps) => {
            let parts: Vec<String> = ps.iter().map(pred_shape).collect();
            format!("({})", parts.join(" and "))
        }
        Predicate::Or(ps) => {
            let parts: Vec<String> = ps.iter().map(pred_shape).collect();
            format!("({})", parts.join(" or "))
        }
        Predicate::Not(inner) => format!("not {}", pred_shape(inner)),
    }
}

/// FNV-1a, 64-bit: stable across platforms and runs, cheap enough to
/// hash every planned query.
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The composed fleet observer: rolling SLO windows + slow-query log
/// + JSONL export behind one [`Observer`].
///
/// Configure with the `with_*` methods before installing (the
/// executor takes it as an `Arc<dyn Observer>`); read any accessor at
/// any time after. Components are opt-in — a `FleetObserver::new()`
/// keeps only the windows, and [`Observer::wants_plan`] returns true
/// only when a slow-query log (which renders `EXPLAIN ANALYZE`) is
/// attached, so plan cloning is never paid for nothing.
#[derive(Debug)]
pub struct FleetObserver {
    windows: RollingWindows,
    slowlog: Option<SlowQueryLog>,
    export: Option<TraceExport>,
    cumulative: [FixedHistogram; QueryClass::ALL.len()],
}

impl Default for FleetObserver {
    fn default() -> Self {
        FleetObserver::new()
    }
}

impl FleetObserver {
    /// Default observer: 1-second windows, a ring of 8 summaries per
    /// scope, the default [`SloPolicy`], no slow-query log, no export.
    pub fn new() -> FleetObserver {
        FleetObserver::with_windows(Duration::from_secs(1), 8, SloPolicy::default())
    }

    /// An observer with explicit window width, ring size, and policy.
    pub fn with_windows(width: Duration, ring: usize, policy: SloPolicy) -> FleetObserver {
        FleetObserver {
            windows: RollingWindows::new(width, ring, policy),
            slowlog: None,
            export: None,
            cumulative: std::array::from_fn(|_| RollingWindows::cumulative_histogram()),
        }
    }

    /// Attach a slow-query log retaining the `k` slowest plan shapes.
    pub fn with_slowlog(mut self, k: usize) -> FleetObserver {
        self.slowlog = Some(SlowQueryLog::new(k));
        self
    }

    /// Attach a JSONL exporter writing to `sink`.
    pub fn with_export(mut self, sink: Arc<dyn Sink>) -> FleetObserver {
        self.export = Some(TraceExport::new(sink));
        self
    }

    /// The rolling windows.
    pub fn windows(&self) -> &RollingWindows {
        &self.windows
    }

    /// The slow-query log, if attached.
    pub fn slowlog(&self) -> Option<&SlowQueryLog> {
        self.slowlog.as_ref()
    }

    /// The exporter, if attached.
    pub fn export(&self) -> Option<&TraceExport> {
        self.export.as_ref()
    }

    /// Whole-run charged-latency distribution for a class (all
    /// windows folded together).
    pub fn class_snapshot(&self, class: QueryClass) -> HistogramSnapshot {
        self.cumulative[class.index()].snapshot()
    }

    fn fold_query(&self, trace: &QueryTrace) -> bool {
        let class = trace.class;
        let charged = trace.access_cost;
        let at_ns = trace.root.ended.0;
        let breach = charged > self.windows.policy().target(class);
        self.cumulative[class.index()].record_duration(charged);
        let closed = self.windows.record_query(class, at_ns, charged);
        if let Some(export) = &self.export {
            let scope = format!("class:{}", class.label());
            for summary in &closed {
                export.emit_window(&scope, summary, self.windows.class_breaches(class));
            }
            export.emit_query(trace, breach);
        }
        breach
    }
}

impl Observer for FleetObserver {
    fn on_query(&self, trace: &QueryTrace) {
        self.fold_query(trace);
    }

    fn wants_plan(&self) -> bool {
        self.slowlog.is_some()
    }

    fn on_query_planned(&self, trace: &QueryTrace, plan: &PhysicalPlan) {
        self.fold_query(trace);
        if let Some(log) = &self.slowlog {
            log.offer(
                trace.fingerprint,
                trace.access_cost,
                trace.root.ended.0,
                &trace.query,
                || plan_shape(plan),
                || render_analyzed(plan, trace),
            );
        }
    }

    fn on_gesture(&self, gesture: &GestureObservation) {
        let Some(session) = gesture.session else {
            return;
        };
        let closed = self
            .windows
            .record_session(session, gesture.at.0, gesture.charged);
        if let Some(export) = &self.export {
            let scope = format!("session:{session}");
            for summary in &closed {
                export.emit_window(&scope, summary, self.windows.session_breaches(session));
            }
        }
    }

    fn on_serve_rollup(&self, counters: &ServeClassCounters) {
        if let Some(export) = &self.export {
            export.emit_serve(counters);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_fixtures::small_dataset;
    use crate::exec::Executor;
    use crate::optimizer::{Optimizer, OptimizerConfig};
    use crate::parser::parse_query;
    use drugtree_sources::source::SourceCapabilities;

    fn run_fleet(observer: Arc<FleetObserver>) {
        let dataset = small_dataset(SourceCapabilities::full());
        let mut executor = Executor::new(Optimizer::new(OptimizerConfig::full()));
        executor.set_observer(Arc::clone(&observer) as Arc<dyn Observer>);
        for text in [
            "activities in tree",
            "activities in tree where p_activity >= 6",
            "activities in tree where p_activity >= 7",
            "activities in tree top 3 by p_activity",
        ] {
            let query = parse_query(text).unwrap();
            executor.execute(&dataset, &query).unwrap();
        }
    }

    #[test]
    fn fingerprints_strip_constants_but_not_shape() {
        let dataset = small_dataset(SourceCapabilities::full());
        let executor = Executor::new(Optimizer::new(OptimizerConfig::full()));
        let fp = |text: &str| {
            let query = parse_query(text).unwrap();
            let analyzed = executor.analyze(&dataset, &query).unwrap();
            (plan_fingerprint(&analyzed.plan), plan_shape(&analyzed.plan))
        };
        let (fp6, shape6) = fp("activities in tree where p_activity >= 6");
        let (fp7, shape7) = fp("activities in tree where p_activity >= 7");
        assert_eq!(fp6, fp7, "literals are stripped: same shape");
        assert_eq!(shape6, shape7);
        assert!(!shape6.contains('6'), "no literal in the shape: {shape6}");
        let (fp_plain, _) = fp("activities in tree");
        assert_ne!(fp6, fp_plain, "the predicate's shape still matters");
        let (fp_lt, _) = fp("activities in tree where p_activity < 6");
        assert_ne!(fp6, fp_lt, "the operator is part of the shape");
    }

    #[test]
    fn fnv1a_matches_published_vectors() {
        // Pinned against Noll's published FNV-1a 64 test vectors: the
        // fingerprint is persisted in exports and compared across
        // builds, so the function may never drift.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
        // One-byte edits move the hash — the slowlog keys on it.
        assert_ne!(fnv1a(b"shape"), fnv1a(b"shapf"));
    }

    #[test]
    fn constant_stripped_shapes_collide_and_distinct_shapes_do_not() {
        let dataset = small_dataset(SourceCapabilities::full());
        let executor = Executor::new(Optimizer::new(OptimizerConfig::full()));
        let fp = |text: &str| {
            let query = parse_query(text).unwrap();
            plan_fingerprint(&executor.analyze(&dataset, &query).unwrap().plan)
        };
        // Collisions are the point: every class of stripped constant —
        // comparison literals, disjunction literals, key lists — folds
        // into one workload shape.
        assert_eq!(
            fp("activities in tree where p_activity >= 6"),
            fp("activities in tree where p_activity >= 7"),
        );
        assert_eq!(
            fp("activities where (year = 2010 or year = 2012) and mw < 500"),
            fp("activities where (year = 2011 or year = 2013) and mw < 900"),
        );
        assert_eq!(
            fp("activities in leaves('P1', 'P2')"),
            fp("activities in leaves('P3')"),
        );
        // Structurally distinct plans must not fold together: collide
        // here and `drugtree top` blames the wrong workload.
        let corpus = [
            "activities in tree",
            "activities in tree where p_activity >= 6",
            "activities in tree where p_activity < 6",
            "activities in tree top 3 by p_activity",
            "count per leaf in tree",
        ];
        let prints: Vec<u64> = corpus.iter().map(|q| fp(q)).collect();
        for i in 0..prints.len() {
            for j in (i + 1)..prints.len() {
                assert_ne!(
                    prints[i], prints[j],
                    "{:?} and {:?} must not share a fingerprint",
                    corpus[i], corpus[j]
                );
            }
        }
    }

    #[test]
    fn fingerprints_are_byte_identical_across_fresh_replays() {
        let replay = || -> Vec<u64> {
            let dataset = small_dataset(SourceCapabilities::full());
            let executor = Executor::new(Optimizer::new(OptimizerConfig::full()));
            [
                "activities in tree",
                "activities in tree where p_activity >= 6",
                "activities in tree top 3 by p_activity",
                "count per leaf in tree",
            ]
            .iter()
            .map(|text| {
                let query = parse_query(text).unwrap();
                plan_fingerprint(&executor.analyze(&dataset, &query).unwrap().plan)
            })
            .collect()
        };
        // Nothing run-dependent (addresses, hash seeds, iteration
        // order) may leak into the fingerprint: replay tooling joins
        // exports from different processes on it.
        assert_eq!(replay(), replay());
    }

    #[test]
    fn fleet_observer_folds_classes_and_slowlog() {
        let observer = Arc::new(FleetObserver::new().with_slowlog(8));
        run_fleet(Arc::clone(&observer));
        assert_eq!(
            observer.class_snapshot(QueryClass::Listing).count,
            1,
            "one bare listing"
        );
        assert_eq!(observer.class_snapshot(QueryClass::Filtered).count, 2);
        assert_eq!(observer.class_snapshot(QueryClass::TopK).count, 1);
        let log = observer.slowlog().unwrap();
        let entries = log.entries();
        assert!(!entries.is_empty());
        // The two filtered listings share a fingerprint: one entry
        // counts both occurrences.
        let filtered = entries
            .iter()
            .find(|e| e.query.contains("p_activity >="))
            .unwrap();
        assert_eq!(filtered.count, 2);
        assert!(
            filtered.rendering.contains("Trace:"),
            "slowlog holds the EXPLAIN ANALYZE rendering"
        );
    }

    #[test]
    fn export_streams_are_deterministic_across_replays() {
        let run = || {
            let sink = Arc::new(VecSink::new());
            let observer = Arc::new(
                FleetObserver::new()
                    .with_slowlog(4)
                    .with_export(Arc::clone(&sink) as Arc<dyn Sink>),
            );
            run_fleet(observer);
            sink.lines()
        };
        let first = run();
        let second = run();
        assert!(!first.is_empty());
        assert_eq!(first, second, "byte-identical replay");
        for line in &first {
            assert!(
                line.starts_with("{\"event\":\"query\"")
                    || line.starts_with("{\"event\":\"window\"")
            );
        }
    }

    #[test]
    fn gestures_attribute_to_sessions() {
        use drugtree_sources::clock::VirtualInstant;
        let observer = FleetObserver::new();
        observer.on_gesture(&GestureObservation {
            gesture: "expand",
            rows: 1,
            compute: Duration::from_millis(5),
            network: Duration::from_millis(400),
            payload_bytes: 100,
            cache_hit: None,
            session: Some(4),
            charged: Duration::from_millis(405),
            at: VirtualInstant(1_000),
        });
        // Standalone gestures (no session id) are ignored by windows.
        observer.on_gesture(&GestureObservation {
            gesture: "pan",
            rows: 0,
            compute: Duration::ZERO,
            network: Duration::from_millis(10),
            payload_bytes: 10,
            cache_hit: None,
            session: None,
            charged: Duration::from_millis(10),
            at: VirtualInstant(2_000),
        });
        assert_eq!(observer.windows().session_ids(), vec![4]);
        assert_eq!(observer.windows().session_breaches(4), 1, "405ms > 250ms");
    }
}
