//! The DrugTree text query language.
//!
//! ```text
//! activities in subtree('cladeA') where p_activity >= 6.5 and mw < 500
//!     top 20 by p_activity desc
//! activities in tree where ligand_id in ('L1', 'L2')
//! activities in leaves('P1', 'P3') similar to 'CCO' >= 0.6
//! activities in tree containing 'c1ccccc1' where p_activity >= 6
//! aggregate max_p_activity in subtree('cladeB')
//! count per leaf in tree where year >= 2010
//! ```
//!
//! Grammar (keywords case-insensitive; strings single-quoted):
//!
//! ```text
//! query    := kind scope? where? containing? similar? top?
//! kind     := 'activities' | 'aggregate' metric | 'count' 'per' 'leaf'
//! metric   := 'count' | 'distinct_ligands' | 'max_p_activity' | 'mean_p_activity'
//! scope    := 'in' ('tree' | 'subtree' '(' string ')' | 'leaves' '(' string (',' string)* ')')
//! where    := 'where' or_expr
//! or_expr  := and_expr ('or' and_expr)*
//! and_expr := atom ('and' atom)*
//! atom     := '(' or_expr ')' | 'not' atom | 'true' | 'false'
//!           | ident cmp literal
//!           | ident 'between' literal 'and' literal
//!           | ident 'in' '(' literal (',' literal)* ')'
//!           | ident 'is' 'null'
//! containing := 'containing' string
//! similar  := 'similar' 'to' string ('>=' number)?
//! top      := 'top' int ('by' ident)? ('asc' | 'desc')?
//! ```

use crate::ast::{Metric, Query, QueryKind, Scope, SimilaritySpec};
use crate::{QueryError, Result};
use drugtree_store::expr::{CompareOp, Predicate};
use drugtree_store::value::Value;

/// Parse query text into a [`Query`].
pub fn parse_query(text: &str) -> Result<Query> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.parse_query()?;
    if p.pos != p.tokens.len() {
        return Err(p.err("unexpected trailing input"));
    }
    Ok(q)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Num(f64),
    Int(i64),
    Sym(&'static str),
}

fn tokenize(text: &str) -> Result<Vec<(usize, Token)>> {
    let bytes = text.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match b {
            b'\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(b'\'') => {
                            i += 1;
                            if bytes.get(i) == Some(&b'\'') {
                                s.push('\'');
                                i += 1;
                            } else {
                                break;
                            }
                        }
                        Some(_) => {
                            let rest = &text[i..];
                            let Some(ch) = rest.chars().next() else {
                                return Err(QueryError::Parse {
                                    offset: start,
                                    message: "unterminated string".into(),
                                });
                            };
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                        None => {
                            return Err(QueryError::Parse {
                                offset: start,
                                message: "unterminated string".into(),
                            })
                        }
                    }
                }
                out.push((start, Token::Str(s)));
            }
            b'(' | b')' | b',' => {
                i += 1;
                out.push((
                    start,
                    Token::Sym(match b {
                        b'(' => "(",
                        b')' => ")",
                        _ => ",",
                    }),
                ));
            }
            b'<' | b'>' | b'=' | b'!' => {
                let two = bytes.get(i + 1) == Some(&b'=');
                let sym = match (b, two) {
                    (b'<', true) => "<=",
                    (b'<', false) => "<",
                    (b'>', true) => ">=",
                    (b'>', false) => ">",
                    (b'=', _) => "=",
                    (b'!', true) => "!=",
                    (b'!', false) => {
                        return Err(QueryError::Parse {
                            offset: start,
                            message: "expected '=' after '!'".into(),
                        })
                    }
                    _ => unreachable!(),
                };
                i += sym.len();
                out.push((start, Token::Sym(sym)));
            }
            b'0'..=b'9' | b'-' | b'.' => {
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || matches!(bytes[i], b'.' | b'e' | b'E')
                        || (matches!(bytes[i], b'+' | b'-') && matches!(bytes[i - 1], b'e' | b'E')))
                {
                    i += 1;
                }
                let lit = &text[start..i];
                if let Ok(v) = lit.parse::<i64>() {
                    out.push((start, Token::Int(v)));
                } else if let Ok(v) = lit.parse::<f64>() {
                    out.push((start, Token::Num(v)));
                } else {
                    return Err(QueryError::Parse {
                        offset: start,
                        message: format!("invalid number {lit:?}"),
                    });
                }
            }
            b if b.is_ascii_alphabetic() || b == b'_' => {
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push((start, Token::Ident(text[start..i].to_ascii_lowercase())));
            }
            other => {
                return Err(QueryError::Parse {
                    offset: start,
                    message: format!("unexpected character {:?}", other as char),
                })
            }
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<(usize, Token)>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> QueryError {
        let offset = self.tokens.get(self.pos).map_or(usize::MAX, |(o, _)| *o);
        QueryError::Parse {
            offset,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw:?}")))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Some(Token::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> Result<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(self.err(format!("expected {sym:?}")))
        }
    }

    fn expect_string(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Str(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected quoted string"))
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn parse_query(&mut self) -> Result<Query> {
        let kind = if self.eat_kw("activities") {
            QueryKind::Activities
        } else if self.eat_kw("aggregate") {
            let metric = self.expect_ident()?;
            let metric = match metric.as_str() {
                "count" => Metric::Count,
                "distinct_ligands" => Metric::DistinctLigands,
                "max_p_activity" => Metric::MaxPActivity,
                "mean_p_activity" => Metric::MeanPActivity,
                other => return Err(self.err(format!("unknown metric {other:?}"))),
            };
            QueryKind::AggregateChildren { metric }
        } else if self.eat_kw("count") {
            self.expect_kw("per")?;
            self.expect_kw("leaf")?;
            QueryKind::CountPerLeaf
        } else {
            return Err(self.err("expected 'activities', 'aggregate', or 'count per leaf'"));
        };

        let scope = if self.eat_kw("in") {
            if self.eat_kw("tree") {
                Scope::Tree
            } else if self.eat_kw("subtree") {
                self.expect_sym("(")?;
                let label = self.expect_string()?;
                self.expect_sym(")")?;
                Scope::Subtree(label)
            } else if self.eat_kw("leaves") {
                self.expect_sym("(")?;
                let mut labels = vec![self.expect_string()?];
                while self.eat_sym(",") {
                    labels.push(self.expect_string()?);
                }
                self.expect_sym(")")?;
                Scope::Leaves(labels)
            } else {
                return Err(self.err("expected 'tree', 'subtree(..)', or 'leaves(..)'"));
            }
        } else {
            Scope::Tree
        };

        let predicate = if self.eat_kw("where") {
            self.parse_or()?
        } else {
            Predicate::True
        };

        let substructure = if self.eat_kw("containing") {
            Some(self.expect_string()?)
        } else {
            None
        };

        let similarity = if self.eat_kw("similar") {
            self.expect_kw("to")?;
            let reference = self.expect_string()?;
            let min_tanimoto = if self.eat_sym(">=") {
                match self.next() {
                    Some(Token::Num(v)) => v,
                    Some(Token::Int(v)) => v as f64,
                    _ => return Err(self.err("expected similarity threshold")),
                }
            } else {
                0.7
            };
            Some(SimilaritySpec {
                reference,
                min_tanimoto,
            })
        } else {
            None
        };

        let kind = if self.eat_kw("top") {
            let k = match self.next() {
                Some(Token::Int(v)) if v > 0 => v as usize,
                _ => return Err(self.err("expected positive integer after 'top'")),
            };
            let by = if self.eat_kw("by") {
                self.expect_ident()?
            } else {
                "p_activity".to_string()
            };
            let descending = if self.eat_kw("asc") {
                false
            } else {
                self.eat_kw("desc");
                true
            };
            if !matches!(kind, QueryKind::Activities) {
                return Err(self.err("'top' applies only to 'activities' queries"));
            }
            QueryKind::TopK { by, k, descending }
        } else {
            kind
        };

        Ok(Query {
            scope,
            predicate,
            similarity,
            substructure,
            kind,
        })
    }

    fn parse_or(&mut self) -> Result<Predicate> {
        let mut parts = vec![self.parse_and()?];
        while self.eat_kw("or") {
            parts.push(self.parse_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap_or(Predicate::True)
        } else {
            Predicate::Or(parts)
        })
    }

    fn parse_and(&mut self) -> Result<Predicate> {
        let mut parts = vec![self.parse_atom()?];
        while self.eat_kw("and") {
            parts.push(self.parse_atom()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap_or(Predicate::True)
        } else {
            Predicate::And(parts)
        })
    }

    fn parse_atom(&mut self) -> Result<Predicate> {
        if self.eat_sym("(") {
            let inner = self.parse_or()?;
            self.expect_sym(")")?;
            return Ok(inner);
        }
        if self.eat_kw("not") {
            return Ok(Predicate::Not(Box::new(self.parse_atom()?)));
        }
        if self.eat_kw("true") {
            return Ok(Predicate::True);
        }
        if self.eat_kw("false") {
            return Ok(Predicate::Not(Box::new(Predicate::True)));
        }
        let column = self.expect_ident()?;
        if self.eat_kw("between") {
            let lo = self.parse_literal()?;
            self.expect_kw("and")?;
            let hi = self.parse_literal()?;
            return Ok(Predicate::Between { column, lo, hi });
        }
        if self.eat_kw("in") {
            self.expect_sym("(")?;
            let mut values = vec![self.parse_literal()?];
            while self.eat_sym(",") {
                values.push(self.parse_literal()?);
            }
            self.expect_sym(")")?;
            return Ok(Predicate::InSet { column, values });
        }
        if self.eat_kw("is") {
            self.expect_kw("null")?;
            return Ok(Predicate::IsNull { column });
        }
        let op = match self.next() {
            Some(Token::Sym("=")) => CompareOp::Eq,
            Some(Token::Sym("!=")) => CompareOp::Ne,
            Some(Token::Sym("<")) => CompareOp::Lt,
            Some(Token::Sym("<=")) => CompareOp::Le,
            Some(Token::Sym(">")) => CompareOp::Gt,
            Some(Token::Sym(">=")) => CompareOp::Ge,
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.err("expected comparison operator"));
            }
        };
        let value = self.parse_literal()?;
        Ok(Predicate::Compare { column, op, value })
    }

    fn parse_literal(&mut self) -> Result<Value> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Value::Int(v)),
            Some(Token::Num(v)) => Ok(Value::Float(v)),
            Some(Token::Str(s)) => Ok(Value::Text(s)),
            Some(Token::Ident(s)) if s == "true" => Ok(Value::Bool(true)),
            Some(Token::Ident(s)) if s == "false" => Ok(Value::Bool(false)),
            Some(Token::Ident(s)) if s == "null" => Ok(Value::Null),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.err("expected literal"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_activities_query() {
        let q = parse_query(
            "activities in subtree('cladeA') where p_activity >= 6.5 and mw < 500 top 20 by p_activity desc",
        )
        .unwrap();
        assert_eq!(q.scope, Scope::Subtree("cladeA".into()));
        match &q.predicate {
            Predicate::And(ps) => assert_eq!(ps.len(), 2),
            other => panic!("{other:?}"),
        }
        assert_eq!(
            q.kind,
            QueryKind::TopK {
                by: "p_activity".into(),
                k: 20,
                descending: true
            }
        );
    }

    #[test]
    fn defaults() {
        let q = parse_query("activities").unwrap();
        assert_eq!(q.scope, Scope::Tree);
        assert_eq!(q.predicate, Predicate::True);
        assert_eq!(q.kind, QueryKind::Activities);
        assert!(q.similarity.is_none());
    }

    #[test]
    fn top_defaults() {
        let q = parse_query("activities top 5").unwrap();
        assert_eq!(
            q.kind,
            QueryKind::TopK {
                by: "p_activity".into(),
                k: 5,
                descending: true
            }
        );
        let q = parse_query("activities top 5 by mw asc").unwrap();
        assert_eq!(
            q.kind,
            QueryKind::TopK {
                by: "mw".into(),
                k: 5,
                descending: false
            }
        );
    }

    #[test]
    fn aggregate_and_count() {
        let q = parse_query("aggregate max_p_activity in subtree('x')").unwrap();
        assert_eq!(
            q.kind,
            QueryKind::AggregateChildren {
                metric: Metric::MaxPActivity
            }
        );
        let q = parse_query("count per leaf in tree").unwrap();
        assert_eq!(q.kind, QueryKind::CountPerLeaf);
    }

    #[test]
    fn leaves_scope() {
        let q = parse_query("activities in leaves('P1', 'P2', 'P3')").unwrap();
        assert_eq!(
            q.scope,
            Scope::Leaves(vec!["P1".into(), "P2".into(), "P3".into()])
        );
    }

    #[test]
    fn similarity_clause() {
        let q = parse_query("activities similar to 'CCO' >= 0.6").unwrap();
        let s = q.similarity.unwrap();
        assert_eq!(s.reference, "CCO");
        assert_eq!(s.min_tanimoto, 0.6);
        // Default threshold.
        let q = parse_query("activities similar to 'L1'").unwrap();
        assert_eq!(q.similarity.unwrap().min_tanimoto, 0.7);
    }

    #[test]
    fn containing_clause() {
        let q = parse_query("activities containing 'c1ccccc1'").unwrap();
        assert_eq!(q.substructure.as_deref(), Some("c1ccccc1"));
        // Composes with where/similar/top.
        let q =
            parse_query("activities in tree where mw < 500 containing 'C=O' similar to 'L1' top 5")
                .unwrap();
        assert_eq!(q.substructure.as_deref(), Some("C=O"));
        assert!(q.similarity.is_some());
        assert!(parse_query("activities containing").is_err());
    }

    #[test]
    fn predicate_shapes() {
        let q = parse_query(
            "activities where year between 2010 and 2013 and ligand_id in ('L1','L2') or not source is null",
        )
        .unwrap();
        match &q.predicate {
            Predicate::Or(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(&parts[0], Predicate::And(ps) if ps.len() == 2));
                assert!(matches!(&parts[1], Predicate::Not(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parenthesized_predicates() {
        let q = parse_query("activities where (year = 2010 or year = 2012) and mw < 500").unwrap();
        match &q.predicate {
            Predicate::And(ps) => {
                assert!(matches!(&ps[0], Predicate::Or(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn string_escapes_and_case() {
        let q = parse_query("ACTIVITIES IN SUBTREE('it''s a clade')").unwrap();
        assert_eq!(q.scope, Scope::Subtree("it's a clade".into()));
    }

    #[test]
    fn numeric_literals() {
        let q = parse_query("activities where value_nm <= 1.5e3 and year != -1").unwrap();
        match &q.predicate {
            Predicate::And(ps) => {
                assert!(
                    matches!(&ps[0], Predicate::Compare { value: Value::Float(v), .. } if *v == 1500.0)
                );
                assert!(matches!(
                    &ps[1],
                    Predicate::Compare {
                        op: CompareOp::Ne,
                        value: Value::Int(-1),
                        ..
                    }
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "frobnicate",
            "activities in",
            "activities in subtree(cladeA)",
            "activities where",
            "activities where mw",
            "activities where mw <",
            "activities top 0",
            "activities top -3",
            "activities where mw < 5 extra",
            "aggregate bogus_metric",
            "count per tree",
            "activities similar to 'C' >= ",
            "activities where mw < 'unterminated",
            "aggregate count in tree top 5",
        ] {
            assert!(parse_query(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn offsets_reported() {
        match parse_query("activities where mw @ 5").unwrap_err() {
            QueryError::Parse { offset, .. } => assert_eq!(offset, 20),
            other => panic!("{other:?}"),
        }
    }
}
