//! Materialized per-subtree aggregate views.
//!
//! A collapsed tree UI labels every visible branch with "n ligands,
//! best pKi x.y". Recomputing that on every pan would re-fetch the
//! world; the view materializes all per-node aggregates in one pass and
//! answers aggregate queries in microseconds. Staleness is detected by
//! comparing source record counts (experiment E7 measures the
//! build-cost/speedup trade).

use crate::dataset::{unify_assay_row, Dataset};
use crate::Result;
use drugtree_phylo::tree::NodeId;
use drugtree_sources::source::{FetchRequest, SourceKind};
use drugtree_store::value::Value;
use rustc_hash::FxHashSet;
use std::time::Duration;

use crate::ast::Metric;

/// Per-node aggregates over the full (unfiltered) activity overlay.
#[derive(Debug, Clone)]
pub struct MaterializedAggregates {
    count: Vec<u64>,
    distinct_ligands: Vec<u64>,
    max_p: Vec<f64>,
    sum_p: Vec<f64>,
    /// (source name, record count) at build time, for staleness checks.
    source_counts: Vec<(String, usize)>,
    /// Simulated cost of the build pass.
    pub build_cost: Duration,
}

impl MaterializedAggregates {
    /// Build by scanning every assay source once and folding each row
    /// up the leaf-to-root path.
    pub fn build(dataset: &Dataset) -> Result<MaterializedAggregates> {
        let n = dataset.tree.len();
        let mut count = vec![0u64; n];
        let mut max_p = vec![f64::NEG_INFINITY; n];
        let mut sum_p = vec![0.0f64; n];
        let mut ligand_sets: Vec<FxHashSet<String>> = vec![FxHashSet::default(); n];
        let mut build_cost = Duration::ZERO;
        let mut source_counts = Vec::new();

        for source in dataset.registry.distinct_by_kind(SourceKind::Assay) {
            let resp = source.fetch(&FetchRequest::scan())?;
            build_cost += resp.cost;
            source_counts.push((source.name().to_string(), source.record_count()));
            for raw in &resp.rows {
                let Some(row) = unify_assay_row(dataset, raw) else {
                    continue;
                };
                // `unify_assay_row` produced this row, so the column
                // types are fixed; skip rather than panic if not.
                let (Some(rank), Some(ligand), Some(p)) =
                    (row[0].as_int(), row[2].as_text(), row[5].as_f64())
                else {
                    continue;
                };
                let rank = rank as u32;
                let ligand = ligand.to_string();
                let leaf = dataset.index.leaf_at(rank)?;
                // Fold up the ancestor path (including the leaf).
                let mut node = leaf;
                loop {
                    let i = node.index();
                    count[i] += 1;
                    max_p[i] = max_p[i].max(p);
                    sum_p[i] += p;
                    ligand_sets[i].insert(ligand.clone());
                    let parent = dataset.index.parent(node);
                    if parent == node {
                        break;
                    }
                    node = parent;
                }
            }
        }

        Ok(MaterializedAggregates {
            count,
            distinct_ligands: ligand_sets.iter().map(|s| s.len() as u64).collect(),
            max_p,
            sum_p,
            source_counts,
            build_cost,
        })
    }

    /// True when no assay source has changed since the build.
    pub fn is_fresh(&self, dataset: &Dataset) -> bool {
        dataset
            .registry
            .distinct_by_kind(SourceKind::Assay)
            .iter()
            .all(|s| {
                self.source_counts
                    .iter()
                    .any(|(name, n)| name == s.name() && *n == s.record_count())
            })
    }

    /// The metric value for one node, as a result cell.
    pub fn value(&self, node: NodeId, metric: Metric) -> Value {
        let i = node.index();
        match metric {
            Metric::Count => Value::Int(self.count[i] as i64),
            Metric::DistinctLigands => Value::Int(self.distinct_ligands[i] as i64),
            Metric::MaxPActivity => {
                if self.count[i] == 0 {
                    Value::Null
                } else {
                    Value::Float(self.max_p[i])
                }
            }
            Metric::MeanPActivity => {
                if self.count[i] == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum_p[i] / self.count[i] as f64)
                }
            }
        }
    }

    /// Records under a node.
    pub fn count(&self, node: NodeId) -> u64 {
        self.count[node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_fixtures::small_dataset;
    use drugtree_sources::source::SourceCapabilities;

    fn view_and_dataset() -> (MaterializedAggregates, Dataset) {
        let d = small_dataset(SourceCapabilities::full());
        let v = MaterializedAggregates::build(&d).unwrap();
        (v, d)
    }

    #[test]
    fn aggregates_fold_up_the_tree() {
        let (v, d) = view_and_dataset();
        let root = d.tree.root();
        let clade_a = d.index.by_label("cladeA").unwrap();
        let clade_b = d.index.by_label("cladeB").unwrap();
        assert_eq!(v.count(root), 4);
        assert_eq!(v.count(clade_a), 3);
        assert_eq!(v.count(clade_b), 1);

        assert_eq!(v.value(clade_a, Metric::DistinctLigands), Value::Int(2)); // L1, L2
        assert_eq!(v.value(root, Metric::DistinctLigands), Value::Int(3));

        // Best potency at root = P3's 1 nM -> p=9.
        match v.value(root, Metric::MaxPActivity) {
            Value::Float(p) => assert!((p - 9.0).abs() < 1e-9),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_nodes_yield_null_potency() {
        let (v, d) = view_and_dataset();
        let p4 = d.index.by_label("P4").unwrap();
        assert_eq!(v.value(p4, Metric::MaxPActivity), Value::Null);
        assert_eq!(v.value(p4, Metric::MeanPActivity), Value::Null);
        assert_eq!(v.value(p4, Metric::Count), Value::Int(0));
    }

    #[test]
    fn mean_is_consistent() {
        let (v, d) = view_and_dataset();
        let p1 = d.index.by_label("P1").unwrap();
        // P1: 10 nM (p=8) and 2000 nM (p≈5.7).
        match v.value(p1, Metric::MeanPActivity) {
            Value::Float(m) => {
                let expected = (8.0 + -(2000.0f64 * 1e-9).log10()) / 2.0;
                assert!((m - expected).abs() < 1e-9);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn staleness_detection() {
        let (v, d) = view_and_dataset();
        assert!(v.is_fresh(&d));
        // Ingest a new record into the simulated source.
        let source = d.registry.by_name("assay-sim").unwrap();
        // Downcast path: the registry stores dyn DataSource; the test
        // fixture's source supports ingest through the concrete type,
        // so we simulate staleness by registering count drift instead.
        // (ingest is exercised end-to-end in the executor tests.)
        drop(source);
        let mut stale = v.clone();
        stale.source_counts[0].1 += 1;
        assert!(!stale.is_fresh(&d));
    }

    #[test]
    fn build_cost_charged() {
        let (v, _) = view_and_dataset();
        assert!(v.build_cost > Duration::ZERO);
    }
}
