#![warn(missing_docs)]

//! The DrugTree query layer — the paper's primary contribution.
//!
//! Queries address the *overlay*: activity records attached to the
//! leaves of the protein tree, joined with ligand metadata, scoped to a
//! subtree. In the unoptimized system every tree interaction issued one
//! sequential round-trip per visible leaf against every assay source —
//! the "lags concerning querying the tree" the paper opens with.
//!
//! The optimizer applies *standards* (predicate pushdown, interval
//! rewriting of subtree scopes, cost-ordered residual filters,
//! materialized aggregate views) and the poster's *novel mechanisms*
//! for an interactive tree UI (semantic caching of subtree results
//! with containment-based reuse, statistics-based subtree/source
//! pruning, batched concurrent fetch):
//!
//! * [`ast`] — the query model.
//! * [`parser`] — a small text query language.
//! * [`dataset`] — the queryable bundle (tree + overlay + sources).
//! * [`stats`] — overlay statistics driving pruning and selectivity.
//! * [`plan`] — physical plans and EXPLAIN rendering.
//! * [`optimizer`] — the phased rewrite engine (Analyze →
//!   Canonicalize → Optimize → Lower), rule-by-rule switchable so
//!   experiment E4 can ablate each one.
//! * [`phases`] — the rewrite phases and the per-phase rule registry
//!   (name, description, toggle) driving ablation, the `drugtree
//!   rules` listing, and the EXPLAIN rule trace (design decision D13).
//! * [`cost`] — the calibrated cost model pricing plan alternatives
//!   (design decision D8).
//! * [`cache`] — the semantic result cache (design decision D2).
//! * [`exec`] — the executor and its metrics.
//! * [`columnar`] — the columnar activity mirror: rank-sorted typed
//!   segments answering interval scopes with vectorized kernels
//!   instead of source round-trips (design decision D12).
//! * [`matview`] — materialized per-subtree aggregate views.
//! * [`serve`] — the concurrent serving layer: N-way sharded semantic
//!   cache plus re-exports of the cross-session fetch coordinator.
//! * [`trace`] — the observability layer: per-query span trees on the
//!   virtual clock, the [`Observer`] hook, lock-free metrics, and the
//!   `EXPLAIN ANALYZE` rendering (design decision D9).
//! * [`obs`] — continuous fleet observability: rolling SLO windows,
//!   the slow-query log, and deterministic JSONL trace export
//!   (design decision D10).
//! * [`adaptive`] — the self-driving layer: learned statistics, the
//!   auto-materialization advisor, and regret-tracked guardrails
//!   closing the telemetry → optimizer feedback loop (design
//!   decision D15).
//! * [`validate`] — plan-invariant validation (structural checks every
//!   emitted plan must pass).

pub mod adaptive;
pub mod ast;
pub mod cache;
pub mod columnar;
pub mod cost;
pub mod dataset;
pub mod error;
pub mod exec;
pub mod matview;
pub mod obs;
pub mod optimizer;
pub mod parser;
pub mod phases;
pub mod plan;
pub mod serve;
pub mod stats;
pub mod trace;
pub mod validate;

pub use adaptive::{
    AdaptiveConfig, AdaptiveRuntime, AdaptiveSnapshot, LearnedStats, SelectivitySource, StatsView,
};
pub use ast::{Query, QueryKind, Scope};
pub use columnar::ActivityColumns;
pub use cost::{CalibrationReport, CostModel, CostParams};
pub use dataset::Dataset;
pub use error::QueryError;
pub use exec::{ExecMetrics, Executor, PlanEstimate, QueryResult};
pub use obs::{
    AdaptEvent, FleetObserver, QueryClass, RollingWindows, ServeClassCounters, Sink, SloPolicy,
    SlowQueryLog, TraceExport, VecSink, WindowSummary,
};
pub use optimizer::{Optimizer, OptimizerConfig};
pub use phases::{PassTrace, RewritePhase, RuleDef, RuleFiring, RuleOutcome};
pub use serve::{FetchCoordinator, ServeConfig, ServeStats, ShardedSemanticCache};
pub use trace::{
    AnalyzedResult, GestureObservation, MetricsRegistry, Observer, QuerySpan, QueryTrace, Stage,
};
pub use validate::{InvariantViolation, PlanValidator};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, QueryError>;
