//! The semantic result cache (design decision D2) — the poster's
//! "novel mechanism" for interactive tree browsing.
//!
//! Mobile tree exploration is drill-down-heavy: the user opens a clade,
//! then its child, then a grandchild. Each step's subtree interval is
//! *contained* in the previous one, so the activity rows fetched for
//! the parent already answer the child's query — no source round-trip
//! needed. The cache therefore stores, per entry:
//!
//! * the leaf interval the rows cover,
//! * the pushdown predicate they were fetched under (`None` = all
//!   rows), and
//! * the unified activity rows, **sorted by leaf rank** so containment
//!   hits slice by binary search instead of scanning.
//!
//! A query `(interval Q, pushdown P)` is answerable by an entry
//! `(interval E, pushdown F)` iff `E ⊇ Q` and `F` is *implied by* `P`
//! (every row satisfying `P` satisfies `F`, so the entry's row set is a
//! superset of what the query needs; the residual filter re-applies
//! `P`). Implication is checked syntactically: `F = True`/`None`, or
//! `F`'s conjuncts are a subset of `P`'s conjuncts — sound, never
//! complete, which is the right trade for a cache.

use drugtree_phylo::index::LeafInterval;
use drugtree_store::expr::Predicate;
use drugtree_store::value::Value;
use rustc_hash::FxHashMap;
use std::collections::{BTreeMap, VecDeque};

/// One cached fetch result.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Interval the rows cover.
    pub interval: LeafInterval,
    /// Pushdown predicate the rows were fetched under (`None` = all).
    pub pushdown: Option<Predicate>,
    /// Unified activity rows, sorted by leaf rank (column 0).
    pub rows: Vec<Vec<Value>>,
}

/// Result of a successful probe.
#[derive(Debug)]
pub struct CacheHit {
    /// Rows restricted to the probe interval (cloned out of the entry).
    pub rows: Vec<Vec<Value>>,
    /// The matched entry's interval (for EXPLAIN output).
    pub entry_interval: LeafInterval,
}

/// Configuration for the semantic cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum entries retained (LRU beyond this).
    pub max_entries: usize,
    /// Maximum total cached rows (LRU beyond this).
    pub max_rows: usize,
    /// Shard count of the executor-level sharded cache (rounded up to
    /// a power of two; 1 = a single globally locked cache). Budgets
    /// above are split evenly across shards. Defaults to 1 so a
    /// single-session executor keeps its full budget and subsumption
    /// reach in one shard; `Executor::enable_serving` re-shards for
    /// concurrency.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            max_entries: 64,
            max_rows: 100_000,
            shards: 1,
        }
    }
}

/// Cumulative cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total probes (always `hits + misses`).
    pub probes: u64,
    /// Probes that found a usable entry.
    pub hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries dropped by invalidation.
    pub invalidations: u64,
}

impl CacheStats {
    /// Hit fraction over all probes, or `None` when nothing probed
    /// yet — the number the observability layer (D9) and E13 report.
    /// "Never probed" must not render as a 0% hit rate: the first is
    /// a workload property, the second a cache failure.
    pub fn hit_rate(&self) -> Option<f64> {
        if self.probes == 0 {
            None
        } else {
            Some(self.hits as f64 / self.probes as f64)
        }
    }
}

/// The semantic cache. Not internally synchronized; the executor holds
/// one per shard behind a shard lock (see `serve::ShardedSemanticCache`).
///
/// Entries live in an id-keyed map with two access paths: an LRU queue
/// of ids (front = coldest) driving probe order and eviction, and an
/// interval index keyed by `(interval.lo, id)` so targeted
/// invalidation visits only entries whose interval can overlap the
/// refresh window instead of scanning every entry.
#[derive(Debug)]
pub struct SemanticCache {
    config: CacheConfig,
    entries: FxHashMap<u64, CacheEntry>,
    /// Most-recently-used ids at the back.
    lru: VecDeque<u64>,
    /// Interval index: `(lo, id) -> hi`.
    by_lo: BTreeMap<(u32, u64), u32>,
    next_id: u64,
    /// Incrementally maintained `Σ rows`, so budget enforcement does
    /// not rescan entries.
    cached_rows: usize,
    stats: CacheStats,
}

impl SemanticCache {
    /// An empty cache.
    pub fn new(config: CacheConfig) -> SemanticCache {
        SemanticCache {
            config,
            entries: FxHashMap::default(),
            lru: VecDeque::new(),
            by_lo: BTreeMap::new(),
            next_id: 0,
            cached_rows: 0,
            stats: CacheStats::default(),
        }
    }

    /// Probe for an entry answering `(interval, pushdown)`.
    pub fn probe(
        &mut self,
        interval: LeafInterval,
        pushdown: Option<&Predicate>,
    ) -> Option<CacheHit> {
        self.stats.probes += 1;
        let found = self.lru.iter().position(|id| {
            self.entries.get(id).is_some_and(|e| {
                e.interval.contains(interval) && pushdown_implies(pushdown, e.pushdown.as_ref())
            })
        });
        match found {
            Some(pos) => {
                // LRU touch: move the id to the back.
                let Some(id) = self.lru.remove(pos) else {
                    unreachable!("position came from the same deque")
                };
                self.lru.push_back(id);
                let entry = &self.entries[&id];
                self.stats.hits += 1;
                Some(CacheHit {
                    rows: slice_rows(&entry.rows, interval),
                    entry_interval: entry.interval,
                })
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Insert a fetch result. Rows need not be pre-sorted. Entries
    /// subsumed by the new one are dropped (the new entry answers
    /// everything they could). Returns the entries evicted by budget
    /// enforcement, so a sharded wrapper can aggregate counters
    /// without re-locking.
    pub fn insert(
        &mut self,
        interval: LeafInterval,
        pushdown: Option<Predicate>,
        mut rows: Vec<Vec<Value>>,
    ) -> u64 {
        rows.sort_by_key(|r| r.first().and_then(Value::as_int).unwrap_or(i64::MAX));
        // Drop entries the new one subsumes. Contained entries have
        // `lo' ∈ [lo, hi]`, so the interval index prunes candidates.
        let subsumed: Vec<u64> =
            self.by_lo
                .range((interval.lo, 0)..=(interval.hi, u64::MAX))
                .filter(|(&(_, id), &hi)| {
                    hi <= interval.hi
                        && self.entries.get(&id).is_some_and(|e| {
                            pushdown_implies(e.pushdown.as_ref(), pushdown.as_ref())
                        })
                })
                .map(|(&(_, id), _)| id)
                .collect();
        self.remove_ids(&subsumed);

        let id = self.next_id;
        self.next_id += 1;
        self.cached_rows += rows.len();
        self.by_lo.insert((interval.lo, id), interval.hi);
        self.lru.push_back(id);
        self.entries.insert(
            id,
            CacheEntry {
                interval,
                pushdown,
                rows,
            },
        );
        self.enforce_limits()
    }

    /// Drop every entry (sources changed; cached results may be
    /// stale). Returns the number of entries dropped.
    pub fn invalidate_all(&mut self) -> u64 {
        let dropped = self.entries.len() as u64;
        self.stats.invalidations += dropped;
        self.entries.clear();
        self.lru.clear();
        self.by_lo.clear();
        self.cached_rows = 0;
        dropped
    }

    /// Drop entries overlapping an interval (a targeted refresh).
    /// The interval index restricts the walk to entries with
    /// `lo < interval.hi`; the exact overlap test filters the rest.
    /// Returns the number of entries dropped.
    pub fn invalidate_interval(&mut self, interval: LeafInterval) -> u64 {
        let doomed: Vec<u64> = self
            .by_lo
            .range(..(interval.hi, 0))
            .filter(|(_, &hi)| hi > interval.lo)
            .filter(|(&(_, id), _)| {
                self.entries
                    .get(&id)
                    .is_some_and(|e| e.interval.overlaps(interval))
            })
            .map(|(&(_, id), _)| id)
            .collect();
        let dropped = doomed.len() as u64;
        self.remove_ids(&doomed);
        self.stats.invalidations += dropped;
        dropped
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total cached rows.
    pub fn total_rows(&self) -> usize {
        self.cached_rows
    }

    fn remove_ids(&mut self, ids: &[u64]) {
        if ids.is_empty() {
            return;
        }
        for id in ids {
            if let Some(e) = self.entries.remove(id) {
                self.by_lo.remove(&(e.interval.lo, *id));
                self.cached_rows -= e.rows.len();
            }
        }
        self.lru.retain(|id| self.entries.contains_key(id));
    }

    fn enforce_limits(&mut self) -> u64 {
        // Strict budgets: an entry larger than the whole row budget is
        // evicted immediately (whole-database results are not worth
        // caching on a constrained client), so it can never crowd out
        // the drill-down-sized entries the mobile workload reuses.
        let mut evicted = 0;
        while self.entries.len() > self.config.max_entries
            || (self.cached_rows > self.config.max_rows && !self.entries.is_empty())
        {
            let Some(id) = self.lru.pop_front() else {
                break;
            };
            if let Some(e) = self.entries.remove(&id) {
                self.by_lo.remove(&(e.interval.lo, id));
                self.cached_rows -= e.rows.len();
            }
            self.stats.evictions += 1;
            evicted += 1;
        }
        evicted
    }
}

/// Binary-search the sorted rows down to those whose leaf rank falls in
/// `interval`.
fn slice_rows(rows: &[Vec<Value>], interval: LeafInterval) -> Vec<Vec<Value>> {
    let rank_of = |r: &Vec<Value>| r.first().and_then(Value::as_int).unwrap_or(i64::MAX);
    let lo = rows.partition_point(|r| rank_of(r) < interval.lo as i64);
    let hi = rows.partition_point(|r| rank_of(r) < interval.hi as i64);
    rows[lo..hi].to_vec()
}

/// Sound (incomplete) implication: does `query` imply `entry`?
///
/// `entry = None/True` is implied by anything. Otherwise every conjunct
/// of `entry` must be implied by some conjunct of `query`, where
/// implication is exact syntactic equality *or* numeric bound
/// subsumption on the same column (`p >= 7` implies `p >= 6`;
/// `x between 2 and 3` implies `x >= 1`).
fn pushdown_implies(query: Option<&Predicate>, entry: Option<&Predicate>) -> bool {
    let entry = match entry {
        None | Some(Predicate::True) => return true,
        Some(e) => e,
    };
    let Some(query) = query else {
        return false;
    };
    let q_conjuncts = conjuncts(query);
    conjuncts(entry)
        .iter()
        .all(|e| q_conjuncts.iter().any(|q| conjunct_implies(q, e)))
}

/// Conjuncts of a predicate, with `Between` expanded into its two
/// bounds so bound subsumption can see them.
fn conjuncts(p: &Predicate) -> Vec<Predicate> {
    match p {
        Predicate::And(ps) => ps.iter().flat_map(conjuncts).collect(),
        Predicate::True => Vec::new(),
        Predicate::Between { column, lo, hi } => vec![
            Predicate::Compare {
                column: column.clone(),
                op: drugtree_store::expr::CompareOp::Ge,
                value: lo.clone(),
            },
            Predicate::Compare {
                column: column.clone(),
                op: drugtree_store::expr::CompareOp::Le,
                value: hi.clone(),
            },
        ],
        other => vec![other.clone()],
    }
}

/// Does the single conjunct `q` imply the single conjunct `e`?
fn conjunct_implies(q: &Predicate, e: &Predicate) -> bool {
    use drugtree_store::expr::CompareOp::*;
    if q == e {
        return true;
    }
    let (
        Predicate::Compare {
            column: qc,
            op: qop,
            value: qv,
        },
        Predicate::Compare {
            column: ec,
            op: eop,
            value: ev,
        },
    ) = (q, e)
    else {
        return false;
    };
    if qc != ec {
        return false;
    }
    let (Some(qv), Some(ev)) = (qv.as_f64(), ev.as_f64()) else {
        return false;
    };
    match (qop, eop) {
        // Lower bounds: x {>=,>} qv implies x {>=,>} ev.
        (Ge, Ge) | (Gt, Gt) => qv >= ev,
        (Gt, Ge) => qv >= ev,
        (Ge, Gt) => qv > ev,
        // Upper bounds.
        (Le, Le) | (Lt, Lt) => qv <= ev,
        (Lt, Le) => qv <= ev,
        (Le, Lt) => qv < ev,
        // Point implies any bound containing it.
        (Eq, Ge) => qv >= ev,
        (Eq, Gt) => qv > ev,
        (Eq, Le) => qv <= ev,
        (Eq, Lt) => qv < ev,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_store::expr::CompareOp;

    fn iv(lo: u32, hi: u32) -> LeafInterval {
        LeafInterval { lo, hi }
    }

    fn row(rank: i64, tag: &str) -> Vec<Value> {
        vec![Value::Int(rank), Value::from(tag)]
    }

    #[test]
    fn exact_hit() {
        let mut c = SemanticCache::new(CacheConfig::default());
        c.insert(iv(0, 4), None, vec![row(0, "a"), row(2, "b")]);
        let hit = c.probe(iv(0, 4), None).unwrap();
        assert_eq!(hit.rows.len(), 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn containment_hit_slices_rows() {
        let mut c = SemanticCache::new(CacheConfig::default());
        c.insert(iv(0, 8), None, vec![row(1, "a"), row(3, "b"), row(6, "c")]);
        // Drill-down: child interval [2,5).
        let hit = c.probe(iv(2, 5), None).unwrap();
        assert_eq!(hit.rows, vec![row(3, "b")]);
        assert_eq!(hit.entry_interval, iv(0, 8));
        // Sibling interval outside: rows empty but still a hit (the
        // cache *knows* there is nothing there).
        let hit = c.probe(iv(7, 8), None).unwrap();
        assert!(hit.rows.is_empty());
    }

    #[test]
    fn non_contained_probe_misses() {
        let mut c = SemanticCache::new(CacheConfig::default());
        c.insert(iv(2, 5), None, vec![row(3, "a")]);
        assert!(
            c.probe(iv(0, 4), None).is_none(),
            "partial overlap is a miss"
        );
        assert!(c.probe(iv(5, 6), None).is_none());
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn predicate_implication() {
        let p_ge = Predicate::cmp("p_activity", CompareOp::Ge, 6.0);
        let year = Predicate::eq("year", 2012i64);
        let both = p_ge.clone().and(year.clone());

        let mut c = SemanticCache::new(CacheConfig::default());
        // Entry fetched under p_ge.
        c.insert(iv(0, 8), Some(p_ge.clone()), vec![row(1, "a")]);
        // Query pushing down p_ge AND year: entry's rows are a superset.
        assert!(c.probe(iv(0, 4), Some(&both)).is_some());
        // Query pushing down only year: entry may be missing rows
        // (those failing p_ge) -> miss.
        assert!(c.probe(iv(0, 4), Some(&year)).is_none());
        // Query with no pushdown (wants everything) -> miss.
        assert!(c.probe(iv(0, 4), None).is_none());
    }

    #[test]
    fn unfiltered_entry_answers_any_pushdown() {
        let mut c = SemanticCache::new(CacheConfig::default());
        c.insert(iv(0, 8), None, vec![row(1, "a")]);
        let p = Predicate::cmp("p_activity", CompareOp::Ge, 6.0);
        assert!(c.probe(iv(0, 4), Some(&p)).is_some());
    }

    #[test]
    fn insert_subsumes_smaller_entries() {
        let mut c = SemanticCache::new(CacheConfig::default());
        c.insert(iv(2, 4), None, vec![row(2, "a")]);
        c.insert(iv(0, 8), None, vec![row(2, "a"), row(5, "b")]);
        assert_eq!(c.len(), 1, "small entry subsumed by the big one");
        // But a *filtered* big entry does not subsume an unfiltered
        // small one.
        let p = Predicate::cmp("p_activity", CompareOp::Ge, 6.0);
        c.insert(iv(0, 8), Some(p), vec![row(5, "b")]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_eviction() {
        let mut c = SemanticCache::new(CacheConfig {
            max_entries: 2,
            max_rows: 1000,
            ..CacheConfig::default()
        });
        c.insert(iv(0, 1), None, vec![row(0, "a")]);
        c.insert(iv(1, 2), None, vec![row(1, "b")]);
        // Touch the first entry so the second becomes LRU.
        assert!(c.probe(iv(0, 1), None).is_some());
        c.insert(iv(2, 3), None, vec![row(2, "c")]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.probe(iv(1, 2), None).is_none(), "LRU entry evicted");
        assert!(c.probe(iv(0, 1), None).is_some(), "touched entry kept");
    }

    #[test]
    fn row_budget_eviction() {
        let mut c = SemanticCache::new(CacheConfig {
            max_entries: 100,
            max_rows: 3,
            ..CacheConfig::default()
        });
        c.insert(iv(0, 4), None, vec![row(0, "a"), row(1, "b")]);
        c.insert(iv(4, 8), None, vec![row(4, "c"), row(5, "d")]);
        assert_eq!(c.len(), 1, "row budget forced eviction");
        assert!(c.total_rows() <= 3);
    }

    #[test]
    fn oversized_entries_are_not_cached() {
        let mut c = SemanticCache::new(CacheConfig {
            max_entries: 100,
            max_rows: 2,
            ..CacheConfig::default()
        });
        c.insert(iv(0, 8), None, vec![row(0, "a"), row(1, "b"), row(2, "c")]);
        assert!(c.is_empty(), "whole-database result exceeds the budget");
        assert_eq!(c.stats().evictions, 1);
        // Smaller entries still cache fine afterwards.
        c.insert(iv(0, 2), None, vec![row(0, "a")]);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidation() {
        let mut c = SemanticCache::new(CacheConfig::default());
        c.insert(iv(0, 4), None, vec![row(0, "a")]);
        c.insert(iv(4, 8), None, vec![row(5, "b")]);
        c.invalidate_interval(iv(3, 5));
        assert_eq!(c.len(), 0, "both entries overlap [3,5)");
        assert_eq!(c.stats().invalidations, 2);

        c.insert(iv(0, 4), None, vec![row(0, "a")]);
        c.invalidate_all();
        assert!(c.is_empty());
    }

    #[test]
    fn overlapping_interval_invalidation() {
        // Entries on every side of the refresh window: strictly left,
        // touching-left (half-open: no overlap), left-overlapping,
        // contained, containing, right-overlapping, touching-right,
        // strictly right.
        let mut c = SemanticCache::new(CacheConfig::default());
        let cases = [
            (iv(0, 2), false),   // strictly left of [4, 8)
            (iv(2, 4), false),   // touches lo: half-open, no overlap
            (iv(3, 5), true),    // straddles lo
            (iv(5, 6), true),    // contained
            (iv(2, 10), true),   // contains the window
            (iv(7, 9), true),    // straddles hi
            (iv(8, 10), false),  // touches hi
            (iv(10, 12), false), // strictly right
        ];
        // Distinct pushdowns keep the entries from subsuming each
        // other on insert, so all eight coexist.
        let pred = |i: usize| Predicate::eq("source_id", i as i64);
        for (i, (interval, _)) in cases.iter().enumerate() {
            c.insert(*interval, Some(pred(i)), vec![row(interval.lo as i64, "x")]);
        }
        assert_eq!(c.len(), 8);
        let dropped = c.invalidate_interval(iv(4, 8));
        assert_eq!(dropped, 4);
        assert_eq!(c.stats().invalidations, 4);
        for (i, (interval, doomed)) in cases.iter().enumerate() {
            assert_eq!(
                c.probe(*interval, Some(&pred(i))).is_none(),
                *doomed,
                "entry {interval:?} wrong after invalidating [4,8)"
            );
        }
        // Row accounting survives targeted invalidation.
        assert_eq!(c.total_rows(), 4);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn probes_always_equal_hits_plus_misses() {
        let mut c = SemanticCache::new(CacheConfig::default());
        c.insert(iv(0, 8), None, vec![row(1, "a")]);
        let _ = c.probe(iv(0, 4), None);
        let _ = c.probe(iv(6, 12), None);
        let _ = c.probe(iv(2, 3), None);
        let s = c.stats();
        assert_eq!(s.probes, 3);
        assert_eq!(s.hits + s.misses, s.probes);
    }

    #[test]
    fn bound_subsumption_implication() {
        use drugtree_store::expr::CompareOp::*;
        let ge = |v: f64| Predicate::cmp("p", Ge, v);
        let gt = |v: f64| Predicate::cmp("p", Gt, v);
        let le = |v: f64| Predicate::cmp("p", Le, v);

        // Tighter lower bound implies looser.
        assert!(pushdown_implies(Some(&ge(7.0)), Some(&ge(6.0))));
        assert!(!pushdown_implies(Some(&ge(5.0)), Some(&ge(6.0))));
        // Strict vs non-strict edges.
        assert!(pushdown_implies(Some(&gt(6.0)), Some(&ge(6.0))));
        assert!(!pushdown_implies(Some(&ge(6.0)), Some(&gt(6.0))));
        assert!(pushdown_implies(Some(&ge(6.1)), Some(&gt(6.0))));
        // Upper bounds.
        assert!(pushdown_implies(Some(&le(4.0)), Some(&le(5.0))));
        assert!(!pushdown_implies(Some(&le(6.0)), Some(&le(5.0))));
        // Point implies covering bound.
        let eq = Predicate::eq("p", 7.0);
        assert!(pushdown_implies(Some(&eq), Some(&ge(6.0))));
        assert!(!pushdown_implies(Some(&eq), Some(&ge(8.0))));
        // Different columns never imply.
        assert!(!pushdown_implies(
            Some(&Predicate::cmp("q", Ge, 9.0)),
            Some(&ge(6.0))
        ));
        // Between expands into bounds.
        let btw = Predicate::between("p", 6.5, 7.0);
        assert!(pushdown_implies(Some(&btw), Some(&ge(6.0))));
        assert!(!pushdown_implies(Some(&ge(6.0)), Some(&btw)));
        // Multi-conjunct entries need every conjunct implied.
        let entry = ge(6.0).and(Predicate::eq("year", 2012i64));
        let query = ge(7.0).and(Predicate::eq("year", 2012i64));
        assert!(pushdown_implies(Some(&query), Some(&entry)));
        assert!(!pushdown_implies(Some(&ge(7.0)), Some(&entry)));
    }

    #[test]
    fn probe_uses_bound_subsumption() {
        use drugtree_store::expr::CompareOp::Ge;
        let mut c = SemanticCache::new(CacheConfig::default());
        c.insert(
            iv(0, 8),
            Some(Predicate::cmp("p_activity", Ge, 6.0)),
            vec![row(1, "a"), row(3, "b")],
        );
        // Stricter query bound: rows are a superset of what it needs.
        let strict = Predicate::cmp("p_activity", Ge, 7.5);
        assert!(c.probe(iv(0, 4), Some(&strict)).is_some());
        // Looser query bound: entry may be missing rows in [5.0, 6.0).
        let loose = Predicate::cmp("p_activity", Ge, 5.0);
        assert!(c.probe(iv(0, 4), Some(&loose)).is_none());
    }

    #[test]
    fn rows_sorted_on_insert() {
        let mut c = SemanticCache::new(CacheConfig::default());
        c.insert(iv(0, 8), None, vec![row(6, "c"), row(1, "a"), row(3, "b")]);
        let hit = c.probe(iv(0, 8), None).unwrap();
        let ranks: Vec<i64> = hit.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(ranks, vec![1, 3, 6]);
    }
}
