//! The query model.
//!
//! A DrugTree query scopes a region of the tree, filters the activity
//! overlay (optionally joined with ligand metadata and a structural
//! similarity constraint), and finishes by listing, ranking, counting,
//! or aggregating per child clade.

use drugtree_phylo::index::LeafInterval;
use drugtree_store::expr::Predicate;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which part of the tree a query addresses.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scope {
    /// The whole tree.
    Tree,
    /// The subtree rooted at the node with this label.
    Subtree(String),
    /// An explicit leaf-rank interval (produced by the mobile layer's
    /// viewport queries; users normally write labels).
    Interval(LeafInterval),
    /// An explicit set of leaf labels.
    Leaves(Vec<String>),
}

/// Aggregation metric for per-clade summaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Metric {
    /// Number of activity records.
    Count,
    /// Number of distinct ligands.
    DistinctLigands,
    /// Maximum pActivity (best potency).
    MaxPActivity,
    /// Mean pActivity.
    MeanPActivity,
}

impl Metric {
    /// Human-readable label used in result columns.
    pub fn label(self) -> &'static str {
        match self {
            Metric::Count => "count",
            Metric::DistinctLigands => "distinct_ligands",
            Metric::MaxPActivity => "max_p_activity",
            Metric::MeanPActivity => "mean_p_activity",
        }
    }
}

/// Structural similarity constraint ("ligands similar to X").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilaritySpec {
    /// A SMILES string or a known ligand id.
    pub reference: String,
    /// Minimum Tanimoto similarity in `[0, 1]`.
    pub min_tanimoto: f64,
}

/// How the query finishes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QueryKind {
    /// List matching activity rows (joined with ligand metadata).
    Activities,
    /// The `k` best rows by a column.
    TopK {
        /// Ranking column.
        by: String,
        /// Result size.
        k: usize,
        /// Sort direction.
        descending: bool,
    },
    /// One aggregate row per child of the scope's root clade — what a
    /// collapsed tree view displays on each branch.
    AggregateChildren {
        /// The aggregation metric.
        metric: Metric,
    },
    /// Count matching records per leaf (drives heat-strip rendering).
    CountPerLeaf,
}

/// A complete query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Tree region.
    pub scope: Scope,
    /// Row filter over the unified activity+ligand columns.
    pub predicate: Predicate,
    /// Optional structural similarity constraint.
    pub similarity: Option<SimilaritySpec>,
    /// Optional substructure constraint: only ligands *containing*
    /// this SMILES pattern (or a known ligand id's structure).
    pub substructure: Option<String>,
    /// Finishing operator.
    pub kind: QueryKind,
}

impl Query {
    /// A bare "all activities in this scope" query.
    pub fn activities(scope: Scope) -> Query {
        Query {
            scope,
            predicate: Predicate::True,
            similarity: None,
            substructure: None,
            kind: QueryKind::Activities,
        }
    }

    /// Attach a predicate (conjoined with any existing one).
    pub fn filter(mut self, pred: Predicate) -> Query {
        self.predicate = std::mem::replace(&mut self.predicate, Predicate::True).and(pred);
        self
    }

    /// Attach a similarity constraint.
    pub fn similar_to(mut self, reference: impl Into<String>, min_tanimoto: f64) -> Query {
        self.similarity = Some(SimilaritySpec {
            reference: reference.into(),
            min_tanimoto,
        });
        self
    }

    /// Attach a substructure constraint (a SMILES pattern or a known
    /// ligand id whose structure becomes the pattern).
    pub fn containing(mut self, pattern: impl Into<String>) -> Query {
        self.substructure = Some(pattern.into());
        self
    }

    /// Finish as a top-k ranking.
    pub fn top_k(mut self, by: impl Into<String>, k: usize, descending: bool) -> Query {
        self.kind = QueryKind::TopK {
            by: by.into(),
            k,
            descending,
        };
        self
    }

    /// Finish as a per-child aggregate.
    pub fn aggregate(mut self, metric: Metric) -> Query {
        self.kind = QueryKind::AggregateChildren { metric };
        self
    }

    /// Parse from the text query language (see [`crate::parser`]).
    pub fn parse(text: &str) -> crate::Result<Query> {
        crate::parser::parse_query(text)
    }
}

impl fmt::Display for Query {
    /// Render back into the text query language. Every query built
    /// through the public API parses back to an equal value
    /// (`Query::parse(&q.to_string()) == Ok(q)`), except
    /// `Scope::Interval`, which the language cannot express (it
    /// renders as a comment-like `in tree` fallback is wrong — so it
    /// renders its interval explicitly and will not re-parse; the
    /// mobile layer constructs those queries structurally).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            QueryKind::Activities | QueryKind::TopK { .. } => write!(f, "activities")?,
            QueryKind::AggregateChildren { metric } => write!(f, "aggregate {}", metric.label())?,
            QueryKind::CountPerLeaf => write!(f, "count per leaf")?,
        }
        match &self.scope {
            Scope::Tree => write!(f, " in tree")?,
            Scope::Subtree(label) => write!(f, " in subtree({})", quote(label))?,
            Scope::Leaves(labels) => {
                let quoted: Vec<String> = labels.iter().map(|l| quote(l)).collect();
                write!(f, " in leaves({})", quoted.join(", "))?;
            }
            Scope::Interval(iv) => write!(f, " in interval[{}, {})", iv.lo, iv.hi)?,
        }
        if self.predicate != drugtree_store::expr::Predicate::True {
            write!(f, " where {}", crate::plan::fmt_pred(&self.predicate))?;
        }
        if let Some(pattern) = &self.substructure {
            write!(f, " containing {}", quote(pattern))?;
        }
        if let Some(sim) = &self.similarity {
            write!(
                f,
                " similar to {} >= {}",
                quote(&sim.reference),
                sim.min_tanimoto
            )?;
        }
        if let QueryKind::TopK { by, k, descending } = &self.kind {
            write!(
                f,
                " top {k} by {by} {}",
                if *descending { "desc" } else { "asc" }
            )?;
        }
        Ok(())
    }
}

fn quote(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

/// The unified column names a query predicate may reference.
pub mod columns {
    /// Columns served directly by assay sources (pushdown candidates).
    pub const ACTIVITY: &[&str] = &[
        "leaf_rank",
        "protein_accession",
        "ligand_id",
        "activity_type",
        "value_nm",
        "p_activity",
        "source",
        "year",
    ];
    /// Columns contributed by the ligand join (always client-side).
    pub const LIGAND: &[&str] = &["name", "smiles", "mw", "hbd", "hba", "rings"];

    /// True when the column belongs to the activity half.
    pub fn is_activity_column(name: &str) -> bool {
        ACTIVITY.contains(&name)
    }

    /// True when the column exists at all.
    pub fn is_known(name: &str) -> bool {
        ACTIVITY.contains(&name) || LIGAND.contains(&name)
    }
}

/// Canonical (normalized) predicate forms — the Canonicalize phase's
/// rewrite steps (design decision D13).
///
/// Each step takes a predicate and returns the rewritten form plus a
/// `changed` flag; the phase driver runs the enabled steps to a
/// bounded fixpoint, and the phase-boundary check re-runs them to
/// prove the result is stable. Every step is **exact** under the
/// engine's two-valued `BoundPredicate::matches` semantics (a
/// comparison against — or of — a NULL is `false`, and `not` is plain
/// boolean negation):
///
/// * [`nnf`](canon::nnf) only eliminates double negation and applies De Morgan; it
///   never rewrites `not (c op v)` into the flipped comparison,
///   because on a NULL cell `not (c = v)` is *true* while `c != v` is
///   *false*.
/// * `false` is spelled `Not(True)` (exactly as the parser produces
///   it), so folding needs no extra variant.
/// * [`between_merge`](canon::between_merge) only fires when both bound literals are
///   non-null: `c >= lo and c <= hi` then matches exactly the rows of
///   `c between lo and hi`, including the empty `lo > hi` case.
pub mod canon {
    use drugtree_store::expr::{CompareOp, Predicate};

    /// Negation-normal form: push `not` to the leaves via double-
    /// negation elimination and De Morgan. Leaf negations (including
    /// the `Not(True)` spelling of `false`) are left alone.
    pub fn nnf(p: Predicate) -> (Predicate, bool) {
        match p {
            Predicate::Not(inner) => match *inner {
                Predicate::Not(x) => {
                    let (x, _) = nnf(*x);
                    (x, true)
                }
                Predicate::And(ps) => {
                    let members = ps
                        .into_iter()
                        .map(|m| nnf(Predicate::Not(Box::new(m))).0)
                        .collect();
                    (Predicate::Or(members), true)
                }
                Predicate::Or(ps) => {
                    let members = ps
                        .into_iter()
                        .map(|m| nnf(Predicate::Not(Box::new(m))).0)
                        .collect();
                    (Predicate::And(members), true)
                }
                leaf => (Predicate::Not(Box::new(leaf)), false),
            },
            Predicate::And(ps) => rebuild(ps, Predicate::And, nnf),
            Predicate::Or(ps) => rebuild(ps, Predicate::Or, nnf),
            leaf => (leaf, false),
        }
    }

    /// Flatten `and`-in-`and` / `or`-in-`or`, unwrap single-member
    /// connectives, and normalize the empty cases (`and()` is `true`,
    /// `or()` is `false`).
    pub fn flatten(p: Predicate) -> (Predicate, bool) {
        match p {
            Predicate::And(ps) => flatten_connective(ps, true),
            Predicate::Or(ps) => flatten_connective(ps, false),
            Predicate::Not(inner) => {
                let (inner, changed) = flatten(*inner);
                (Predicate::Not(Box::new(inner)), changed)
            }
            leaf => (leaf, false),
        }
    }

    fn flatten_connective(ps: Vec<Predicate>, is_and: bool) -> (Predicate, bool) {
        let mut changed = false;
        let mut members = Vec::with_capacity(ps.len());
        for member in ps {
            let (member, c) = flatten(member);
            changed |= c;
            match member {
                Predicate::And(inner) if is_and => {
                    changed = true;
                    members.extend(inner);
                }
                Predicate::Or(inner) if !is_and => {
                    changed = true;
                    members.extend(inner);
                }
                other => members.push(other),
            }
        }
        match members.len() {
            0 => (
                if is_and {
                    Predicate::True
                } else {
                    fold_false()
                },
                true,
            ),
            1 => (members.remove(0), true),
            _ => (
                if is_and {
                    Predicate::And(members)
                } else {
                    Predicate::Or(members)
                },
                changed,
            ),
        }
    }

    /// The canonical spelling of `false` (what the parser produces).
    fn fold_false() -> Predicate {
        Predicate::Not(Box::new(Predicate::True))
    }

    fn is_false(p: &Predicate) -> bool {
        matches!(p, Predicate::Not(inner) if **inner == Predicate::True)
    }

    /// Constant folding: drop `true` from conjunctions and `false`
    /// from disjunctions; collapse a conjunction containing `false`
    /// (or a disjunction containing `true`) to the constant.
    pub fn fold(p: Predicate) -> (Predicate, bool) {
        match p {
            Predicate::And(ps) => fold_connective(ps, true),
            Predicate::Or(ps) => fold_connective(ps, false),
            Predicate::Not(inner) => {
                let (inner, changed) = fold(*inner);
                (Predicate::Not(Box::new(inner)), changed)
            }
            leaf => (leaf, false),
        }
    }

    fn fold_connective(ps: Vec<Predicate>, is_and: bool) -> (Predicate, bool) {
        let mut changed = false;
        let mut members = Vec::with_capacity(ps.len());
        for member in ps {
            let (member, c) = fold(member);
            changed |= c;
            // The absorbing element collapses the whole connective...
            if (is_and && is_false(&member)) || (!is_and && member == Predicate::True) {
                return (member, true);
            }
            // ...and the neutral element drops out.
            if (is_and && member == Predicate::True) || (!is_and && is_false(&member)) {
                changed = true;
                continue;
            }
            members.push(member);
        }
        match members.len() {
            0 => (
                if is_and {
                    Predicate::True
                } else {
                    fold_false()
                },
                true,
            ),
            1 => (members.remove(0), true),
            _ => (
                if is_and {
                    Predicate::And(members)
                } else {
                    Predicate::Or(members)
                },
                changed,
            ),
        }
    }

    /// Merge a conjunction's `c >= lo` / `c <= hi` pair (same column,
    /// both literals non-null) into `c between lo and hi`. Exact even
    /// when `lo > hi`: both forms match no row.
    pub fn between_merge(p: Predicate) -> (Predicate, bool) {
        match p {
            Predicate::And(ps) => {
                let mut changed = false;
                let mut members: Vec<Predicate> = Vec::with_capacity(ps.len());
                for member in ps {
                    let (member, c) = between_merge(member);
                    changed |= c;
                    members.push(member);
                }
                'merge: loop {
                    for i in 0..members.len() {
                        for j in 0..members.len() {
                            if i == j {
                                continue;
                            }
                            let Some(merged) = merge_pair(&members[i], &members[j]) else {
                                continue;
                            };
                            members[i] = merged;
                            members.remove(j);
                            changed = true;
                            continue 'merge;
                        }
                    }
                    break;
                }
                (Predicate::And(members), changed)
            }
            Predicate::Or(ps) => rebuild(ps, Predicate::Or, between_merge),
            Predicate::Not(inner) => {
                let (inner, changed) = between_merge(*inner);
                (Predicate::Not(Box::new(inner)), changed)
            }
            leaf => (leaf, false),
        }
    }

    /// `lower >= lo` + `upper <= hi` over the same column, both
    /// literals non-null, merged as `between lo and hi`.
    fn merge_pair(lower: &Predicate, upper: &Predicate) -> Option<Predicate> {
        let Predicate::Compare {
            column: lc,
            op: CompareOp::Ge,
            value: lo,
        } = lower
        else {
            return None;
        };
        let Predicate::Compare {
            column: uc,
            op: CompareOp::Le,
            value: hi,
        } = upper
        else {
            return None;
        };
        if lc != uc || lo.is_null() || hi.is_null() {
            return None;
        }
        Some(Predicate::Between {
            column: lc.clone(),
            lo: lo.clone(),
            hi: hi.clone(),
        })
    }

    /// Drop exact duplicate members from conjunctions and
    /// disjunctions, preserving first-occurrence order.
    pub fn dedup(p: Predicate) -> (Predicate, bool) {
        match p {
            Predicate::And(ps) => dedup_connective(ps, Predicate::And),
            Predicate::Or(ps) => dedup_connective(ps, Predicate::Or),
            Predicate::Not(inner) => {
                let (inner, changed) = dedup(*inner);
                (Predicate::Not(Box::new(inner)), changed)
            }
            leaf => (leaf, false),
        }
    }

    fn dedup_connective(
        ps: Vec<Predicate>,
        make: fn(Vec<Predicate>) -> Predicate,
    ) -> (Predicate, bool) {
        let mut changed = false;
        let mut members: Vec<Predicate> = Vec::with_capacity(ps.len());
        for member in ps {
            let (member, c) = dedup(member);
            changed |= c;
            if members.contains(&member) {
                changed = true;
            } else {
                members.push(member);
            }
        }
        (make(members), changed)
    }

    fn rebuild(
        ps: Vec<Predicate>,
        make: fn(Vec<Predicate>) -> Predicate,
        step: fn(Predicate) -> (Predicate, bool),
    ) -> (Predicate, bool) {
        let mut changed = false;
        let members = ps
            .into_iter()
            .map(|m| {
                let (m, c) = step(m);
                changed |= c;
                m
            })
            .collect();
        (make(members), changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_store::expr::CompareOp;

    #[test]
    fn builder_chains() {
        let q = Query::activities(Scope::Subtree("cladeA".into()))
            .filter(Predicate::cmp("p_activity", CompareOp::Ge, 6.5))
            .filter(Predicate::cmp("mw", CompareOp::Lt, 500.0))
            .top_k("p_activity", 10, true);
        assert_eq!(q.scope, Scope::Subtree("cladeA".into()));
        match &q.predicate {
            Predicate::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
        assert!(matches!(
            q.kind,
            QueryKind::TopK {
                k: 10,
                descending: true,
                ..
            }
        ));
    }

    #[test]
    fn similarity_attach() {
        let q = Query::activities(Scope::Tree).similar_to("CCO", 0.7);
        let s = q.similarity.unwrap();
        assert_eq!(s.reference, "CCO");
        assert_eq!(s.min_tanimoto, 0.7);
    }

    #[test]
    fn column_classification() {
        assert!(columns::is_activity_column("p_activity"));
        assert!(!columns::is_activity_column("mw"));
        assert!(columns::is_known("mw"));
        assert!(!columns::is_known("bogus"));
    }

    #[test]
    fn display_round_trips() {
        let queries = vec![
            Query::activities(Scope::Tree),
            Query::activities(Scope::Subtree("clade A".into()))
                .filter(Predicate::cmp("p_activity", CompareOp::Ge, 6.5))
                .filter(Predicate::cmp("mw", CompareOp::Lt, 500.0)),
            Query::activities(Scope::Leaves(vec!["P1".into(), "it's".into()]))
                .similar_to("CCO", 0.6),
            Query::activities(Scope::Tree)
                .containing("c1ccccc1")
                .top_k("p_activity", 7, false),
            Query::activities(Scope::Tree).aggregate(Metric::DistinctLigands),
            Query {
                scope: Scope::Tree,
                predicate: Predicate::between("year", 2005i64, 2013i64),
                similarity: None,
                substructure: None,
                kind: QueryKind::CountPerLeaf,
            },
        ];
        for q in queries {
            let text = q.to_string();
            let back = Query::parse(&text).unwrap_or_else(|e| panic!("{text:?}: {e}"));
            assert_eq!(back, q, "{text}");
        }
    }

    #[test]
    fn metric_labels() {
        assert_eq!(Metric::Count.label(), "count");
        assert_eq!(Metric::MaxPActivity.label(), "max_p_activity");
    }
}
