//! Query-path tracing and metrics — the observability layer (design
//! decision D9) behind `EXPLAIN ANALYZE`.
//!
//! Every query the executor runs can produce a [`QueryTrace`]: a tree
//! of [`QuerySpan`]s (parse → plan → cache probe → per-source fetch /
//! coalesce → overlay → finish) timed on the **virtual clock**, so a
//! trace is deterministic and reproducible like every other latency in
//! the system. Traces are delivered to an [`Observer`] installed on
//! the executor; the provided [`MetricsRegistry`] observer folds them
//! into lock-free counters and fixed-bucket histograms (cache
//! hits/misses, single-flight dedups, rows fetched, batch sizes,
//! per-source latency).
//!
//! **Null-observer fast path**: with no observer installed the
//! executor never constructs a span, clones a plan, or formats a
//! string — the only added work is one `Option` check per query, and
//! no virtual time is ever charged for tracing, so enabling the module
//! cannot change measured latencies (experiment E13 asserts this).
//!
//! [`AnalyzedResult`] is the `EXPLAIN ANALYZE` surface: the plan, the
//! trace, and the result of one traced execution, rendered with
//! estimate-vs-actual columns next to the plan's `est_cost`/`est_rows`
//! fields so cost-model calibration error is visible per plan node.

use crate::ast::Query;
use crate::exec::{ExecMetrics, QueryResult};
use crate::obs::QueryClass;
use crate::plan::PhysicalPlan;
use drugtree_sources::clock::VirtualInstant;
pub use drugtree_sources::telemetry::{Counter, FixedHistogram, HistogramSnapshot};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Query-path stage a [`QuerySpan`] belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// The whole query (root span).
    Query,
    /// Text parsing (recorded by `DrugTree::analyze`).
    Parse,
    /// Optimization / plan construction.
    Plan,
    /// Semantic-cache probe.
    CacheProbe,
    /// A direct per-source fetch.
    Fetch,
    /// A fetch routed through the cross-session coordinator
    /// (single-flight / shared batches).
    Coalesce,
    /// Local vectorized compute: columnar kernel evaluation over the
    /// activity mirror (no source round-trip at all).
    Compute,
    /// Client-side overlay work: widen, residual, similarity,
    /// substructure.
    Overlay,
    /// The finishing operator (collect / top-k / aggregate).
    Finish,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 9] = [
        Stage::Query,
        Stage::Parse,
        Stage::Plan,
        Stage::CacheProbe,
        Stage::Fetch,
        Stage::Coalesce,
        Stage::Compute,
        Stage::Overlay,
        Stage::Finish,
    ];

    /// Stable label for rendering and metric keys.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Query => "query",
            Stage::Parse => "parse",
            Stage::Plan => "plan",
            Stage::CacheProbe => "cache-probe",
            Stage::Fetch => "fetch",
            Stage::Coalesce => "coalesce",
            Stage::Compute => "compute",
            Stage::Overlay => "overlay",
            Stage::Finish => "finish",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Query => 0,
            Stage::Parse => 1,
            Stage::Plan => 2,
            Stage::CacheProbe => 3,
            Stage::Fetch => 4,
            Stage::Coalesce => 5,
            Stage::Compute => 6,
            Stage::Overlay => 7,
            Stage::Finish => 8,
        }
    }
}

/// One timed step of a query, on the virtual clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpan {
    /// Which pipeline stage this span covers.
    pub stage: Stage,
    /// Stage-specific detail: the source name for fetch/coalesce
    /// spans, `"hit"`/`"miss"` for cache probes, the query text for
    /// parse spans.
    pub detail: String,
    /// Virtual clock when the stage started.
    pub started: VirtualInstant,
    /// Virtual clock when the stage ended.
    pub ended: VirtualInstant,
    /// Virtual cost attributed to this stage. For fetches this is the
    /// cost charged to this query (its share of a coalesced batch),
    /// which under concurrent dispatch can differ from
    /// `ended - started`.
    pub actual: Duration,
    /// Planner latency estimate for this stage, when one exists.
    pub est_cost: Option<Duration>,
    /// Planner cardinality estimate, when one exists.
    pub est_rows: Option<u64>,
    /// Rows this stage produced, when meaningful.
    pub rows: Option<u64>,
    /// Numeric attributes (`requests`, `keys`, `retries`,
    /// `flights_joined`, `shared_peers`, `rows_in`, `rows_out`, …).
    pub attrs: Vec<(&'static str, u64)>,
    /// Child spans (populated on the root span only).
    pub children: Vec<QuerySpan>,
}

impl QuerySpan {
    /// A zero-length span starting (and ending) at `at`.
    pub fn new(stage: Stage, detail: impl Into<String>, at: VirtualInstant) -> QuerySpan {
        QuerySpan {
            stage,
            detail: detail.into(),
            started: at,
            ended: at,
            actual: Duration::ZERO,
            est_cost: None,
            est_rows: None,
            rows: None,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Look up a numeric attribute by key.
    pub fn attr(&self, key: &str) -> Option<u64> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

/// The completed span tree of one executed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTrace {
    /// The query, rendered in the text query language.
    pub query: String,
    /// Root span (`Stage::Query`) with one child per pipeline stage.
    pub root: QuerySpan,
    /// Virtual access cost charged to this query alone (its share of
    /// any coalesced batch). The estimate-vs-actual comparison uses
    /// this, because `est_cost` prices exactly the access.
    pub access_cost: Duration,
    /// Rows shipped from sources.
    pub rows_fetched: u64,
    /// Cache outcome (`None` when the plan had no probe).
    pub cache_hit: Option<bool>,
    /// Workload class derived from the query AST (drives per-class
    /// SLO windows and the `drugtree top` breakdown).
    pub class: QueryClass,
    /// Stable fingerprint of the plan *shape* (predicate constants
    /// stripped), or 0 when planning was never reached. Equal shapes
    /// dedupe into one slow-query-log entry.
    pub fingerprint: u64,
}

impl QueryTrace {
    /// All fetch/coalesce spans, in dispatch order.
    pub fn fetch_spans(&self) -> Vec<&QuerySpan> {
        self.root
            .children
            .iter()
            .filter(|s| matches!(s.stage, Stage::Fetch | Stage::Coalesce))
            .collect()
    }

    /// Total virtual cost attributed to a stage across the trace.
    pub fn stage_total(&self, stage: Stage) -> Duration {
        if stage == Stage::Query {
            return self.root.actual;
        }
        self.root
            .children
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.actual)
            .sum()
    }
}

/// Collects spans while the executor runs one traced query.
///
/// Constructed only on the traced path (`Executor::analyze`, or
/// `execute` with an observer installed); the null-observer fast path
/// never allocates one.
#[derive(Debug)]
pub struct TraceBuilder {
    query: String,
    class: QueryClass,
    want_plan: bool,
    plan: Option<PhysicalPlan>,
    fingerprint: u64,
    est_cost: Duration,
    est_rows: u64,
    spans: Vec<QuerySpan>,
}

impl TraceBuilder {
    /// A builder for one query. `want_plan` keeps a clone of the
    /// physical plan for `EXPLAIN ANALYZE` rendering and observers
    /// that asked for plans (skipped otherwise — the metrics-only
    /// path needs just the spans).
    pub fn new(query: &Query, want_plan: bool) -> TraceBuilder {
        TraceBuilder {
            query: query.to_string(),
            class: QueryClass::of(query),
            want_plan,
            plan: None,
            fingerprint: 0,
            est_cost: Duration::ZERO,
            est_rows: 0,
            spans: Vec::new(),
        }
    }

    /// Record the planning stage and the plan's estimates.
    pub fn record_plan(&mut self, plan: &PhysicalPlan, at: VirtualInstant) {
        self.est_cost = plan.estimated_cost;
        self.est_rows = plan.estimated_rows;
        self.fingerprint = crate::obs::plan_fingerprint(plan);
        let mut span = QuerySpan::new(Stage::Plan, "", at);
        span.est_cost = Some(plan.estimated_cost);
        span.est_rows = Some(plan.estimated_rows);
        span.attrs
            .push(("candidates", plan.candidates.len() as u64));
        // One child span per rewrite phase, summarizing its fixpoint
        // run (pass count and rules that changed the draft) so a trace
        // shows where planning effort went.
        for phase in crate::phases::PHASE_ORDER {
            let passes: Vec<_> = plan
                .rule_trace
                .iter()
                .filter(|p| p.phase == phase)
                .collect();
            if passes.is_empty() {
                continue;
            }
            let changed = passes
                .iter()
                .flat_map(|p| &p.firings)
                .filter(|f| f.outcome == crate::phases::RuleOutcome::Changed)
                .count() as u64;
            let mut child = QuerySpan::new(Stage::Plan, format!("phase {}", phase.label()), at);
            child.attrs.push(("passes", passes.len() as u64));
            child.attrs.push(("changed", changed));
            span.children.push(child);
        }
        self.spans.push(span);
        if self.want_plan {
            self.plan = Some(plan.clone());
        }
    }

    /// Append a completed span.
    pub fn push(&mut self, span: QuerySpan) {
        self.spans.push(span);
    }

    /// Close the trace against the query's final metrics.
    pub fn finish(self, metrics: &ExecMetrics) -> (QueryTrace, Option<PhysicalPlan>) {
        let mut root = QuerySpan::new(Stage::Query, "", metrics.started);
        root.ended = metrics.finished;
        root.actual = metrics.virtual_cost;
        root.est_cost = Some(self.est_cost);
        root.est_rows = Some(self.est_rows);
        root.children = self.spans;
        (
            QueryTrace {
                query: self.query,
                root,
                access_cost: metrics.charged_cost,
                rows_fetched: metrics.rows_fetched as u64,
                cache_hit: metrics.cache_hit,
                class: self.class,
                fingerprint: self.fingerprint,
            },
            self.plan,
        )
    }
}

/// Hook receiving completed traces and gesture breakdowns.
///
/// Contract: implementations must be cheap and must never block — the
/// executor calls [`Observer::on_query`] synchronously after every
/// query, from whichever session thread ran it, so an observer is
/// shared state under concurrent serving and must be `Send + Sync`.
/// Observers receive data only; they cannot alter execution, and
/// nothing they do is charged to the virtual clock.
///
/// All methods have empty default bodies, so an implementation opts
/// into exactly the signals it wants.
pub trait Observer: Send + Sync {
    /// Called after every executed query with its completed trace.
    fn on_query(&self, trace: &QueryTrace) {
        let _ = trace;
    }

    /// Whether this observer wants [`Observer::on_query_planned`]
    /// with the physical plan. Returning `true` makes the executor
    /// clone each query's plan into its trace, so leave the default
    /// `false` unless the plan is actually used (the slow-query log
    /// needs it for `EXPLAIN ANALYZE` renderings).
    fn wants_plan(&self) -> bool {
        false
    }

    /// Called instead of [`Observer::on_query`] when
    /// [`Observer::wants_plan`] returned `true` and a plan was
    /// captured. Defaults to forwarding to `on_query`.
    fn on_query_planned(&self, trace: &QueryTrace, plan: &PhysicalPlan) {
        let _ = plan;
        self.on_query(trace);
    }

    /// Called by interactive mobile sessions after each gesture with
    /// the network-vs-compute breakdown.
    fn on_gesture(&self, gesture: &GestureObservation) {
        let _ = gesture;
    }

    /// Called by the fleet scheduler at the end of a serving run,
    /// once per query class that saw traffic, with the scheduler's
    /// shed/hedge/deadline/outage rollup.
    fn on_serve_rollup(&self, counters: &crate::obs::ServeClassCounters) {
        let _ = counters;
    }
}

/// Per-gesture latency breakdown reported by mobile sessions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GestureObservation {
    /// Gesture kind label (`"pan"`, `"expand"`, …).
    pub gesture: &'static str,
    /// Result rows the gesture produced.
    pub rows: usize,
    /// Virtual time spent computing at the sources (zero for pure
    /// view changes).
    pub compute: Duration,
    /// Virtual time spent shipping the payload over the mobile link.
    pub network: Duration,
    /// Bytes shipped over the link.
    pub payload_bytes: usize,
    /// Cache outcome of the underlying query, when one ran.
    pub cache_hit: Option<bool>,
    /// Serving-fleet session id, when the session runs under a fleet
    /// scheduler (None for standalone sessions).
    pub session: Option<u32>,
    /// End-to-end latency charged to the user for this gesture:
    /// attributable compute cost plus the mobile-link transfer.
    pub charged: Duration,
    /// Virtual clock when the gesture completed (places the gesture
    /// in a rolling SLO window).
    pub at: VirtualInstant,
}

/// Per-source counters and latency distribution.
#[derive(Debug)]
pub struct PerSourceMetrics {
    /// Fetches dispatched against this source.
    pub fetches: Counter,
    /// Rows shipped by this source.
    pub rows: Counter,
    /// Per-fetch virtual latency distribution (nanoseconds).
    pub latency: FixedHistogram,
}

impl Default for PerSourceMetrics {
    fn default() -> Self {
        PerSourceMetrics {
            fetches: Counter::new(),
            rows: Counter::new(),
            latency: FixedHistogram::latency_buckets(),
        }
    }
}

/// Lock-free metrics aggregated from query traces and gesture
/// observations.
///
/// Counters and histograms are updated with relaxed atomics; the only
/// lock is a read-mostly map guarding per-source slots, taken for
/// writing once per *new* source name. Install with
/// [`DrugTreeBuilder::with_observer`] (the registry implements
/// [`Observer`] directly) and read any field at any time — snapshots
/// never stall serving threads.
///
/// [`DrugTreeBuilder::with_observer`]: ../../drugtree/builder/struct.DrugTreeBuilder.html#method.with_observer
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Queries observed.
    pub queries: Counter,
    /// Gestures observed.
    pub gestures: Counter,
    /// Semantic-cache hits.
    pub cache_hits: Counter,
    /// Semantic-cache misses.
    pub cache_misses: Counter,
    /// Fetches that joined an identical in-flight request
    /// (single-flight dedups).
    pub flights_joined: Counter,
    /// Concurrent queries that shared a coalesced batch with an
    /// observed query.
    pub shared_batch_peers: Counter,
    /// Rows shipped from sources.
    pub rows_fetched: Counter,
    /// Source round-trips issued.
    pub source_requests: Counter,
    /// Transient failures retried.
    pub retries: Counter,
    /// End-to-end virtual query latency (nanoseconds).
    pub query_latency: FixedHistogram,
    /// Keys per dispatched fetch.
    pub batch_sizes: FixedHistogram,
    /// Per-gesture compute (query) time (nanoseconds).
    pub gesture_compute: FixedHistogram,
    /// Per-gesture network (transfer) time (nanoseconds).
    pub gesture_network: FixedHistogram,
    stage_nanos: [Counter; Stage::ALL.len()],
    per_source: RwLock<BTreeMap<String, Arc<PerSourceMetrics>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            queries: Counter::new(),
            gestures: Counter::new(),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            flights_joined: Counter::new(),
            shared_batch_peers: Counter::new(),
            rows_fetched: Counter::new(),
            source_requests: Counter::new(),
            retries: Counter::new(),
            query_latency: FixedHistogram::latency_buckets(),
            batch_sizes: FixedHistogram::size_buckets(),
            gesture_compute: FixedHistogram::latency_buckets(),
            gesture_network: FixedHistogram::latency_buckets(),
            stage_nanos: std::array::from_fn(|_| Counter::new()),
            per_source: RwLock::new(BTreeMap::new()),
        }
    }

    /// The metrics slot for a source (created on first use).
    pub fn source(&self, name: &str) -> Arc<PerSourceMetrics> {
        if let Some(m) = self.per_source.read().get(name) {
            return Arc::clone(m);
        }
        Arc::clone(self.per_source.write().entry(name.to_string()).or_default())
    }

    /// Every observed source with its metrics, sorted by name.
    pub fn sources(&self) -> Vec<(String, Arc<PerSourceMetrics>)> {
        self.per_source
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Total virtual nanoseconds attributed to a stage.
    pub fn stage_nanos(&self, stage: Stage) -> u64 {
        self.stage_nanos[stage.index()].get()
    }

    /// Cache hit rate over observed queries that probed, or `None`
    /// when no query probed at all — "never probed" and "always
    /// missed" are different situations and must not both print 0.
    pub fn hit_rate(&self) -> Option<f64> {
        let hits = self.cache_hits.get();
        let total = hits + self.cache_misses.get();
        if total == 0 {
            None
        } else {
            Some(hits as f64 / total as f64)
        }
    }

    /// Fold one trace into the registry (what [`Observer::on_query`]
    /// does when the registry is installed as the observer).
    pub fn record_trace(&self, trace: &QueryTrace) {
        self.queries.incr();
        self.query_latency.record_duration(trace.root.actual);
        self.rows_fetched.add(trace.rows_fetched);
        match trace.cache_hit {
            Some(true) => self.cache_hits.incr(),
            Some(false) => self.cache_misses.incr(),
            None => {}
        }
        self.stage_nanos[Stage::Query.index()].add(nanos(trace.root.actual));
        for span in &trace.root.children {
            self.stage_nanos[span.stage.index()].add(nanos(span.actual));
            if matches!(span.stage, Stage::Fetch | Stage::Coalesce) {
                let rows = span.rows.unwrap_or(0);
                let slot = self.source(&span.detail);
                slot.fetches.incr();
                slot.rows.add(rows);
                slot.latency.record_duration(span.actual);
                self.source_requests.add(span.attr("requests").unwrap_or(0));
                self.retries.add(span.attr("retries").unwrap_or(0));
                self.flights_joined
                    .add(span.attr("flights_joined").unwrap_or(0));
                self.shared_batch_peers
                    .add(span.attr("shared_peers").unwrap_or(0));
                if let Some(keys) = span.attr("keys") {
                    self.batch_sizes.record(keys);
                }
            }
        }
    }

    /// Fold one gesture observation into the registry.
    pub fn record_gesture(&self, gesture: &GestureObservation) {
        self.gestures.incr();
        self.gesture_compute.record_duration(gesture.compute);
        self.gesture_network.record_duration(gesture.network);
    }
}

impl Observer for MetricsRegistry {
    fn on_query(&self, trace: &QueryTrace) {
        self.record_trace(trace);
    }

    fn on_gesture(&self, gesture: &GestureObservation) {
        self.record_gesture(gesture);
    }
}

fn nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// The result of `EXPLAIN ANALYZE`: one traced execution with its
/// plan, trace, and result.
#[derive(Debug, Clone)]
pub struct AnalyzedResult {
    /// The physical plan that ran.
    pub plan: PhysicalPlan,
    /// The completed span tree.
    pub trace: QueryTrace,
    /// The query's rows and metrics.
    pub result: QueryResult,
}

impl AnalyzedResult {
    /// Relative estimate error of the access: `|est - actual| /
    /// actual` against the cost charged to this query. `None` when no
    /// access cost was charged (cache hit, proved empty, materialized
    /// view), where the miss-path estimate has no observed
    /// counterpart.
    pub fn access_error(&self) -> Option<f64> {
        access_error(&self.plan, &self.trace)
    }

    /// Multi-line `EXPLAIN ANALYZE` rendering: the plan's EXPLAIN text
    /// with `actual:` columns appended next to each estimated line,
    /// followed by the per-stage trace breakdown.
    ///
    /// The plain [`PhysicalPlan::explain`] rendering is embedded
    /// unchanged, so tooling that parses EXPLAIN keeps working.
    pub fn render(&self) -> String {
        render_analyzed(&self.plan, &self.trace)
    }
}

/// [`AnalyzedResult::access_error`] for a bare plan + trace pair.
fn access_error(plan: &PhysicalPlan, trace: &QueryTrace) -> Option<f64> {
    let actual = trace.access_cost.as_secs_f64();
    if actual <= 0.0 {
        return None;
    }
    Some((plan.estimated_cost.as_secs_f64() - actual).abs() / actual)
}

/// The `EXPLAIN ANALYZE` rendering for a plan + trace pair — the body
/// of [`AnalyzedResult::render`], exposed separately so the slow-query
/// log can render entries from an observed plan without a
/// [`QueryResult`] in hand.
pub fn render_analyzed(plan: &PhysicalPlan, trace: &QueryTrace) -> String {
    let mut fetch_spans: Vec<&QuerySpan> = trace.fetch_spans();
    let mut out = String::new();
    for line in plan.explain().lines() {
        out.push_str(line);
        let trimmed = line.trim_start();
        if trimmed.starts_with("Plan: ") {
            let _ = write!(
                out,
                " | actual: cost={:?} rows={}",
                trace.access_cost, trace.rows_fetched
            );
            match access_error(plan, trace) {
                Some(err) => {
                    let _ = write!(out, " err={err:.2}");
                }
                None => {
                    if trace.cache_hit == Some(true) {
                        out.push_str(" (cache hit)");
                    }
                }
            }
        } else if trimmed.starts_with("CacheProbe ") {
            match trace.cache_hit {
                Some(true) => out.push_str(" | actual: hit"),
                Some(false) => out.push_str(" | actual: miss"),
                None => {}
            }
        } else if let Some(source) = fetch_line_source(trimmed) {
            match take_span(&mut fetch_spans, source) {
                Some(span) => {
                    let _ = write!(
                        out,
                        " | actual: cost={:?} rows={} requests={}",
                        span.actual,
                        span.rows.unwrap_or(0),
                        span.attr("requests").unwrap_or(0),
                    );
                    if span.stage == Stage::Coalesce {
                        let _ = write!(
                            out,
                            " flights_joined={} shared_peers={}",
                            span.attr("flights_joined").unwrap_or(0),
                            span.attr("shared_peers").unwrap_or(0),
                        );
                    }
                }
                None => out.push_str(" | actual: not executed"),
            }
        }
        out.push('\n');
    }
    out.push_str("  Trace:\n");
    render_span(&mut out, &trace.root, 2);
    out
}

/// The source name of an EXPLAIN `SourceFetch` line, if it is one.
fn fetch_line_source(trimmed: &str) -> Option<&str> {
    let rest = trimmed
        .strip_prefix("miss-> ")
        .unwrap_or(trimmed)
        .strip_prefix("SourceFetch source=")?;
    Some(rest.split_whitespace().next().unwrap_or(rest))
}

/// Pop the first pending fetch span for `source` (plans fetch each
/// source at most once, but dispatch order must still match).
fn take_span<'a>(spans: &mut Vec<&'a QuerySpan>, source: &str) -> Option<&'a QuerySpan> {
    let idx = spans.iter().position(|s| s.detail == source)?;
    Some(spans.remove(idx))
}

fn render_span(out: &mut String, span: &QuerySpan, depth: usize) {
    let _ = write!(
        out,
        "{:width$}{}",
        "",
        span.stage.label(),
        width = depth * 2
    );
    if !span.detail.is_empty() {
        let _ = write!(out, " {}", span.detail);
    }
    let _ = write!(out, ": actual={:?}", span.actual);
    if let Some(est) = span.est_cost {
        let _ = write!(out, " est={est:?}");
    }
    if let Some(rows) = span.rows {
        let _ = write!(out, " rows={rows}");
    }
    for (k, v) in &span.attrs {
        let _ = write!(out, " {k}={v}");
    }
    out.push('\n');
    for child in &span.children {
        render_span(out, child, depth + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_sources::clock::VirtualClock;

    fn span(stage: Stage, detail: &str, actual_ms: u64) -> QuerySpan {
        let clock = VirtualClock::new();
        let mut s = QuerySpan::new(stage, detail, clock.now());
        s.actual = Duration::from_millis(actual_ms);
        s
    }

    fn trace_with(children: Vec<QuerySpan>, cache_hit: Option<bool>) -> QueryTrace {
        let clock = VirtualClock::new();
        let mut root = QuerySpan::new(Stage::Query, "", clock.now());
        root.actual = children.iter().map(|s| s.actual).sum();
        root.children = children;
        QueryTrace {
            query: "activities in tree".into(),
            root,
            access_cost: Duration::from_millis(12),
            rows_fetched: 3,
            cache_hit,
            class: QueryClass::Listing,
            fingerprint: 0,
        }
    }

    #[test]
    fn stage_totals_sum_spans() {
        let mut fetch = span(Stage::Fetch, "assay-sim", 12);
        fetch.rows = Some(3);
        fetch.attrs.push(("requests", 2));
        fetch.attrs.push(("keys", 4));
        let t = trace_with(
            vec![span(Stage::Plan, "", 0), fetch, span(Stage::Overlay, "", 0)],
            Some(false),
        );
        assert_eq!(t.stage_total(Stage::Fetch), Duration::from_millis(12));
        assert_eq!(t.stage_total(Stage::Overlay), Duration::ZERO);
        assert_eq!(t.fetch_spans().len(), 1);
        assert_eq!(t.fetch_spans()[0].attr("keys"), Some(4));
        assert_eq!(t.fetch_spans()[0].attr("absent"), None);
    }

    #[test]
    fn registry_folds_traces_and_gestures() {
        let r = MetricsRegistry::new();
        let mut fetch = span(Stage::Fetch, "assay-sim", 12);
        fetch.rows = Some(3);
        fetch.attrs.push(("requests", 2));
        fetch.attrs.push(("keys", 4));
        fetch.attrs.push(("flights_joined", 1));
        r.record_trace(&trace_with(vec![fetch], Some(false)));
        r.record_trace(&trace_with(vec![], Some(true)));
        assert_eq!(r.queries.get(), 2);
        assert_eq!(r.cache_hits.get(), 1);
        assert_eq!(r.cache_misses.get(), 1);
        let rate = r.hit_rate().expect("two probes observed");
        assert!((rate - 0.5).abs() < 1e-9);
        assert_eq!(r.rows_fetched.get(), 6, "both traces report 3");
        assert_eq!(r.source_requests.get(), 2);
        assert_eq!(r.flights_joined.get(), 1);
        assert_eq!(r.stage_nanos(Stage::Fetch), 12_000_000);
        let sources = r.sources();
        assert_eq!(sources.len(), 1);
        assert_eq!(sources[0].0, "assay-sim");
        assert_eq!(sources[0].1.rows.get(), 3);
        assert_eq!(r.batch_sizes.snapshot().count, 1);

        r.record_gesture(&GestureObservation {
            gesture: "expand",
            rows: 3,
            compute: Duration::from_millis(12),
            network: Duration::from_millis(40),
            payload_bytes: 300,
            cache_hit: Some(false),
            session: None,
            charged: Duration::from_millis(52),
            at: VirtualClock::new().now(),
        });
        assert_eq!(r.gestures.get(), 1);
        assert_eq!(r.gesture_network.snapshot().sum, 40_000_000);
    }

    #[test]
    fn fetch_line_sources_parse() {
        assert_eq!(
            fetch_line_source("miss-> SourceFetch source=assay-sim keys=2"),
            Some("assay-sim")
        );
        assert_eq!(fetch_line_source("SourceFetch source=a keys=1"), Some("a"));
        assert_eq!(fetch_line_source("Residual: true"), None);
    }
}
