//! Error type for the query layer.

use std::fmt;

/// Errors from parsing, planning, or executing queries.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a
/// wildcard arm so new failure kinds can be added without a breaking
/// release. Wrapped lower-layer errors are reachable through
/// [`std::error::Error::source`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// Query text could not be parsed.
    Parse {
        /// Byte offset of the error.
        offset: usize,
        /// What was expected.
        message: String,
    },
    /// The query references an unknown tree node.
    UnknownNode(String),
    /// The query references an unknown column.
    UnknownColumn(String),
    /// The query references an unknown ligand.
    UnknownLigand(String),
    /// A similarity reference's SMILES failed to parse.
    BadSimilarityReference(String),
    /// A substructure pattern is neither a known ligand nor valid SMILES.
    BadSubstructurePattern(String),
    /// Plan construction or execution failed internally.
    Plan(String),
    /// An unknown optimizer rule name was passed to
    /// [`crate::optimizer::OptimizerConfig::ablate`].
    UnknownRule(String),
    /// The plan violated structural invariants (see
    /// [`crate::validate::PlanValidator`]).
    Invariant(Vec<crate::validate::InvariantViolation>),
    /// Underlying store failure.
    Store(drugtree_store::StoreError),
    /// Underlying source failure.
    Source(drugtree_sources::SourceError),
    /// Underlying tree failure.
    Phylo(drugtree_phylo::PhyloError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            QueryError::UnknownNode(n) => write!(f, "unknown tree node {n:?}"),
            QueryError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            QueryError::UnknownLigand(l) => write!(f, "unknown ligand {l:?}"),
            QueryError::BadSimilarityReference(s) => {
                write!(
                    f,
                    "similarity reference is not valid SMILES or ligand id: {s:?}"
                )
            }
            QueryError::BadSubstructurePattern(s) => {
                write!(
                    f,
                    "substructure pattern is not valid SMILES or ligand id: {s:?}"
                )
            }
            QueryError::Plan(msg) => write!(f, "planning error: {msg}"),
            QueryError::UnknownRule(rule) => write!(f, "unknown optimizer rule {rule:?}"),
            QueryError::Invariant(violations) => {
                write!(f, "plan violates {} invariant(s):", violations.len())?;
                for v in violations {
                    write!(f, "\n  {v}")?;
                }
                Ok(())
            }
            QueryError::Store(e) => write!(f, "store error: {e}"),
            QueryError::Source(e) => write!(f, "source error: {e}"),
            QueryError::Phylo(e) => write!(f, "tree error: {e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Store(e) => Some(e),
            QueryError::Source(e) => Some(e),
            QueryError::Phylo(e) => Some(e),
            _ => None,
        }
    }
}

impl From<drugtree_store::StoreError> for QueryError {
    fn from(e: drugtree_store::StoreError) -> Self {
        QueryError::Store(e)
    }
}

impl From<drugtree_sources::SourceError> for QueryError {
    fn from(e: drugtree_sources::SourceError) -> Self {
        QueryError::Source(e)
    }
}

impl From<drugtree_phylo::PhyloError> for QueryError {
    fn from(e: drugtree_phylo::PhyloError) -> Self {
        QueryError::Phylo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = QueryError::Parse {
            offset: 5,
            message: "expected scope".into(),
        };
        assert!(e.to_string().contains("byte 5"));
        assert!(QueryError::UnknownNode("x".into())
            .to_string()
            .contains('x'));
    }
}
