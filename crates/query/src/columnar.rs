//! The columnar activity mirror: local column store for the overlay.
//!
//! [`ActivityColumns`] materializes every assay source's rows once into
//! a [`ColumnarTable`] in the activity-half layout, sorted by Euler-tour
//! leaf rank. With the mirror fresh, the optimizer's interval rewrite
//! stops being a per-leaf key gather and becomes a binary-searched row
//! *range* over contiguous typed buffers ([`Access::ColumnarScan`]),
//! and predicate leaves run as vectorized bitmap kernels — the
//! "sub-millisecond local compute" half of the paper's latency story,
//! with the row path kept byte-identical behind the same executor API
//! (design decision D12 in DESIGN.md).
//!
//! The build pass replicates the fetch path's row pipeline exactly —
//! [`unify_assay_row`], cross-source most-recent dedupe, rank sort — so
//! a columnar scan plus the executor's unchanged residual/finish stages
//! returns the same rows a federated fetch would. Staleness is
//! detected the same way the materialized aggregate view does it:
//! record counts per source at build time.
//!
//! [`Access::ColumnarScan`]: crate::plan::Access::ColumnarScan

use crate::dataset::{activity_half_schema, unify_assay_row, Dataset};
use crate::exec::dedupe_most_recent;
use crate::Result;
use drugtree_phylo::index::LeafInterval;
use drugtree_sources::source::{FetchRequest, SourceKind};
use drugtree_store::columnar::ColumnarTable;
use drugtree_store::value::Value;
use std::ops::Range;
use std::time::Duration;

/// All activity rows, column-oriented and rank-sorted.
#[derive(Debug, Clone)]
pub struct ActivityColumns {
    table: ColumnarTable,
    /// (source name, record count) at build time, for staleness checks.
    source_counts: Vec<(String, usize)>,
    /// Simulated cost of the build scan.
    pub build_cost: Duration,
}

impl ActivityColumns {
    /// Build the mirror by scanning every assay source once. Rows run
    /// through the same unification, cross-source dedupe, and rank
    /// sort as the executor's fetch path, so kernel scans over the
    /// mirror select exactly the rows a fetch would ship.
    pub fn build(dataset: &Dataset) -> Result<ActivityColumns> {
        let sources = dataset.registry.by_kind(SourceKind::Assay);
        let mut rows: Vec<Vec<Value>> = Vec::new();
        let mut build_cost = Duration::ZERO;
        let mut source_counts = Vec::new();
        for source in &sources {
            let resp = source.fetch(&FetchRequest::scan())?;
            build_cost += resp.cost;
            source_counts.push((source.name().to_string(), source.record_count()));
            for raw in &resp.rows {
                if let Some(row) = unify_assay_row(dataset, raw) {
                    rows.push(row);
                }
            }
        }
        // Mirror the fetch path's conflict resolution: with more than
        // one source, identical (rank, ligand, type) measurements keep
        // the most recent year.
        if sources.len() > 1 {
            rows = dedupe_most_recent(rows);
        }
        rows.sort_by_key(|r| r[0].as_int().unwrap_or(i64::MAX));
        let mut table = ColumnarTable::from_rows("activity", activity_half_schema(), rows)?;
        table.declare_sorted("leaf_rank")?;
        Ok(ActivityColumns {
            table,
            source_counts,
            build_cost,
        })
    }

    /// True when no assay source has changed since the build.
    pub fn is_fresh(&self, dataset: &Dataset) -> bool {
        dataset.registry.by_kind(SourceKind::Assay).iter().all(|s| {
            self.source_counts
                .iter()
                .any(|(name, n)| name == s.name() && *n == s.record_count())
        })
    }

    /// Number of mirrored activity rows.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when no rows are mirrored.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The contiguous row range covering a leaf interval — the
    /// zero-gather form of the optimizer's interval rewrite.
    pub fn rows_in(&self, interval: LeafInterval) -> Result<Range<usize>> {
        Ok(self
            .table
            .range_of_i64(i64::from(interval.lo), i64::from(interval.hi))?)
    }

    /// The underlying columnar table (activity-half schema).
    pub fn table(&self) -> &ColumnarTable {
        &self.table
    }

    /// Bytes held by the typed segments (approximate, for reporting).
    pub fn memory_bytes(&self) -> usize {
        // 8 bytes per numeric cell, 4 per dictionary code; validity is
        // 1 bit per cell. Close enough for capacity planning output.
        let per_row: usize = self
            .table
            .schema()
            .columns()
            .iter()
            .map(|c| match c.ty {
                drugtree_store::value::ValueType::Text => 4,
                _ => 8,
            })
            .sum();
        self.table.len() * (per_row + self.table.schema().arity().div_ceil(8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_fixtures::small_dataset;
    use drugtree_sources::source::SourceCapabilities;
    use drugtree_store::expr::{CompareOp, Predicate};

    fn mirror_and_dataset() -> (ActivityColumns, Dataset) {
        let d = small_dataset(SourceCapabilities::full());
        let c = ActivityColumns::build(&d).unwrap();
        (c, d)
    }

    #[test]
    fn build_mirrors_all_activity_rows() {
        let (c, d) = mirror_and_dataset();
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert!(c.build_cost > Duration::ZERO);
        assert_eq!(c.table().sorted_by(), Some(0));
        // Rank-sorted: the whole tree is one contiguous range.
        let all = c.rows_in(d.index.interval(d.tree.root())).unwrap();
        assert_eq!(all, 0..4);
    }

    #[test]
    fn interval_maps_to_contiguous_range() {
        let (c, d) = mirror_and_dataset();
        let clade_a = d.index.by_label("cladeA").unwrap();
        let range = c.rows_in(d.index.interval(clade_a)).unwrap();
        // cladeA holds P1 (2 records) and P2 (1 record); P4 is empty.
        assert_eq!(range.len(), 3);
        for i in range {
            let rank = c.table().get_row(i)[0].as_int().unwrap();
            assert!(d.index.interval(clade_a).contains_rank(rank as u32));
        }
    }

    #[test]
    fn kernels_select_matching_rows() {
        let (c, _) = mirror_and_dataset();
        let pred = Predicate::cmp("p_activity", CompareOp::Ge, 8.0)
            .bind(c.table().schema())
            .unwrap();
        let sel = c.table().eval(&pred, 0..c.len());
        let expect: Vec<usize> = (0..c.len())
            .filter(|&i| pred.matches(&c.table().get_row(i)))
            .collect();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), expect);
        assert!(!expect.is_empty());
    }

    #[test]
    fn staleness_detection() {
        let (c, d) = mirror_and_dataset();
        assert!(c.is_fresh(&d));
        let mut stale = c.clone();
        stale.source_counts[0].1 += 1;
        assert!(!stale.is_fresh(&d));
    }

    #[test]
    fn memory_accounting_scales_with_rows() {
        let (c, _) = mirror_and_dataset();
        assert!(c.memory_bytes() >= c.len() * 8);
    }
}
