//! Plan-invariant validation: defense-in-depth for the rewrite
//! pipeline.
//!
//! Every optimizer rule preserves a set of structural invariants on the
//! [`PhysicalPlan`] it helps construct; nothing used to *check* them,
//! so a bad rule interaction could silently corrupt results (and every
//! E4 ablation number with them). [`PlanValidator`] walks a finished
//! plan and verifies each invariant against the live [`Dataset`]:
//!
//! * **interval-bounds** — the resolved leaf interval lies inside the
//!   tree index (`lo`, `hi` ≤ leaf count).
//! * **fetch-keys-sorted-deduped** — every fetch's key list is strictly
//!   increasing (sorted, no duplicates), so batching is deterministic
//!   and cache rows stay mergeable.
//! * **fetch-source-resolves** — every fetch names a registered source.
//! * **fetch-batch-limit** — the per-request key count the plan
//!   resolved (`FetchPlan::max_batch`) respects the source's live
//!   capability, and non-batched fetches promise singleton requests.
//! * **pushdown-capability** — pushdown predicates reference only
//!   columns that physically exist in the remote assay schema and are
//!   evaluable by the target source's declared capabilities.
//! * **pruning-consistency** — statistics-pruned leaves never reappear
//!   in a fetch key set: every key maps to a leaf inside the interval,
//!   and key count plus pruned count equals the interval's
//!   protein-bearing leaf count.
//! * **cache-key-consistency** — a cache probe's predicate key equals
//!   the miss-path pushdown plus (at most) the statistics-pruning
//!   `p_activity >=` bound; anything else would reuse cached entries
//!   under the wrong key.
//! * **matview-purity** — the materialized view only answers pure
//!   aggregates: no residual predicate, no similarity, no substructure.
//! * **columnar-kernel-columns** — a columnar scan's pushdown
//!   references only columns of the activity-half mirror schema, so
//!   every predicate leaf has a vectorized kernel to run on.
//! * **finish-shape** — the finish operator addresses real columns of
//!   the unified schema and in-bounds child intervals.
//! * **cost-choice-minimal** — within every candidate group the
//!   cost-based planner enumerated, exactly one alternative is chosen
//!   and its estimate is minimal among the group.
//! * **cost-estimates-sane** — every enumerated candidate's cost is
//!   finite and non-negative.
//!
//! Two further *serving* invariants guard the concurrent read path at
//! dispatch time rather than plan time: **coalesce-batch-limit** (a
//! coalesced cross-session batch still respects the source's
//! `max_batch` per request) and **flight-predicate-uniform**
//! (coalescing never merges fetches with different pushdown
//! predicates). They are checked by
//! [`drugtree_sources::serve::validate_coalesced`] on every dispatched
//! batch and lift into [`InvariantViolation`] via `From`.
//!
//! Violations come back as structured [`InvariantViolation`]s (rule
//! name, plan path, explanation) rather than panics, so the executor
//! can surface them as a [`QueryError::Invariant`] and EXPLAIN output
//! stays printable for debugging. The optimizer runs the validator on
//! every plan it emits under `cfg(debug_assertions)`; the executor
//! runs it unconditionally when [`OptimizerConfig::validate`] is set,
//! so benches can measure its cost.
//!
//! [`OptimizerConfig::validate`]: crate::optimizer::OptimizerConfig
//! [`QueryError::Invariant`]: crate::QueryError

use crate::dataset::{unified_schema, Dataset};
use crate::plan::{fmt_pred, Access, FetchPlan, Finish, PhysicalPlan};
use drugtree_store::expr::{CompareOp, Predicate};
use std::fmt;

/// One violated plan invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The invariant's rule name (one of the `RULE_*` constants).
    pub rule: &'static str,
    /// Where in the plan the violation sits, e.g. `access.on_miss[0]`.
    pub path: String,
    /// Human-readable explanation of what is wrong.
    pub explanation: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.rule, self.path, self.explanation)
    }
}

/// Rule name: leaf interval inside the tree index bounds.
pub const RULE_INTERVAL_BOUNDS: &str = "interval-bounds";
/// Rule name: fetch keys strictly increasing (sorted and deduplicated).
pub const RULE_KEYS_SORTED: &str = "fetch-keys-sorted-deduped";
/// Rule name: fetch source names resolve in the registry.
pub const RULE_SOURCE_RESOLVES: &str = "fetch-source-resolves";
/// Rule name: resolved batch size respects the source capability.
pub const RULE_BATCH_LIMIT: &str = "fetch-batch-limit";
/// Rule name: pushdown predicates evaluable by the target source.
pub const RULE_PUSHDOWN_CAPABILITY: &str = "pushdown-capability";
/// Rule name: pruned leaves absent from fetch key sets.
pub const RULE_PRUNING: &str = "pruning-consistency";
/// Rule name: cache probe key consistent with the miss-path pushdown.
pub const RULE_CACHE_KEY: &str = "cache-key-consistency";
/// Rule name: materialized view only answers pure aggregates.
pub const RULE_MATVIEW: &str = "matview-purity";
/// Rule name: columnar pushdown columns exist in the mirror schema.
pub const RULE_COLUMNAR: &str = "columnar-kernel-columns";
/// Rule name: finish operator addresses real columns and intervals.
pub const RULE_FINISH: &str = "finish-shape";
/// Rule name: chosen candidate's estimate minimal within its group.
pub const RULE_COST_CHOICE: &str = "cost-choice-minimal";
/// Rule name: candidate cost estimates finite and non-negative.
pub const RULE_COST_SANE: &str = "cost-estimates-sane";
/// Rule name: the Canonicalize phase's output is a fixpoint of every
/// enabled normalization step.
pub const RULE_CANONICAL_FORM: &str = "canonical-form";

pub use drugtree_sources::serve::{RULE_COALESCE_BATCH, RULE_FLIGHT_PREDICATE};

use drugtree_sources::serve::ServeViolation;

impl From<ServeViolation> for InvariantViolation {
    /// Lift a runtime serving violation (coalesced batch shape,
    /// single-flight keying) into the plan-invariant vocabulary, so
    /// the differential oracle and CI report one violation type.
    fn from(v: ServeViolation) -> InvariantViolation {
        InvariantViolation {
            rule: v.rule,
            path: "serve".to_string(),
            explanation: v.explanation,
        }
    }
}

/// Walks a [`PhysicalPlan`] and checks every structural invariant
/// against the dataset it will execute on.
pub struct PlanValidator<'a> {
    dataset: &'a Dataset,
}

impl<'a> PlanValidator<'a> {
    /// A validator bound to the dataset the plan targets.
    pub fn new(dataset: &'a Dataset) -> PlanValidator<'a> {
        PlanValidator { dataset }
    }

    /// Check every invariant; `Ok(())` when the plan is well-formed.
    pub fn validate(&self, plan: &PhysicalPlan) -> Result<(), Vec<InvariantViolation>> {
        let violations = self.check(plan);
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }

    /// Check every invariant, collecting all violations (never panics,
    /// never stops at the first finding).
    pub fn check(&self, plan: &PhysicalPlan) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        self.check_interval(plan, &mut out);
        self.check_fetches(plan, &mut out);
        self.check_cache_key(plan, &mut out);
        self.check_matview(plan, &mut out);
        self.check_columnar(plan, &mut out);
        self.check_finish(plan, &mut out);
        self.check_costs(plan, &mut out);
        out
    }

    /// Cost-based plan-choice invariants: candidates (when enumerated)
    /// carry sane estimates, and within each group exactly one is
    /// chosen with the minimal cost. Fixed-pipeline plans enumerate no
    /// candidates and pass trivially.
    fn check_costs(&self, plan: &PhysicalPlan, out: &mut Vec<InvariantViolation>) {
        let mut groups: Vec<&str> = plan.candidates.iter().map(|c| c.group.as_str()).collect();
        groups.sort_unstable();
        groups.dedup();
        for (i, c) in plan.candidates.iter().enumerate() {
            if !c.cost_secs.is_finite() || c.cost_secs < 0.0 {
                out.push(InvariantViolation {
                    rule: RULE_COST_SANE,
                    path: format!("candidates[{i}]"),
                    explanation: format!(
                        "candidate {:?}/{:?} has cost {}, expected finite and >= 0",
                        c.group, c.label, c.cost_secs
                    ),
                });
            }
        }
        for group in groups {
            let members: Vec<_> = plan
                .candidates
                .iter()
                .filter(|c| c.group == group)
                .collect();
            let chosen: Vec<_> = members.iter().filter(|c| c.chosen).collect();
            if chosen.len() != 1 {
                out.push(InvariantViolation {
                    rule: RULE_COST_CHOICE,
                    path: format!("candidates[{group}]"),
                    explanation: format!(
                        "group has {} chosen alternatives, expected exactly 1",
                        chosen.len()
                    ),
                });
                continue;
            }
            let winner = chosen[0];
            for m in &members {
                if winner.cost_secs > m.cost_secs {
                    out.push(InvariantViolation {
                        rule: RULE_COST_CHOICE,
                        path: format!("candidates[{group}]"),
                        explanation: format!(
                            "chosen {:?} costs {} but {:?} costs {}",
                            winner.label, winner.cost_secs, m.label, m.cost_secs
                        ),
                    });
                }
            }
        }
    }

    fn check_interval(&self, plan: &PhysicalPlan, out: &mut Vec<InvariantViolation>) {
        let leaves = self.dataset.leaf_count() as u32;
        for (name, bound) in [("lo", plan.interval.lo), ("hi", plan.interval.hi)] {
            if bound > leaves {
                out.push(InvariantViolation {
                    rule: RULE_INTERVAL_BOUNDS,
                    path: "interval".into(),
                    explanation: format!(
                        "interval {name}={bound} exceeds the tree's {leaves} leaves"
                    ),
                });
            }
        }
    }

    fn check_fetches(&self, plan: &PhysicalPlan, out: &mut Vec<InvariantViolation>) {
        for (path, fetch) in fetches_of(&plan.access) {
            self.check_keys_sorted(&path, fetch, out);
            self.check_pruning(plan, &path, fetch, out);

            let Ok(source) = self.dataset.registry.by_name(&fetch.source) else {
                out.push(InvariantViolation {
                    rule: RULE_SOURCE_RESOLVES,
                    path,
                    explanation: format!("source {:?} is not registered", fetch.source),
                });
                continue;
            };
            let caps = source.capabilities();

            // Batch contract: the plan records the per-request key
            // count it resolved; a batched fetch must stay within the
            // source's live capability, a non-batched fetch promises
            // singleton requests.
            if fetch.max_batch == 0 {
                out.push(InvariantViolation {
                    rule: RULE_BATCH_LIMIT,
                    path: path.clone(),
                    explanation: "resolved batch size of zero can issue no requests".into(),
                });
            } else if fetch.batched && fetch.max_batch > caps.max_batch {
                out.push(InvariantViolation {
                    rule: RULE_BATCH_LIMIT,
                    path: path.clone(),
                    explanation: format!(
                        "plan batches {} keys per request but source {:?} accepts at most {}",
                        fetch.max_batch, fetch.source, caps.max_batch
                    ),
                });
            } else if !fetch.batched && fetch.max_batch != 1 {
                out.push(InvariantViolation {
                    rule: RULE_BATCH_LIMIT,
                    path: path.clone(),
                    explanation: format!(
                        "non-batched fetch must issue singleton requests, not {} keys",
                        fetch.max_batch
                    ),
                });
            }

            if let Some(pred) = &fetch.pushdown {
                for col in pred.columns() {
                    if !crate::optimizer::REMOTE_COLUMNS.contains(&col) {
                        out.push(InvariantViolation {
                            rule: RULE_PUSHDOWN_CAPABILITY,
                            path: path.clone(),
                            explanation: format!(
                                "pushdown references {col:?}, which does not exist in the \
                                 remote assay schema"
                            ),
                        });
                    }
                }
                if !caps.supports_predicate(pred) {
                    out.push(InvariantViolation {
                        rule: RULE_PUSHDOWN_CAPABILITY,
                        path: path.clone(),
                        explanation: format!(
                            "source {:?} cannot evaluate pushdown `{}` (eq_pushdown={}, \
                             range_pushdown={})",
                            fetch.source,
                            fmt_pred(pred),
                            caps.eq_pushdown,
                            caps.range_pushdown
                        ),
                    });
                }
            }
        }
    }

    fn check_keys_sorted(&self, path: &str, fetch: &FetchPlan, out: &mut Vec<InvariantViolation>) {
        for pair in fetch.keys.windows(2) {
            if pair[0] >= pair[1] {
                out.push(InvariantViolation {
                    rule: RULE_KEYS_SORTED,
                    path: path.to_string(),
                    explanation: format!(
                        "keys are not strictly increasing at {} >= {}",
                        pair[0], pair[1]
                    ),
                });
                // One finding per fetch is enough.
                break;
            }
        }
    }

    fn check_pruning(
        &self,
        plan: &PhysicalPlan,
        path: &str,
        fetch: &FetchPlan,
        out: &mut Vec<InvariantViolation>,
    ) {
        let in_scope = self.dataset.accessions_in(plan.interval);
        for key in &fetch.keys {
            let rank = key
                .as_text()
                .and_then(|acc| self.dataset.rank_of_accession(acc));
            match rank {
                Some(r) if plan.interval.contains_rank(r) => {}
                Some(r) => out.push(InvariantViolation {
                    rule: RULE_PRUNING,
                    path: path.to_string(),
                    explanation: format!(
                        "key {key} addresses leaf {r}, outside the scope interval \
                         [{}, {})",
                        plan.interval.lo, plan.interval.hi
                    ),
                }),
                None => out.push(InvariantViolation {
                    rule: RULE_PRUNING,
                    path: path.to_string(),
                    explanation: format!("key {key} maps to no leaf of the tree"),
                }),
            }
        }
        // A pruned leaf that "reappears" inflates the key count past
        // what the interval can supply after pruning.
        if fetch.keys.len() + plan.pruned_leaves != in_scope.len() {
            out.push(InvariantViolation {
                rule: RULE_PRUNING,
                path: path.to_string(),
                explanation: format!(
                    "{} keys + {} pruned leaves != {} protein-bearing leaves in scope",
                    fetch.keys.len(),
                    plan.pruned_leaves,
                    in_scope.len()
                ),
            });
        }
    }

    fn check_cache_key(&self, plan: &PhysicalPlan, out: &mut Vec<InvariantViolation>) {
        let Access::CacheProbe {
            pushdown, on_miss, ..
        } = &plan.access
        else {
            return;
        };
        let Some(first) = on_miss.first() else {
            out.push(InvariantViolation {
                rule: RULE_CACHE_KEY,
                path: "access".into(),
                explanation: "cache probe has no miss path to fill the cache".into(),
            });
            return;
        };
        // All miss-path fetches must carry the same pushdown: the probe
        // has a single predicate key.
        for (i, f) in on_miss.iter().enumerate().skip(1) {
            if f.pushdown != first.pushdown {
                out.push(InvariantViolation {
                    rule: RULE_CACHE_KEY,
                    path: format!("access.on_miss[{i}]"),
                    explanation: format!(
                        "pushdown {} differs from on_miss[0]'s {}",
                        fmt_opt_pred(&f.pushdown),
                        fmt_opt_pred(&first.pushdown)
                    ),
                });
            }
        }
        // The probe key must be exactly the fetch pushdown plus, at
        // most, the statistics-pruning potency bound. A looser key
        // would answer later probes with rows the fetch never shipped;
        // a stricter key silently disables reuse.
        let probe = conjuncts_owned(pushdown.as_ref());
        let fetched = conjuncts_owned(first.pushdown.as_ref());
        for c in &fetched {
            if !probe.contains(c) {
                out.push(InvariantViolation {
                    rule: RULE_CACHE_KEY,
                    path: "access.pushdown".into(),
                    explanation: format!(
                        "probe key is missing the miss-path conjunct `{}`; cached rows \
                         would be reused under a looser key",
                        fmt_pred(c)
                    ),
                });
            }
        }
        for c in &probe {
            if !fetched.contains(c) && !is_pruning_bound(c) {
                out.push(InvariantViolation {
                    rule: RULE_CACHE_KEY,
                    path: "access.pushdown".into(),
                    explanation: format!(
                        "probe key conjunct `{}` is neither fetched remotely nor a \
                         statistics-pruning p_activity bound",
                        fmt_pred(c)
                    ),
                });
            }
        }
    }

    fn check_matview(&self, plan: &PhysicalPlan, out: &mut Vec<InvariantViolation>) {
        if plan.access != Access::MaterializedView {
            return;
        }
        if plan.residual != Predicate::True {
            out.push(InvariantViolation {
                rule: RULE_MATVIEW,
                path: "access".into(),
                explanation: format!(
                    "materialized view cannot answer under residual predicate `{}`",
                    fmt_pred(&plan.residual)
                ),
            });
        }
        if plan.similarity.is_some() || plan.substructure.is_some() {
            out.push(InvariantViolation {
                rule: RULE_MATVIEW,
                path: "access".into(),
                explanation: "materialized view cannot answer under structural constraints".into(),
            });
        }
        if !matches!(plan.finish, Finish::AggregateChildren { .. }) {
            out.push(InvariantViolation {
                rule: RULE_MATVIEW,
                path: "finish".into(),
                explanation: "materialized view only answers per-child aggregates".into(),
            });
        }
        // The view stores whole-clade aggregates: a scope interval
        // that only partially covers its clade needs per-row access.
        // (Bounds-checked so a malformed scope_node cannot panic.)
        if plan.scope_node.index() < self.dataset.index.node_count() {
            let clade = self.dataset.index.interval(plan.scope_node);
            if plan.interval != clade {
                out.push(InvariantViolation {
                    rule: RULE_MATVIEW,
                    path: "interval".into(),
                    explanation: format!(
                        "materialized view answers whole clades, but scope interval \
                         [{}, {}) covers clade n{} = [{}, {}) only partially",
                        plan.interval.lo, plan.interval.hi, plan.scope_node.0, clade.lo, clade.hi
                    ),
                });
            }
        }
    }

    /// A columnar scan's pushdown runs as bitmap kernels over the
    /// activity mirror, so every column it names must exist in the
    /// activity-half schema (binding would fail at execution time,
    /// but the validator reports it as a structured violation first).
    fn check_columnar(&self, plan: &PhysicalPlan, out: &mut Vec<InvariantViolation>) {
        let Access::ColumnarScan { pushdown } = &plan.access else {
            return;
        };
        let Some(pred) = pushdown else { return };
        let schema = crate::dataset::activity_half_schema();
        for col in pred.columns() {
            if schema.column_index(col).is_err() {
                out.push(InvariantViolation {
                    rule: RULE_COLUMNAR,
                    path: "access.pushdown".into(),
                    explanation: format!(
                        "columnar pushdown references `{col}`, which has no column \
                         (and hence no kernel) in the activity mirror"
                    ),
                });
            }
        }
    }

    fn check_finish(&self, plan: &PhysicalPlan, out: &mut Vec<InvariantViolation>) {
        match &plan.finish {
            Finish::TopK { column, .. } => {
                let arity = unified_schema().arity();
                if *column >= arity {
                    out.push(InvariantViolation {
                        rule: RULE_FINISH,
                        path: "finish".into(),
                        explanation: format!(
                            "top-k ranks by column {column}, but unified rows have only \
                             {arity} columns"
                        ),
                    });
                }
            }
            Finish::AggregateChildren { children, .. } => {
                let leaves = self.dataset.leaf_count() as u32;
                for (i, (_, label, iv)) in children.iter().enumerate() {
                    if iv.hi > leaves || iv.lo > iv.hi {
                        out.push(InvariantViolation {
                            rule: RULE_FINISH,
                            path: format!("finish.children[{i}]"),
                            explanation: format!(
                                "child {label:?} interval [{}, {}) outside the tree's \
                                 {leaves} leaves",
                                iv.lo, iv.hi
                            ),
                        });
                    }
                }
            }
            Finish::Collect | Finish::CountPerLeaf => {}
        }
    }
}

// ---------------------------------------------------------------------
// Phase-boundary checks (design decision D13).
//
// The phased rewrite engine calls these between phases, on the draft
// rather than a finished plan: each phase's cheap structural
// postconditions are enforced the moment the phase completes, so a bad
// rule is caught at its own boundary instead of surfacing as a
// confusing full-plan violation after Lower. The full [`PlanValidator`]
// remains the Lower boundary's check, run on the assembled plan.

/// Analyze boundary: the resolved interval lies inside the tree index.
pub(crate) fn phase_interval_bounds(
    dataset: &Dataset,
    interval: drugtree_phylo::index::LeafInterval,
    out: &mut Vec<InvariantViolation>,
) {
    let leaves = dataset.leaf_count() as u32;
    for (name, bound) in [("lo", interval.lo), ("hi", interval.hi)] {
        if bound > leaves {
            out.push(InvariantViolation {
                rule: RULE_INTERVAL_BOUNDS,
                path: "analyze.interval".into(),
                explanation: format!("interval {name}={bound} exceeds the tree's {leaves} leaves"),
            });
        }
    }
    if interval.lo > interval.hi {
        out.push(InvariantViolation {
            rule: RULE_INTERVAL_BOUNDS,
            path: "analyze.interval".into(),
            explanation: format!("interval lo={} above hi={}", interval.lo, interval.hi),
        });
    }
}

/// Canonicalize boundary: re-running every enabled normalization step
/// must change nothing (the phase reported a fixpoint).
pub(crate) fn phase_canonical_form(
    config: &crate::optimizer::OptimizerConfig,
    canonical: &Predicate,
    out: &mut Vec<InvariantViolation>,
) {
    use crate::ast::canon;
    type CanonStep = fn(Predicate) -> (Predicate, bool);
    let steps: [(&str, bool, CanonStep); 5] = [
        ("canon_nnf", config.canon_nnf, canon::nnf),
        ("canon_flatten", config.canon_flatten, canon::flatten),
        ("canon_fold", config.canon_fold, canon::fold),
        ("canon_between", config.canon_between, canon::between_merge),
        ("canon_dedup", config.canon_dedup, canon::dedup),
    ];
    for (name, enabled, step) in steps {
        if !enabled {
            continue;
        }
        let (_, changed) = step(canonical.clone());
        if changed {
            out.push(InvariantViolation {
                rule: RULE_CANONICAL_FORM,
                path: "canonicalize.predicate".into(),
                explanation: format!(
                    "{name} still rewrites `{}` after the phase reported a fixpoint",
                    fmt_pred(canonical)
                ),
            });
        }
    }
}

/// Optimize boundary: the deduplicated key set is strictly increasing.
pub(crate) fn phase_key_order(
    key_values: &[drugtree_store::value::Value],
    out: &mut Vec<InvariantViolation>,
) {
    for pair in key_values.windows(2) {
        if pair[0] >= pair[1] {
            out.push(InvariantViolation {
                rule: RULE_KEYS_SORTED,
                path: "optimize.key_values".into(),
                explanation: format!(
                    "keys are not strictly increasing at {} >= {}",
                    pair[0], pair[1]
                ),
            });
            break;
        }
    }
}

/// Optimize boundary: the pushdown references only remote-schema
/// columns and every source that will receive it can evaluate it.
pub(crate) fn phase_pushdown_remote(
    pushdown: Option<&Predicate>,
    sources: &[std::sync::Arc<dyn drugtree_sources::DataSource>],
    out: &mut Vec<InvariantViolation>,
) {
    let Some(pred) = pushdown else { return };
    for col in pred.columns() {
        if !crate::optimizer::REMOTE_COLUMNS.contains(&col) {
            out.push(InvariantViolation {
                rule: RULE_PUSHDOWN_CAPABILITY,
                path: "optimize.pushdown".into(),
                explanation: format!(
                    "pushdown references {col:?}, which does not exist in the remote assay schema"
                ),
            });
        }
    }
    for s in sources {
        if !s.capabilities().supports_predicate(pred) {
            out.push(InvariantViolation {
                rule: RULE_PUSHDOWN_CAPABILITY,
                path: "optimize.pushdown".into(),
                explanation: format!(
                    "source {:?} cannot evaluate pushdown `{}`",
                    s.name(),
                    fmt_pred(pred)
                ),
            });
        }
    }
}

/// Optimize boundary: pruning accounts for every protein-bearing leaf
/// (unless the whole interval was proven empty, which drops them all).
pub(crate) fn phase_pruning_counts(
    proved_empty: bool,
    kept: usize,
    pruned: usize,
    total_leaves: usize,
    out: &mut Vec<InvariantViolation>,
) {
    if !proved_empty && kept + pruned != total_leaves {
        out.push(InvariantViolation {
            rule: RULE_PRUNING,
            path: "optimize.keys".into(),
            explanation: format!(
                "{kept} keys + {pruned} pruned leaves != {total_leaves} protein-bearing leaves"
            ),
        });
    }
}

/// Every fetch in the plan's access path, with its plan path.
fn fetches_of(access: &Access) -> Vec<(String, &FetchPlan)> {
    match access {
        Access::Fetch { fetches, .. } => fetches
            .iter()
            .enumerate()
            .map(|(i, f)| (format!("access.fetches[{i}]"), f))
            .collect(),
        Access::CacheProbe { on_miss, .. } => on_miss
            .iter()
            .enumerate()
            .map(|(i, f)| (format!("access.on_miss[{i}]"), f))
            .collect(),
        Access::ColumnarScan { .. } | Access::MaterializedView | Access::ProvedEmpty => Vec::new(),
    }
}

fn conjuncts_owned(pred: Option<&Predicate>) -> Vec<Predicate> {
    match pred {
        None => Vec::new(),
        Some(p) => crate::optimizer::conjuncts_of(p)
            .into_iter()
            .cloned()
            .collect(),
    }
}

/// The extra conjunct statistics pruning is allowed to add to a cache
/// key: a lower bound on `p_activity` (see the optimizer's cache-key
/// construction).
fn is_pruning_bound(pred: &Predicate) -> bool {
    matches!(
        pred,
        Predicate::Compare { column, op, .. }
            if column == "p_activity" && matches!(op, CompareOp::Ge | CompareOp::Gt)
    )
}

fn fmt_opt_pred(p: &Option<Predicate>) -> String {
    p.as_ref().map_or_else(|| "-".to_string(), fmt_pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Metric, Query, Scope};
    use crate::dataset::test_fixtures::small_dataset;
    use crate::optimizer::{Optimizer, OptimizerConfig};
    use crate::stats::OverlayStats;
    use drugtree_phylo::index::LeafInterval;
    use drugtree_sources::source::SourceCapabilities;
    use drugtree_store::value::Value;

    fn planned(dataset: &Dataset, config: OptimizerConfig, query: &Query) -> PhysicalPlan {
        let stats = OverlayStats::collect(dataset).unwrap();
        Optimizer::new(config)
            .plan(dataset, Some(&stats), None, query)
            .unwrap()
    }

    fn filtered_query() -> Query {
        use drugtree_store::expr::CompareOp;
        Query::activities(Scope::Tree).filter(Predicate::cmp("p_activity", CompareOp::Ge, 6.5))
    }

    /// Mutate every fetch in the plan's access path.
    fn mutate_fetches(plan: &mut PhysicalPlan, f: impl Fn(&mut FetchPlan)) {
        match &mut plan.access {
            Access::Fetch { fetches, .. } => fetches.iter_mut().for_each(f),
            Access::CacheProbe { on_miss, .. } => on_miss.iter_mut().for_each(f),
            _ => {}
        }
    }

    fn rules_of(violations: &[InvariantViolation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn cost_choice_must_be_minimal_and_unique() {
        use crate::plan::PlanCandidate;
        let d = small_dataset(SourceCapabilities::full());
        let mut plan = planned(
            &d,
            OptimizerConfig::cost_based(),
            &Query::activities(Scope::Tree),
        );
        assert_eq!(PlanValidator::new(&d).check(&plan), vec![]);

        // Append a second chosen alternative that is also more
        // expensive than the winner: both the uniqueness and the
        // minimality checks must fire.
        let max = plan
            .candidates
            .iter()
            .map(|c| c.cost_secs)
            .fold(0.0, f64::max);
        plan.candidates.push(PlanCandidate {
            group: "access".into(),
            label: "bogus".into(),
            cost_secs: max + 1.0,
            rows: 1,
            chosen: true,
        });
        let rules = rules_of(&PlanValidator::new(&d).check(&plan));
        assert!(rules.contains(&RULE_COST_CHOICE), "{rules:?}");

        // A lone chosen alternative that is not minimal fires too.
        let mut plan = planned(
            &d,
            OptimizerConfig::cost_based(),
            &Query::activities(Scope::Tree),
        );
        for c in &mut plan.candidates {
            if c.group == "access" {
                c.chosen = false;
            }
        }
        plan.candidates.push(PlanCandidate {
            group: "access".into(),
            label: "bogus".into(),
            cost_secs: max + 1.0,
            rows: 1,
            chosen: true,
        });
        let rules = rules_of(&PlanValidator::new(&d).check(&plan));
        assert!(rules.contains(&RULE_COST_CHOICE), "{rules:?}");
    }

    #[test]
    fn rejects_non_finite_or_negative_candidate_costs() {
        use crate::plan::PlanCandidate;
        let d = small_dataset(SourceCapabilities::full());
        let mut plan = planned(
            &d,
            OptimizerConfig::cost_based(),
            &Query::activities(Scope::Tree),
        );
        plan.candidates.push(PlanCandidate {
            group: "broken".into(),
            label: "nan".into(),
            cost_secs: f64::NAN,
            rows: 0,
            chosen: true,
        });
        plan.candidates.push(PlanCandidate {
            group: "broken2".into(),
            label: "negative".into(),
            cost_secs: -0.5,
            rows: 0,
            chosen: true,
        });
        let rules = rules_of(&PlanValidator::new(&d).check(&plan));
        assert_eq!(
            rules.iter().filter(|r| **r == RULE_COST_SANE).count(),
            2,
            "{rules:?}"
        );
    }

    #[test]
    fn well_formed_plans_pass() {
        let d = small_dataset(SourceCapabilities::full());
        let v = PlanValidator::new(&d);
        for config in [
            OptimizerConfig::naive(),
            OptimizerConfig::full(),
            OptimizerConfig::cost_based(),
        ] {
            for query in [
                Query::activities(Scope::Tree),
                filtered_query(),
                Query::activities(Scope::Subtree("cladeA".into())).top_k("p_activity", 2, true),
                Query::activities(Scope::Tree).aggregate(Metric::Count),
            ] {
                let plan = planned(&d, config, &query);
                assert_eq!(v.check(&plan), vec![], "{query}");
            }
        }
    }

    #[test]
    fn rejects_unsorted_or_duplicated_keys() {
        let d = small_dataset(SourceCapabilities::full());
        let mut plan = planned(
            &d,
            OptimizerConfig::naive(),
            &Query::activities(Scope::Tree),
        );
        mutate_fetches(&mut plan, |f| f.keys.reverse());
        assert!(rules_of(&PlanValidator::new(&d).check(&plan)).contains(&RULE_KEYS_SORTED));

        let mut plan = planned(
            &d,
            OptimizerConfig::naive(),
            &Query::activities(Scope::Tree),
        );
        mutate_fetches(&mut plan, |f| {
            let dup = f.keys[0].clone();
            f.keys.insert(0, dup);
        });
        let rules = rules_of(&PlanValidator::new(&d).check(&plan));
        assert!(rules.contains(&RULE_KEYS_SORTED), "{rules:?}");
    }

    #[test]
    fn rejects_unknown_source() {
        let d = small_dataset(SourceCapabilities::full());
        let mut plan = planned(
            &d,
            OptimizerConfig::naive(),
            &Query::activities(Scope::Tree),
        );
        mutate_fetches(&mut plan, |f| f.source = "bogus-db".into());
        assert!(rules_of(&PlanValidator::new(&d).check(&plan)).contains(&RULE_SOURCE_RESOLVES));
    }

    #[test]
    fn rejects_oversized_batches() {
        let d = small_dataset(SourceCapabilities::full());
        let mut plan = planned(&d, OptimizerConfig::full(), &Query::activities(Scope::Tree));
        // The fixture source accepts at most 100 keys per request.
        mutate_fetches(&mut plan, |f| f.max_batch = 1000);
        assert!(rules_of(&PlanValidator::new(&d).check(&plan)).contains(&RULE_BATCH_LIMIT));

        // A non-batched fetch claiming multi-key requests is equally
        // malformed.
        let mut plan = planned(
            &d,
            OptimizerConfig::naive(),
            &Query::activities(Scope::Tree),
        );
        mutate_fetches(&mut plan, |f| f.max_batch = 7);
        assert!(rules_of(&PlanValidator::new(&d).check(&plan)).contains(&RULE_BATCH_LIMIT));
    }

    #[test]
    fn rejects_unsupported_pushdown() {
        use drugtree_store::expr::CompareOp;
        let d = small_dataset(SourceCapabilities::full());
        // `mw` lives in the local ligand table; no source can see it.
        let mut plan = planned(&d, OptimizerConfig::full(), &filtered_query());
        mutate_fetches(&mut plan, |f| {
            f.pushdown = Some(Predicate::cmp("mw", CompareOp::Lt, 500.0));
        });
        assert!(rules_of(&PlanValidator::new(&d).check(&plan)).contains(&RULE_PUSHDOWN_CAPABILITY));

        // A range pushdown against a dump-only source exceeds its
        // declared capabilities.
        let d = small_dataset(SourceCapabilities::minimal());
        let mut plan = planned(
            &d,
            OptimizerConfig::naive(),
            &Query::activities(Scope::Tree),
        );
        mutate_fetches(&mut plan, |f| {
            f.pushdown = Some(Predicate::cmp("year", CompareOp::Ge, 2012i64));
        });
        assert!(rules_of(&PlanValidator::new(&d).check(&plan)).contains(&RULE_PUSHDOWN_CAPABILITY));
    }

    #[test]
    fn rejects_mismatched_cache_key() {
        use drugtree_store::expr::CompareOp;
        let d = small_dataset(SourceCapabilities::full());
        let mut plan = planned(&d, OptimizerConfig::full(), &filtered_query());
        // Loosen the probe key relative to the miss path: cached rows
        // fetched under the pushdown would answer unfiltered probes.
        if let Access::CacheProbe { pushdown, .. } = &mut plan.access {
            *pushdown = None;
        }
        assert!(rules_of(&PlanValidator::new(&d).check(&plan)).contains(&RULE_CACHE_KEY));

        // A probe key conjunct the miss path never fetched is equally
        // wrong in the other direction.
        let mut plan = planned(&d, OptimizerConfig::full(), &Query::activities(Scope::Tree));
        if let Access::CacheProbe { pushdown, .. } = &mut plan.access {
            *pushdown = Some(Predicate::cmp("year", CompareOp::Ge, 2012i64));
        }
        assert!(rules_of(&PlanValidator::new(&d).check(&plan)).contains(&RULE_CACHE_KEY));
    }

    #[test]
    fn rejects_impure_matview() {
        use drugtree_store::expr::CompareOp;
        let d = small_dataset(SourceCapabilities::full());
        let mut plan = planned(
            &d,
            OptimizerConfig::full(),
            &Query::activities(Scope::Tree).aggregate(Metric::Count),
        );
        plan.access = Access::MaterializedView;
        plan.residual = Predicate::cmp("year", CompareOp::Ge, 2012i64);
        assert!(rules_of(&PlanValidator::new(&d).check(&plan)).contains(&RULE_MATVIEW));
    }

    #[test]
    fn rejects_columnar_pushdown_on_unknown_column() {
        use drugtree_store::expr::CompareOp;
        let d = small_dataset(SourceCapabilities::full());
        let mut plan = planned(&d, OptimizerConfig::full(), &filtered_query());
        plan.access = Access::ColumnarScan {
            pushdown: Some(Predicate::cmp("no_such_column", CompareOp::Ge, 1i64)),
        };
        assert!(rules_of(&PlanValidator::new(&d).check(&plan)).contains(&RULE_COLUMNAR));

        // A pushdown over real mirror columns passes the rule.
        plan.access = Access::ColumnarScan {
            pushdown: Some(Predicate::cmp("p_activity", CompareOp::Ge, 6.5)),
        };
        assert!(!rules_of(&PlanValidator::new(&d).check(&plan)).contains(&RULE_COLUMNAR));
    }

    #[test]
    fn rejects_out_of_bounds_interval() {
        let d = small_dataset(SourceCapabilities::full());
        let mut plan = planned(
            &d,
            OptimizerConfig::naive(),
            &Query::activities(Scope::Tree),
        );
        plan.interval = LeafInterval { lo: 0, hi: 99 };
        assert!(rules_of(&PlanValidator::new(&d).check(&plan)).contains(&RULE_INTERVAL_BOUNDS));
    }

    #[test]
    fn rejects_reappearing_pruned_leaves() {
        let d = small_dataset(SourceCapabilities::full());
        // Full config with stats prunes P4 (no activities): 3 keys + 1
        // pruned. Resurrecting the pruned key breaks the count.
        let mut plan = planned(&d, OptimizerConfig::full(), &Query::activities(Scope::Tree));
        assert_eq!(plan.pruned_leaves, 1);
        mutate_fetches(&mut plan, |f| f.keys.push(Value::from("P4")));
        assert!(rules_of(&PlanValidator::new(&d).check(&plan)).contains(&RULE_PRUNING));

        // A key addressing a leaf outside the scope interval is the
        // same class of corruption.
        let mut plan = planned(
            &d,
            OptimizerConfig::naive(),
            &Query::activities(Scope::Subtree("cladeA".into())),
        );
        mutate_fetches(&mut plan, |f| f.keys = vec![Value::from("P3")]);
        assert!(rules_of(&PlanValidator::new(&d).check(&plan)).contains(&RULE_PRUNING));
    }

    #[test]
    fn rejects_out_of_schema_top_k() {
        let d = small_dataset(SourceCapabilities::full());
        let mut plan = planned(
            &d,
            OptimizerConfig::naive(),
            &Query::activities(Scope::Tree).top_k("p_activity", 2, true),
        );
        plan.finish = Finish::TopK {
            column: 99,
            k: 2,
            descending: true,
        };
        assert!(rules_of(&PlanValidator::new(&d).check(&plan)).contains(&RULE_FINISH));
    }

    #[test]
    fn violations_render_and_collect() {
        let d = small_dataset(SourceCapabilities::full());
        let mut plan = planned(&d, OptimizerConfig::full(), &filtered_query());
        plan.interval = LeafInterval { lo: 0, hi: 99 };
        mutate_fetches(&mut plan, |f| {
            f.source = "bogus-db".into();
            f.keys.reverse();
        });
        let violations = PlanValidator::new(&d).check(&plan);
        assert!(
            violations.len() >= 3,
            "collects all findings: {violations:?}"
        );
        let rendered = violations[0].to_string();
        assert!(rendered.contains(violations[0].rule), "{rendered}");
        assert!(PlanValidator::new(&d).validate(&plan).is_err());
    }
}
