//! The self-driving layer (design decision D15): telemetry fed back
//! into planning, with every adaptation observable and reversible.
//!
//! Three feedback loops close over the observability stream:
//!
//! * [`learned`] — per-column CDF sketches updated online from
//!   observed span cardinalities replace the nominal selectivity
//!   guesses (through the [`seam`]) so E12-class estimate errors
//!   shrink from measured data, with virtual-clock staleness.
//! * [`advisor`] — slow matview-answerable shapes accumulate foregone
//!   cost (dedup count × charged latency); past the E7 break-even the
//!   aggregate view is built automatically, amortization is tracked,
//!   and never-paying-off views are evicted.
//! * adaptive prefetch lives in the mobile crate (per-session gesture
//!   classification), but reports its policy switches here so they
//!   flow into the same `adapt` event stream.
//!
//! Every decision emits an `"adapt"` JSONL record through
//! [`TraceExport`] and is guarded by the [`regret`] tracker, which
//! reverts any adaptation whose observed latency regresses past a
//! threshold. `EXPLAIN` surfaces `learned` vs `nominal` selectivity
//! sources and `drugtree advisor` renders the decision log.
//!
//! Everything is interior-mutable behind [`AdaptiveRuntime`]: the
//! `DrugTree` facade hands out only `&Executor`, so the loops update
//! through shared references on the virtual clock — two replays of the
//! same workload adapt identically, byte for byte.

pub mod advisor;
pub mod learned;
pub mod regret;
pub mod seam;

pub use advisor::{AdvisorConfig, AdvisorSnapshot, MatviewAdvisor, ShapeCost};
pub use learned::{LearnedConfig, LearnedSnapshot, LearnedStats};
pub use regret::{RegretConfig, RegretTracker, RegretVerdict};
pub use seam::{SelectivitySource, StatsView};

use crate::dataset::Dataset;
use crate::matview::MaterializedAggregates;
use crate::obs::export::AdaptDecision;
use crate::obs::{Sink, TraceExport};
use crate::Result;
use drugtree_sources::sync::{Mutex, RwLock};
use drugtree_store::expr::Predicate;
use rustc_hash::FxHashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Tuning for the whole self-driving layer.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdaptiveConfig {
    /// Learned-statistics loop tuning.
    pub learned: LearnedConfig,
    /// Auto-materialization loop tuning.
    pub advisor: AdvisorConfig,
    /// Regret guardrail tuning.
    pub regret: RegretConfig,
    /// Start frozen: observe nothing, apply nothing (the E17 control
    /// arm measuring the plumbing's own overhead).
    pub frozen: bool,
}

/// What the executor reports back after each query (the runtime's
/// entire view of the world — it never re-plans or re-executes).
#[derive(Debug, Clone, Copy)]
pub struct QueryFeedback<'q> {
    /// Local-column form of the predicate the plan pushed down, when
    /// the plan had one.
    pub pushed_local: Option<&'q Predicate>,
    /// Nominal rows in the plan's scope interval (the denominator of
    /// the observed fraction).
    pub interval_rows: u64,
    /// Rows the access stage actually produced (the numerator).
    pub observed_rows: u64,
    /// Leaves pruned away by statistics. Pruning is sound (only
    /// provably-non-matching leaves drop), so a nonzero count does not
    /// disqualify the cardinality sample; it is carried for reports.
    pub pruned_leaves: u32,
    /// The query had an aggregate finish a materialized view could
    /// have answered, but none was installed.
    pub matview_candidate: bool,
    /// The query *was* served by the adaptively-built view.
    pub served_by_adaptive: bool,
    /// Plan-shape fingerprint (the advisor's dedup key).
    pub fingerprint: u64,
    /// Charged latency of this query.
    pub charged: Duration,
    /// Measured break-even proxy: the cost of one full source scan
    /// (what building the view costs), from the stats collection pass.
    pub break_even_proxy: Duration,
}

/// Counters and state across all three loops, for reports and E17.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdaptiveSnapshot {
    /// Learned-statistics loop state.
    pub learned: LearnedSnapshot,
    /// Auto-materialization loop state.
    pub advisor: AdvisorSnapshot,
    /// Regret reverts fired across all loops.
    pub reverts: u64,
    /// Whether the runtime is frozen.
    pub frozen: bool,
    /// Whether learned statistics are currently feeding the planner.
    pub learned_active: bool,
    /// Whether an adaptively-built view is currently installed.
    pub view_built: bool,
    /// Prefetch policy switches reported by mobile sessions.
    pub prefetch_switches: u64,
}

/// Regret arm names (also the `subject` of revert events).
const ARM_LEARNED: &str = "learned-stats";
const ARM_MATVIEW: &str = "matview";

/// The self-driving runtime: owns the learned statistics, the
/// adaptively-built view, the advisor and regret ledgers, and the
/// `adapt` event exporter.
///
/// Thread-safe and interior-mutable; the executor holds it in an
/// `Arc` and reports through `&self`. The exporter (when attached) has
/// its own sequence space, separate from the fleet observer's — the
/// two streams are joined on `at_ns`, not `seq`.
pub struct AdaptiveRuntime {
    config: AdaptiveConfig,
    frozen: AtomicBool,
    learned_enabled: AtomicBool,
    learned: LearnedStats,
    view: RwLock<Option<Arc<MaterializedAggregates>>>,
    advisor: Mutex<MatviewAdvisor>,
    regret: Mutex<RegretTracker>,
    /// Columns whose learned coverage has been announced (one `apply`
    /// event per column, not per observation).
    announced: Mutex<FxHashSet<String>>,
    prefetch_switches: AtomicU64,
    export: Option<TraceExport>,
}

impl std::fmt::Debug for AdaptiveRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdaptiveRuntime")
            .field("frozen", &self.frozen.load(Ordering::Relaxed))
            .field("learned", &self.learned.snapshot())
            .finish()
    }
}

impl AdaptiveRuntime {
    /// A runtime with no exporter attached.
    pub fn new(config: AdaptiveConfig) -> AdaptiveRuntime {
        AdaptiveRuntime {
            frozen: AtomicBool::new(config.frozen),
            learned_enabled: AtomicBool::new(true),
            learned: LearnedStats::new(config.learned),
            view: RwLock::new(None),
            advisor: Mutex::new(MatviewAdvisor::new(config.advisor)),
            regret: Mutex::new(RegretTracker::new(config.regret)),
            announced: Mutex::new(FxHashSet::default()),
            prefetch_switches: AtomicU64::new(0),
            export: None,
            config,
        }
    }

    /// Attach an `adapt`-event exporter writing to `sink`.
    pub fn with_export(mut self, sink: Arc<dyn Sink>) -> AdaptiveRuntime {
        self.export = Some(TraceExport::new(sink));
        self
    }

    /// Whether the runtime is frozen (observing and applying nothing).
    pub fn frozen(&self) -> bool {
        self.frozen.load(Ordering::Relaxed)
    }

    /// Freeze or thaw the runtime.
    pub fn set_frozen(&self, frozen: bool) {
        self.frozen.store(frozen, Ordering::Relaxed);
    }

    /// The learned statistics for planning, when they should be
    /// consulted (not frozen, not regret-reverted).
    pub fn planning_stats(&self) -> Option<&LearnedStats> {
        if self.frozen() || !self.learned_enabled.load(Ordering::Relaxed) {
            None
        } else {
            Some(&self.learned)
        }
    }

    /// The learned statistics, unconditionally (reports, tests).
    pub fn learned(&self) -> &LearnedStats {
        &self.learned
    }

    /// The adaptively-built aggregate view, when one is installed and
    /// the runtime is not frozen.
    pub fn view(&self) -> Option<Arc<MaterializedAggregates>> {
        if self.frozen() {
            return None;
        }
        self.view.read().clone()
    }

    /// Counters and state across all loops.
    pub fn snapshot(&self) -> AdaptiveSnapshot {
        // Hoisted so no guard is alive while the next class is taken
        // (struct-literal temporaries live to the end of the literal).
        let reverts = self.regret.lock().reverts();
        let advisor = self.advisor.lock().snapshot();
        AdaptiveSnapshot {
            learned: self.learned.snapshot(),
            advisor,
            reverts,
            frozen: self.frozen(),
            learned_active: self.learned_enabled.load(Ordering::Relaxed),
            view_built: self.view.read().is_some(),
            prefetch_switches: self.prefetch_switches.load(Ordering::Relaxed),
        }
    }

    /// Fold one executed query back into the loops: learn the observed
    /// cardinality, advance the advisor's break-even ledger (building
    /// the view when it crosses — the build scan is charged to the
    /// virtual clock), check eviction, and let the regret guardrail
    /// judge every active adaptation.
    ///
    /// `shape` is rendered lazily, only when the advisor retains it.
    pub fn after_query(
        &self,
        dataset: &Dataset,
        feedback: &QueryFeedback<'_>,
        shape: impl FnOnce() -> String,
    ) -> Result<()> {
        if self.frozen() {
            return Ok(());
        }
        let now_ns = dataset.clock.now().0;
        self.learn_cardinality(feedback, now_ns);
        self.drive_matview(dataset, feedback, shape, now_ns)?;
        self.judge_regret(feedback, now_ns);
        Ok(())
    }

    /// Learned-statistics loop: a plan that pushed exactly one
    /// comparison down measured that predicate's true selectivity over
    /// the scope. Stats-pruning does not disqualify the sample —
    /// pruning is sound (it drops only leaves that provably cannot
    /// match), so the fetched row count is still the exact numerator
    /// over the full scope interval.
    fn learn_cardinality(&self, feedback: &QueryFeedback<'_>, now_ns: u64) {
        if !self.learned_enabled.load(Ordering::Relaxed) || feedback.interval_rows == 0 {
            return;
        }
        let Some(Predicate::Compare { column, op, value }) = feedback.pushed_local else {
            return;
        };
        let Some(v) = seam::numeric(value) else {
            return;
        };
        let fraction = (feedback.observed_rows as f64 / feedback.interval_rows as f64).min(1.0);
        self.learned
            .observe(column, *op, v, fraction, feedback.interval_rows, now_ns);
        // Announce (once per column) when coverage becomes servable,
        // and arm the regret tracker the first time any column does.
        if self.learned.selectivity(column, *op, v, now_ns).is_some() {
            let mut announced = self.announced.lock();
            let first = announced.insert(column.clone());
            drop(announced);
            if first {
                self.regret.lock().activate(ARM_LEARNED);
                self.emit(AdaptDecision {
                    at_ns: now_ns,
                    loop_name: ARM_LEARNED.to_string(),
                    action: "apply".to_string(),
                    subject: format!("column:{column}"),
                    reason: "observed cardinalities reached servable coverage".to_string(),
                    before_ns: 0,
                    after_ns: 0,
                });
            }
        }
    }

    /// Auto-materialization loop: accumulate foregone cost, build past
    /// break-even, credit hits, evict never-paying-off views.
    fn drive_matview(
        &self,
        dataset: &Dataset,
        feedback: &QueryFeedback<'_>,
        shape: impl FnOnce() -> String,
        now_ns: u64,
    ) -> Result<()> {
        if feedback.served_by_adaptive {
            let mut advisor = self.advisor.lock();
            let saved = advisor
                .mean_foregone(feedback.fingerprint)
                .unwrap_or(Duration::ZERO)
                .saturating_sub(feedback.charged);
            advisor.note_hit(saved, now_ns);
            return Ok(());
        }
        let matview_reverted = self.regret.lock().is_reverted(ARM_MATVIEW);
        if feedback.matview_candidate && !matview_reverted {
            let mut advisor = self.advisor.lock();
            let should_build = advisor.note_candidate(
                feedback.fingerprint,
                shape,
                feedback.charged,
                now_ns,
                feedback.break_even_proxy,
            );
            let foregone = advisor.snapshot().foregone;
            drop(advisor);
            let view_missing = self.view.read().is_none();
            if should_build && view_missing {
                let built = Arc::new(MaterializedAggregates::build(dataset)?);
                let build_cost = built.build_cost;
                dataset.clock.advance(build_cost);
                let built_at = dataset.clock.now().0;
                *self.view.write() = Some(built);
                let mut advisor = self.advisor.lock();
                advisor.record_build(built_at, build_cost);
                let mean_before = advisor
                    .mean_foregone(feedback.fingerprint)
                    .unwrap_or(feedback.charged);
                drop(advisor);
                self.regret.lock().activate(ARM_MATVIEW);
                self.emit(AdaptDecision {
                    at_ns: built_at,
                    loop_name: ARM_MATVIEW.to_string(),
                    action: "apply".to_string(),
                    subject: format!("{:016x}", feedback.fingerprint),
                    reason: format!(
                        "break-even crossed: foregone {}us > break-even {}us",
                        foregone.as_micros(),
                        self.config
                            .advisor
                            .break_even
                            .unwrap_or(feedback.break_even_proxy)
                            .as_micros()
                    ),
                    before_ns: duration_ns(mean_before),
                    after_ns: 0,
                });
            }
        }
        // Eviction: a built view that served nothing for the idle
        // window never paid off.
        let evict = self.advisor.lock().should_evict(now_ns);
        if evict {
            let mut advisor = self.advisor.lock();
            let snap = advisor.snapshot();
            advisor.record_evict();
            drop(advisor);
            *self.view.write() = None;
            self.emit(AdaptDecision {
                at_ns: now_ns,
                loop_name: ARM_MATVIEW.to_string(),
                action: "evict".to_string(),
                subject: "aggregate-view".to_string(),
                reason: "no hits inside the idle window".to_string(),
                before_ns: duration_ns(snap.build_cost),
                after_ns: 0,
            });
        }
        Ok(())
    }

    /// Regret guardrail: feed this query's charged latency to every
    /// arm *whose adaptation could have influenced it* — queries with
    /// a pushed comparison judge the learned-statistics arm, and
    /// aggregate-shaped queries judge the matview arm — and undo any
    /// adaptation that regressed past threshold. Scoping the latency
    /// populations per arm keeps a workload-mix shift (e.g. cheap view
    /// hits arriving mid-stream) from reading as regression on an
    /// unrelated arm.
    fn judge_regret(&self, feedback: &QueryFeedback<'_>, now_ns: u64) {
        let arms = [
            (ARM_LEARNED, feedback.pushed_local.is_some()),
            (
                ARM_MATVIEW,
                feedback.matview_candidate || feedback.served_by_adaptive,
            ),
        ];
        let mut regret = self.regret.lock();
        let verdicts: Vec<(&str, RegretVerdict)> = arms
            .into_iter()
            .filter(|(_, affected)| *affected)
            .filter_map(|(arm, _)| regret.observe(arm, feedback.charged).map(|v| (arm, v)))
            .collect();
        drop(regret);
        for (arm, verdict) in verdicts {
            match arm {
                ARM_LEARNED => {
                    self.learned_enabled.store(false, Ordering::Relaxed);
                    self.learned.clear();
                }
                _ => {
                    *self.view.write() = None;
                    self.advisor.lock().record_evict();
                }
            }
            self.emit(AdaptDecision {
                at_ns: now_ns,
                loop_name: arm.to_string(),
                action: "revert".to_string(),
                subject: arm.to_string(),
                reason: "observed latency regressed past the regret threshold".to_string(),
                before_ns: verdict.baseline_mean_ns,
                after_ns: verdict.after_mean_ns,
            });
        }
    }

    /// Report a per-session prefetch policy switch from the mobile
    /// layer (classified pattern → new policy), so the decision lands
    /// in the same `adapt` stream as the query-side loops.
    pub fn note_prefetch_switch(
        &self,
        session: Option<u32>,
        pattern: &str,
        prefetch_on: bool,
        now_ns: u64,
    ) {
        if self.frozen() {
            return;
        }
        self.prefetch_switches.fetch_add(1, Ordering::Relaxed);
        self.emit(AdaptDecision {
            at_ns: now_ns,
            loop_name: "prefetch".to_string(),
            action: "apply".to_string(),
            subject: match session {
                Some(id) => format!("session:{id}"),
                None => "session:-".to_string(),
            },
            reason: format!(
                "gesture stream classified {pattern}: prefetch {}",
                if prefetch_on { "on" } else { "off" }
            ),
            before_ns: 0,
            after_ns: 0,
        });
    }

    /// The tuning this runtime was built with.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    fn emit(&self, decision: AdaptDecision) {
        if let Some(export) = &self.export {
            export.emit_adapt(&decision);
        }
    }
}

fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::test_fixtures::small_dataset;
    use crate::obs::VecSink;
    use drugtree_sources::source::SourceCapabilities;
    use drugtree_store::expr::CompareOp;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn feedback<'q>(pushed: Option<&'q Predicate>) -> QueryFeedback<'q> {
        QueryFeedback {
            pushed_local: pushed,
            interval_rows: 100,
            observed_rows: 25,
            pruned_leaves: 0,
            matview_candidate: false,
            served_by_adaptive: false,
            fingerprint: 0xfeed,
            charged: ms(10),
            break_even_proxy: ms(30),
        }
    }

    #[test]
    fn learned_loop_observes_and_announces_once() {
        let d = small_dataset(SourceCapabilities::full());
        let sink = Arc::new(VecSink::new());
        let rt = AdaptiveRuntime::new(AdaptiveConfig::default())
            .with_export(Arc::clone(&sink) as Arc<dyn Sink>);
        let pred = Predicate::cmp("p_activity", CompareOp::Ge, 6.0);
        for _ in 0..3 {
            rt.after_query(&d, &feedback(Some(&pred)), || "s".into())
                .unwrap();
        }
        let snap = rt.snapshot();
        assert_eq!(snap.learned.observations, 3);
        assert!(rt.planning_stats().is_some());
        let applies: Vec<String> = sink
            .lines()
            .into_iter()
            .filter(|l| l.contains("\"loop_name\":\"learned-stats\""))
            .collect();
        assert_eq!(applies.len(), 1, "one apply per column: {applies:?}");
        assert!(applies[0].contains("column:p_activity"));
    }

    #[test]
    fn frozen_runtime_observes_and_applies_nothing() {
        let d = small_dataset(SourceCapabilities::full());
        let rt = AdaptiveRuntime::new(AdaptiveConfig {
            frozen: true,
            ..AdaptiveConfig::default()
        });
        let pred = Predicate::cmp("p_activity", CompareOp::Ge, 6.0);
        let mut fb = feedback(Some(&pred));
        fb.matview_candidate = true;
        fb.charged = ms(1_000);
        for _ in 0..5 {
            rt.after_query(&d, &fb, || "s".into()).unwrap();
        }
        let snap = rt.snapshot();
        assert_eq!(snap.learned.observations, 0);
        assert!(!snap.view_built);
        assert!(rt.planning_stats().is_none());
        assert!(rt.view().is_none());
        rt.note_prefetch_switch(Some(1), "lateral", true, 0);
        assert_eq!(rt.snapshot().prefetch_switches, 0);
    }

    #[test]
    fn matview_builds_past_break_even_and_counts_hits() {
        let d = small_dataset(SourceCapabilities::full());
        let sink = Arc::new(VecSink::new());
        let rt = AdaptiveRuntime::new(AdaptiveConfig::default())
            .with_export(Arc::clone(&sink) as Arc<dyn Sink>);
        let mut fb = feedback(None);
        fb.matview_candidate = true;
        fb.charged = ms(20);
        fb.break_even_proxy = ms(30);
        // 20ms + 20ms crosses the 30ms break-even on the second query.
        rt.after_query(&d, &fb, || "agg-shape".into()).unwrap();
        assert!(rt.view().is_none());
        let clock_before = d.clock.now();
        rt.after_query(&d, &fb, || "agg-shape".into()).unwrap();
        assert!(rt.view().is_some(), "view built past break-even");
        assert!(
            d.clock.now() > clock_before,
            "the build scan is charged to the virtual clock"
        );
        let applies: Vec<String> = sink
            .lines()
            .into_iter()
            .filter(|l| {
                l.contains("\"loop_name\":\"matview\"") && l.contains("\"action\":\"apply\"")
            })
            .collect();
        assert_eq!(applies.len(), 1);
        assert!(applies[0].contains("break-even crossed"));
        // Hits credit amortization.
        let mut hit = feedback(None);
        hit.served_by_adaptive = true;
        hit.fingerprint = fb.fingerprint;
        hit.charged = Duration::from_micros(1);
        rt.after_query(&d, &hit, || "agg-shape".into()).unwrap();
        assert_eq!(rt.snapshot().advisor.hits, 1);
    }

    #[test]
    fn idle_views_are_evicted_with_an_event() {
        let d = small_dataset(SourceCapabilities::full());
        let sink = Arc::new(VecSink::new());
        let rt = AdaptiveRuntime::new(AdaptiveConfig {
            advisor: AdvisorConfig {
                break_even: Some(ms(1)),
                eviction_idle: ms(50),
            },
            ..AdaptiveConfig::default()
        })
        .with_export(Arc::clone(&sink) as Arc<dyn Sink>);
        let mut fb = feedback(None);
        fb.matview_candidate = true;
        fb.charged = ms(20);
        rt.after_query(&d, &fb, || "agg".into()).unwrap();
        assert!(rt.view().is_some());
        // No hits arrive; the clock drifts past the idle window and a
        // later (non-candidate) query triggers the eviction check.
        d.clock.advance(ms(60));
        rt.after_query(&d, &feedback(None), || "other".into())
            .unwrap();
        assert!(rt.view().is_none(), "idle view evicted");
        assert_eq!(rt.snapshot().advisor.evictions, 1);
        assert!(sink
            .lines()
            .iter()
            .any(|l| l.contains("\"action\":\"evict\"")));
    }

    #[test]
    fn regret_reverts_the_learned_loop() {
        let d = small_dataset(SourceCapabilities::full());
        let sink = Arc::new(VecSink::new());
        let rt = AdaptiveRuntime::new(AdaptiveConfig {
            regret: RegretConfig {
                min_samples: 4,
                threshold: 0.5,
            },
            // Delay servable coverage so four cheap filter queries land
            // in the arm's baseline before activation.
            learned: LearnedConfig {
                min_observations: 5,
                ..LearnedConfig::default()
            },
            ..AdaptiveConfig::default()
        })
        .with_export(Arc::clone(&sink) as Arc<dyn Sink>);
        let pred = Predicate::cmp("p_activity", CompareOp::Ge, 6.0);
        // Cheap filter baseline while the arm is inactive. Only queries
        // the learned arm could influence (pushed comparisons) count
        // toward its populations.
        for _ in 0..4 {
            rt.after_query(&d, &feedback(Some(&pred)), || "s".into())
                .unwrap();
        }
        // Coverage arrives (activating the arm), then latency tanks.
        let mut slow = feedback(Some(&pred));
        slow.charged = ms(100);
        for _ in 0..8 {
            rt.after_query(&d, &slow, || "s".into()).unwrap();
        }
        let snap = rt.snapshot();
        assert_eq!(snap.reverts, 1, "learned arm reverted");
        assert!(!snap.learned_active);
        assert!(rt.planning_stats().is_none());
        assert_eq!(snap.learned.points, 0, "revert clears the sketch");
        let reverts: Vec<String> = sink
            .lines()
            .into_iter()
            .filter(|l| l.contains("\"action\":\"revert\""))
            .collect();
        assert_eq!(reverts.len(), 1);
        assert!(reverts[0].contains("learned-stats"));
    }

    #[test]
    fn double_run_adapts_byte_identically() {
        let run = || {
            let d = small_dataset(SourceCapabilities::full());
            let sink = Arc::new(VecSink::new());
            let rt = AdaptiveRuntime::new(AdaptiveConfig::default())
                .with_export(Arc::clone(&sink) as Arc<dyn Sink>);
            let pred = Predicate::cmp("p_activity", CompareOp::Ge, 6.0);
            let mut fb = feedback(Some(&pred));
            fb.matview_candidate = true;
            fb.charged = ms(20);
            for _ in 0..4 {
                d.clock.advance(ms(1));
                rt.after_query(&d, &fb, || "agg".into()).unwrap();
            }
            sink.lines()
        };
        let first = run();
        assert!(!first.is_empty());
        assert_eq!(first, run(), "byte-identical adapt stream");
    }
}
