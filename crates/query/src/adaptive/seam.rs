//! The selectivity seam: one routing point for every selectivity
//! estimate.
//!
//! The optimizer never calls `OverlayStats::predicate_selectivity`
//! directly (a repo-lint pass enforces it); it builds a [`StatsView`]
//! and asks that. The view consults the online-learned statistics
//! first — when they have fresh coverage for a comparison — and falls
//! back to the nominal ingest-time histograms otherwise, reporting
//! which estimator answered so EXPLAIN can say `learned` vs `nominal`.

use crate::adaptive::learned::LearnedStats;
use crate::stats::OverlayStats;
use drugtree_store::expr::{CompareOp, Predicate};
use drugtree_store::value::Value;

/// Which estimator produced a selectivity figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectivitySource {
    /// Nominal ingest-time histograms ([`OverlayStats`]).
    Nominal,
    /// Online-learned statistics contributed to the estimate.
    Learned,
}

/// A read-side view over nominal plus (optionally) learned statistics.
///
/// Composition mirrors the nominal estimator exactly — conjunctions
/// multiply, disjunctions saturate-add, `Not` complements, `Between`
/// decomposes into `Ge`+`Le` — but every comparison leaf gets a chance
/// to be answered from learned data first.
#[derive(Debug, Clone, Copy)]
pub struct StatsView<'a> {
    nominal: &'a OverlayStats,
    learned: Option<&'a LearnedStats>,
    now_ns: u64,
}

impl<'a> StatsView<'a> {
    /// A view over the nominal statistics only.
    pub fn nominal(stats: &'a OverlayStats) -> StatsView<'a> {
        StatsView {
            nominal: stats,
            learned: None,
            now_ns: 0,
        }
    }

    /// A view that consults `learned` (when present) before falling
    /// back to nominal; `now_ns` is the virtual clock used for the
    /// learned staleness check.
    pub fn with_learned(
        stats: &'a OverlayStats,
        learned: Option<&'a LearnedStats>,
        now_ns: u64,
    ) -> StatsView<'a> {
        StatsView {
            nominal: stats,
            learned,
            now_ns,
        }
    }

    /// The underlying nominal statistics.
    pub fn overlay(&self) -> &'a OverlayStats {
        self.nominal
    }

    /// Estimated fraction of activity rows `pred` keeps.
    pub fn selectivity(&self, pred: &Predicate) -> f64 {
        self.selectivity_with_source(pred).0
    }

    /// Like [`StatsView::selectivity`], also reporting whether learned
    /// statistics contributed to the estimate (any leaf answered from
    /// learned data marks the whole composition `Learned`).
    pub fn selectivity_with_source(&self, pred: &Predicate) -> (f64, SelectivitySource) {
        match pred {
            Predicate::Compare { column, op, value } => {
                if let (Some(learned), Some(v)) = (self.learned, numeric(value)) {
                    if let Some(s) = learned.selectivity(column, *op, v, self.now_ns) {
                        return (s, SelectivitySource::Learned);
                    }
                }
                (
                    self.nominal.predicate_selectivity(pred),
                    SelectivitySource::Nominal,
                )
            }
            Predicate::Between { column, lo, hi } => {
                let ge = Predicate::Compare {
                    column: column.clone(),
                    op: CompareOp::Ge,
                    value: lo.clone(),
                };
                let le = Predicate::Compare {
                    column: column.clone(),
                    op: CompareOp::Le,
                    value: hi.clone(),
                };
                let (a, sa) = self.selectivity_with_source(&ge);
                let (b, sb) = self.selectivity_with_source(&le);
                ((a + b - 1.0).clamp(0.0, 1.0), combine(sa, sb))
            }
            Predicate::And(ps) => self.fold(ps, 1.0, |acc, s| acc * s),
            Predicate::Or(ps) => self.fold(ps, 0.0, |acc, s| (acc + s).min(1.0)),
            Predicate::Not(p) => {
                let (s, src) = self.selectivity_with_source(p);
                (1.0 - s, src)
            }
            // True / InSet / IsNull have no learned representation;
            // delegate the whole shape to the nominal estimator.
            other => (
                self.nominal.predicate_selectivity(other),
                SelectivitySource::Nominal,
            ),
        }
    }

    fn fold(
        &self,
        ps: &[Predicate],
        init: f64,
        f: impl Fn(f64, f64) -> f64,
    ) -> (f64, SelectivitySource) {
        let mut acc = init;
        let mut src = SelectivitySource::Nominal;
        for p in ps {
            let (s, leaf_src) = self.selectivity_with_source(p);
            acc = f(acc, s);
            src = combine(src, leaf_src);
        }
        (acc, src)
    }
}

fn combine(a: SelectivitySource, b: SelectivitySource) -> SelectivitySource {
    if a == SelectivitySource::Learned || b == SelectivitySource::Learned {
        SelectivitySource::Learned
    } else {
        SelectivitySource::Nominal
    }
}

/// Numeric literal of a comparison, when it has one.
pub(crate) fn numeric(value: &Value) -> Option<f64> {
    match value {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::learned::{LearnedConfig, LearnedStats};
    use crate::dataset::test_fixtures::small_dataset;
    use drugtree_sources::source::SourceCapabilities;

    fn stats() -> OverlayStats {
        let d = small_dataset(SourceCapabilities::full());
        OverlayStats::collect(&d).unwrap()
    }

    #[test]
    fn nominal_view_matches_overlay_stats() {
        let stats = stats();
        let view = StatsView::nominal(&stats);
        for pred in [
            Predicate::True,
            Predicate::cmp("p_activity", CompareOp::Ge, 6.0),
            Predicate::cmp("p_activity", CompareOp::Ge, 6.0).and(Predicate::cmp(
                "mw",
                CompareOp::Lt,
                400.0,
            )),
            Predicate::Not(Box::new(Predicate::cmp("mw", CompareOp::Lt, 400.0))),
        ] {
            let (s, src) = view.selectivity_with_source(&pred);
            assert_eq!(s, stats.predicate_selectivity(&pred), "{pred:?}");
            assert_eq!(src, SelectivitySource::Nominal);
        }
    }

    #[test]
    fn learned_coverage_overrides_and_flags_the_source() {
        let stats = stats();
        let learned = LearnedStats::new(LearnedConfig::default());
        // Teach the learned stats two observed fractions around 6.0.
        for _ in 0..4 {
            learned.observe("p_activity", CompareOp::Ge, 5.0, 0.9, 100, 1_000);
            learned.observe("p_activity", CompareOp::Ge, 7.0, 0.1, 100, 1_000);
        }
        let view = StatsView::with_learned(&stats, Some(&learned), 2_000);
        let pred = Predicate::cmp("p_activity", CompareOp::Ge, 6.0);
        let (s, src) = view.selectivity_with_source(&pred);
        assert_eq!(src, SelectivitySource::Learned);
        assert!(
            (s - 0.5).abs() < 0.05,
            "interpolated between 0.9 and 0.1: {s}"
        );
        // A column with no learned coverage still answers nominally.
        let mw = Predicate::cmp("mw", CompareOp::Lt, 400.0);
        let (s_mw, src_mw) = view.selectivity_with_source(&mw);
        assert_eq!(src_mw, SelectivitySource::Nominal);
        assert_eq!(s_mw, stats.predicate_selectivity(&mw));
        // A conjunction mixing both is flagged learned.
        let (_, src_and) = view.selectivity_with_source(&pred.and(mw));
        assert_eq!(src_and, SelectivitySource::Learned);
    }
}
