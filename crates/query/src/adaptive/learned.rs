//! Online-learned per-column statistics.
//!
//! Every executed fetch whose plan pushed a single comparison down to
//! the sources reveals one *true* point on that column's cumulative
//! distribution: `rows_in / interval_count` is the measured fraction
//! of rows satisfying the predicate. [`LearnedStats`] folds those
//! observations into per-column piecewise-linear CDF sketches (sorted
//! control points, EMA-blended on repeat observations) and answers
//! later range-selectivity probes by interpolating between *fresh*
//! points — falling back to the nominal histograms (by returning
//! `None`) whenever coverage is missing, stale, or under-evidenced.
//!
//! Staleness runs on the virtual clock: a control point older than
//! [`LearnedConfig::ttl`] stops being served until re-observed, so a
//! shifted workload cannot keep planning on fossil cardinalities.

use drugtree_sources::sync::RwLock;
use drugtree_store::expr::CompareOp;
use rustc_hash::FxHashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Tuning for the learned-statistics loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnedConfig {
    /// Control points older than this (virtual clock) are not served.
    pub ttl: Duration,
    /// EMA blend weight for repeat observations of the same point.
    pub ema_alpha: f64,
    /// Observed values closer than this merge into one control point.
    pub merge_eps: f64,
    /// Observations a control point needs before it is served.
    pub min_observations: u64,
    /// Control points retained per column (oldest dropped beyond it).
    pub max_points: usize,
}

impl Default for LearnedConfig {
    fn default() -> LearnedConfig {
        LearnedConfig {
            ttl: Duration::from_secs(600),
            ema_alpha: 0.3,
            merge_eps: 1e-6,
            min_observations: 2,
            max_points: 64,
        }
    }
}

/// One learned point on a column's CDF.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ControlPoint {
    /// Predicate literal the observation was made at.
    value: f64,
    /// Raw measured fraction of rows strictly-or-weakly below `value`
    /// (range ops conflate the two; acceptable at histogram precision).
    /// EMA-blended on repeat observations; may violate monotonicity
    /// because different scopes measure different sub-populations.
    raw_frac: f64,
    /// Monotone fitted fraction actually served (the isotonic
    /// regression of `raw_frac` over all points, weighted by scope
    /// size).
    frac_below: f64,
    /// Rows in the scope interval the observation measured (EMA): the
    /// isotonic fit's weight, so a 3-row scope cannot outvote a
    /// 500-row one.
    weight: f64,
    /// Virtual clock of the most recent observation.
    updated_ns: u64,
    /// Observations folded into this point.
    observations: u64,
}

/// Counters and shape of the learned state, for reports and E17.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LearnedSnapshot {
    /// Columns with at least one control point.
    pub columns: usize,
    /// Control points across all columns.
    pub points: usize,
    /// Cardinality observations folded in.
    pub observations: u64,
    /// Selectivity probes answered from learned data.
    pub served: u64,
    /// Selectivity probes that fell back to nominal.
    pub fallbacks: u64,
}

/// Thread-safe online-learned column statistics.
///
/// Interior-mutable so the executor can update it from `&self` (the
/// `DrugTree` facade hands out only shared executor references).
#[derive(Debug)]
pub struct LearnedStats {
    config: LearnedConfig,
    columns: RwLock<FxHashMap<String, Vec<ControlPoint>>>,
    observations: AtomicU64,
    served: AtomicU64,
    fallbacks: AtomicU64,
}

impl LearnedStats {
    /// Empty learned statistics.
    pub fn new(config: LearnedConfig) -> LearnedStats {
        LearnedStats {
            config,
            columns: RwLock::new(FxHashMap::default()),
            observations: AtomicU64::new(0),
            served: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }

    /// Fold one observed cardinality into the sketch: executing a plan
    /// that pushed `column op value` to the sources returned
    /// `observed_fraction` of the `scope_rows` scoped rows. `Eq`/`Ne`
    /// carry no CDF information and are ignored.
    pub fn observe(
        &self,
        column: &str,
        op: CompareOp,
        value: f64,
        observed_fraction: f64,
        scope_rows: u64,
        now_ns: u64,
    ) {
        if !value.is_finite() || !observed_fraction.is_finite() {
            return;
        }
        let frac = observed_fraction.clamp(0.0, 1.0);
        // Convert the range op into a CDF point at `value`.
        let raw = match op {
            CompareOp::Lt | CompareOp::Le => frac,
            CompareOp::Gt | CompareOp::Ge => 1.0 - frac,
            CompareOp::Eq | CompareOp::Ne => return,
        };
        let weight = (scope_rows.max(1)) as f64;
        self.observations.fetch_add(1, Ordering::Relaxed);
        let mut columns = self.columns.write();
        let points = columns.entry(column.to_string()).or_default();
        match points
            .iter_mut()
            .find(|p| (p.value - value).abs() <= self.config.merge_eps)
        {
            Some(p) => {
                let alpha = self.config.ema_alpha;
                p.raw_frac = p.raw_frac * (1.0 - alpha) + raw * alpha;
                p.weight = p.weight * (1.0 - alpha) + weight * alpha;
                p.updated_ns = p.updated_ns.max(now_ns);
                p.observations += 1;
            }
            None => {
                points.push(ControlPoint {
                    value,
                    raw_frac: raw,
                    frac_below: raw,
                    weight,
                    updated_ns: now_ns,
                    observations: 1,
                });
                points.sort_by(|a, b| a.value.total_cmp(&b.value));
                if points.len() > self.config.max_points {
                    // Drop the stalest point to stay bounded.
                    if let Some((idx, _)) =
                        points.iter().enumerate().min_by_key(|(_, p)| p.updated_ns)
                    {
                        points.remove(idx);
                    }
                }
            }
        }
        // Re-impose monotonicity: a CDF cannot decrease, but measured
        // fractions from different scopes disagree (each scope samples
        // its own sub-population). A forward max-sweep would ratchet on
        // noise — one tiny zero-match scope would pin the whole upper
        // tail at 1.0 — so fit the weighted isotonic regression
        // instead: pool-adjacent-violators averages disagreeing
        // neighbours, and the scope-size weights keep small scopes from
        // outvoting large ones.
        isotonic_fit(points);
    }

    /// Learned selectivity for `column op value`, or `None` when the
    /// sketch has no fresh, evidenced coverage bracketing the probe
    /// (callers fall back to the nominal histograms).
    pub fn selectivity(&self, column: &str, op: CompareOp, value: f64, now_ns: u64) -> Option<f64> {
        if !value.is_finite() {
            return None;
        }
        match op {
            CompareOp::Eq | CompareOp::Ne => return None,
            _ => {}
        }
        let frac_below = {
            let columns = self.columns.read();
            let Some(points) = columns.get(column) else {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                return None;
            };
            let ttl = u64::try_from(self.config.ttl.as_nanos()).unwrap_or(u64::MAX);
            let fresh: Vec<&ControlPoint> = points
                .iter()
                .filter(|p| {
                    p.observations >= self.config.min_observations
                        && p.updated_ns.saturating_add(ttl) >= now_ns
                })
                .collect();
            let below = fresh.iter().rev().find(|p| p.value <= value);
            let above = fresh.iter().find(|p| p.value >= value);
            match (below, above) {
                (Some(lo), Some(hi)) if lo.value >= hi.value => lo.frac_below,
                (Some(lo), Some(hi)) => {
                    let t = (value - lo.value) / (hi.value - lo.value);
                    lo.frac_below + (hi.frac_below - lo.frac_below) * t
                }
                // No bracketing coverage: don't extrapolate.
                _ => {
                    self.fallbacks.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        };
        self.served.fetch_add(1, Ordering::Relaxed);
        let s = match op {
            CompareOp::Lt | CompareOp::Le => frac_below,
            _ => 1.0 - frac_below,
        };
        Some(s.clamp(0.0, 1.0))
    }

    /// Drop every control point (regret revert).
    pub fn clear(&self) {
        self.columns.write().clear();
    }

    /// Counters and shape, for the advisor report and E17.
    pub fn snapshot(&self) -> LearnedSnapshot {
        let columns = self.columns.read();
        LearnedSnapshot {
            columns: columns.len(),
            points: columns.values().map(Vec::len).sum(),
            observations: self.observations.load(Ordering::Relaxed),
            served: self.served.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }
}

/// Weighted isotonic regression (pool-adjacent-violators) of
/// `raw_frac` over value-sorted points, written into `frac_below`.
///
/// Each block holds a weighted mean; a block whose mean drops below its
/// predecessor's merges into it, so disagreeing neighbours average out
/// instead of ratcheting. O(n) per call and n ≤ `max_points`.
fn isotonic_fit(points: &mut [ControlPoint]) {
    // (weighted sum, weight, points covered) per merged block.
    let mut blocks: Vec<(f64, f64, usize)> = Vec::with_capacity(points.len());
    for p in points.iter() {
        let mut block = (p.raw_frac * p.weight, p.weight, 1usize);
        while let Some(prev) = blocks.last() {
            if prev.0 * block.1 <= block.0 * prev.1 {
                // prev mean <= block mean: monotone, stop merging.
                break;
            }
            block = (prev.0 + block.0, prev.1 + block.1, prev.2 + block.2);
            blocks.pop();
        }
        blocks.push(block);
    }
    let mut idx = 0;
    for (sum, weight, covered) in blocks {
        let mean = if weight > 0.0 { sum / weight } else { 0.0 };
        for p in points.iter_mut().skip(idx).take(covered) {
            p.frac_below = mean.clamp(0.0, 1.0);
        }
        idx += covered;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn learned() -> LearnedStats {
        LearnedStats::new(LearnedConfig::default())
    }

    #[test]
    fn interpolates_between_fresh_points() {
        let l = learned();
        for _ in 0..2 {
            l.observe("p_activity", CompareOp::Ge, 5.0, 0.8, 100, 100);
            l.observe("p_activity", CompareOp::Ge, 9.0, 0.2, 100, 100);
        }
        // Ge 5 keeps 80% → frac_below(5) = 0.2; Ge 9 keeps 20% →
        // frac_below(9) = 0.8. Probing Ge 7 interpolates to 0.5.
        let s = l
            .selectivity("p_activity", CompareOp::Ge, 7.0, 200)
            .unwrap();
        assert!((s - 0.5).abs() < 1e-9, "got {s}");
        // Lt probes answer from the same CDF.
        let lt = l
            .selectivity("p_activity", CompareOp::Lt, 7.0, 200)
            .unwrap();
        assert!((lt - 0.5).abs() < 1e-9, "got {lt}");
        // Exact hits return the learned point.
        let hit = l
            .selectivity("p_activity", CompareOp::Ge, 5.0, 200)
            .unwrap();
        assert!((hit - 0.8).abs() < 1e-9, "got {hit}");
    }

    #[test]
    fn no_extrapolation_outside_coverage() {
        let l = learned();
        for _ in 0..2 {
            l.observe("p_activity", CompareOp::Ge, 5.0, 0.8, 100, 100);
            l.observe("p_activity", CompareOp::Ge, 9.0, 0.2, 100, 100);
        }
        assert_eq!(l.selectivity("p_activity", CompareOp::Ge, 4.0, 200), None);
        assert_eq!(l.selectivity("p_activity", CompareOp::Ge, 9.5, 200), None);
        assert_eq!(l.selectivity("mw", CompareOp::Ge, 5.0, 200), None);
        let snap = l.snapshot();
        assert!(snap.fallbacks >= 3);
    }

    #[test]
    fn under_evidenced_points_are_not_served() {
        let l = learned();
        l.observe("p_activity", CompareOp::Ge, 5.0, 0.8, 100, 100);
        // min_observations = 2: one sighting is not evidence.
        assert_eq!(l.selectivity("p_activity", CompareOp::Ge, 5.0, 200), None);
        l.observe("p_activity", CompareOp::Ge, 5.0, 0.8, 100, 150);
        assert!(l
            .selectivity("p_activity", CompareOp::Ge, 5.0, 200)
            .is_some());
    }

    #[test]
    fn stale_points_expire_on_the_virtual_clock() {
        let l = LearnedStats::new(LearnedConfig {
            ttl: Duration::from_secs(1),
            ..LearnedConfig::default()
        });
        for _ in 0..2 {
            l.observe("p_activity", CompareOp::Ge, 5.0, 0.8, 100, 1_000);
        }
        assert!(l
            .selectivity("p_activity", CompareOp::Ge, 5.0, 500_000_000)
            .is_some());
        // Two virtual seconds later the point is stale.
        assert_eq!(
            l.selectivity("p_activity", CompareOp::Ge, 5.0, 2_000_001_000),
            None
        );
        // A fresh re-observation revives it.
        l.observe("p_activity", CompareOp::Ge, 5.0, 0.7, 100, 2_000_002_000);
        assert!(l
            .selectivity("p_activity", CompareOp::Ge, 5.0, 2_000_003_000)
            .is_some());
    }

    #[test]
    fn ema_blends_and_cdf_stays_monotone() {
        let l = learned();
        for _ in 0..4 {
            l.observe("p_activity", CompareOp::Ge, 5.0, 0.9, 100, 100);
        }
        // A contradictory later observation at a higher literal claims
        // a *lower* frac_below; the monotone sweep repairs the CDF.
        for _ in 0..4 {
            l.observe("p_activity", CompareOp::Ge, 6.0, 0.95, 100, 100);
        }
        let f5 = 1.0
            - l.selectivity("p_activity", CompareOp::Ge, 5.0, 200)
                .unwrap();
        let f6 = 1.0
            - l.selectivity("p_activity", CompareOp::Ge, 6.0, 200)
                .unwrap();
        assert!(f6 >= f5 - 1e-12, "CDF must not decrease: {f5} vs {f6}");
    }

    #[test]
    fn small_scope_outliers_cannot_ratchet_the_tail() {
        let l = learned();
        // A large scope measures the true CDF at three values...
        for _ in 0..2 {
            l.observe("p_activity", CompareOp::Ge, 5.0, 0.8, 500, 100);
            l.observe("p_activity", CompareOp::Ge, 7.0, 0.5, 500, 100);
            l.observe("p_activity", CompareOp::Ge, 9.0, 0.2, 500, 100);
        }
        // ...then a 3-row scope where nothing matched `Ge 6` claims
        // frac_below(6) = 1.0. A max-sweep would pin every higher
        // value at 1.0 (selectivity 0); the weighted isotonic fit
        // averages the outlier away.
        for _ in 0..2 {
            l.observe("p_activity", CompareOp::Ge, 6.0, 0.0, 3, 100);
        }
        let s9 = l
            .selectivity("p_activity", CompareOp::Ge, 9.0, 200)
            .unwrap();
        assert!(s9 > 0.15, "upper tail survives a tiny outlier: {s9}");
        let s7 = l
            .selectivity("p_activity", CompareOp::Ge, 7.0, 200)
            .unwrap();
        assert!(s7 > 0.4, "mid-range point stays near truth: {s7}");
    }

    #[test]
    fn eq_and_nan_observations_are_ignored() {
        let l = learned();
        l.observe("p_activity", CompareOp::Eq, 5.0, 0.5, 100, 100);
        l.observe("p_activity", CompareOp::Ge, f64::NAN, 0.5, 100, 100);
        l.observe("p_activity", CompareOp::Ge, 5.0, f64::NAN, 100, 100);
        assert_eq!(l.snapshot().points, 0);
        assert_eq!(l.selectivity("p_activity", CompareOp::Eq, 5.0, 200), None);
    }

    #[test]
    fn clear_reverts_to_empty() {
        let l = learned();
        for _ in 0..2 {
            l.observe("p_activity", CompareOp::Ge, 5.0, 0.8, 100, 100);
        }
        assert!(l.snapshot().points > 0);
        l.clear();
        assert_eq!(l.snapshot().points, 0);
        assert_eq!(l.selectivity("p_activity", CompareOp::Ge, 5.0, 200), None);
    }

    #[test]
    fn point_budget_is_bounded() {
        let l = LearnedStats::new(LearnedConfig {
            max_points: 4,
            ..LearnedConfig::default()
        });
        for i in 0..20 {
            l.observe("p_activity", CompareOp::Ge, i as f64, 0.5, 100, 100 + i);
        }
        assert!(l.snapshot().points <= 4);
    }
}
