//! The auto-materialization advisor.
//!
//! Folds slow-path *matview-answerable* queries (aggregate finishes
//! the planner had to execute without a materialized view) into
//! per-shape cumulative foregone cost — dedup count × charged latency,
//! the same arithmetic `drugtree top` renders from the slow-log. Once
//! the cumulative foregone cost crosses the measured break-even (the
//! E7 trade: one build scan vs the hits it saves), the advisor tells
//! the runtime to build the view. Afterwards it tracks amortization —
//! build cost vs latency actually saved by hits — and flags views that
//! never pay off for eviction.

use rustc_hash::FxHashMap;
use std::time::Duration;

/// Tuning for the auto-materialization loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdvisorConfig {
    /// Break-even override; when `None` the runtime supplies the
    /// measured scan cost (the E7 proxy) at decision time.
    pub break_even: Option<Duration>,
    /// A built view with zero hits for this long (virtual clock) is
    /// evicted as never-paying-off.
    pub eviction_idle: Duration,
}

impl Default for AdvisorConfig {
    fn default() -> AdvisorConfig {
        AdvisorConfig {
            break_even: None,
            eviction_idle: Duration::from_secs(60),
        }
    }
}

/// One matview-answerable shape's accumulated foregone cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeCost {
    /// Plan-shape fingerprint.
    pub fingerprint: u64,
    /// Canonical shape string.
    pub shape: String,
    /// Occurrences seen.
    pub count: u64,
    /// Charged latency accumulated while unserved by a view.
    pub foregone: Duration,
    /// Virtual clock of the most recent occurrence.
    pub last_seen_ns: u64,
}

/// Amortization bookkeeping for the one built view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BuiltView {
    at_ns: u64,
    build_cost: Duration,
    hits: u64,
    saved: Duration,
    last_hit_ns: u64,
}

/// Counters and state of the advisor, for reports and E17.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdvisorSnapshot {
    /// Distinct matview-answerable shapes observed.
    pub shapes: usize,
    /// Total unserved occurrences folded in.
    pub candidates: u64,
    /// Cumulative foregone charged latency (resets on build/evict).
    pub foregone: Duration,
    /// Whether a view is currently built.
    pub built: bool,
    /// Build cost of the current view (zero when none).
    pub build_cost: Duration,
    /// Queries served by the built view.
    pub hits: u64,
    /// Charged latency saved by those hits.
    pub saved: Duration,
    /// Views evicted as never-paying-off.
    pub evictions: u64,
}

/// Break-even bookkeeping for auto-materialization. Not itself
/// thread-safe; the adaptive runtime wraps it in a mutex.
#[derive(Debug, Default)]
pub struct MatviewAdvisor {
    config: AdvisorConfig,
    shapes: FxHashMap<u64, ShapeCost>,
    foregone_total: Duration,
    candidates: u64,
    built: Option<BuiltView>,
    evictions: u64,
}

impl MatviewAdvisor {
    /// An empty advisor.
    pub fn new(config: AdvisorConfig) -> MatviewAdvisor {
        MatviewAdvisor {
            config,
            shapes: FxHashMap::default(),
            foregone_total: Duration::ZERO,
            candidates: 0,
            built: None,
            evictions: 0,
        }
    }

    /// Fold one matview-answerable query that executed *without* a
    /// view. `measured_break_even` is the runtime's scan-cost proxy,
    /// used unless the config pins an override. Returns `true` when
    /// this occurrence pushes the cumulative foregone cost past
    /// break-even — i.e. the runtime should build the view now.
    pub fn note_candidate(
        &mut self,
        fingerprint: u64,
        shape: impl FnOnce() -> String,
        charged: Duration,
        now_ns: u64,
        measured_break_even: Duration,
    ) -> bool {
        self.candidates += 1;
        self.foregone_total += charged;
        let entry = self.shapes.entry(fingerprint).or_insert_with(|| ShapeCost {
            fingerprint,
            shape: shape(),
            count: 0,
            foregone: Duration::ZERO,
            last_seen_ns: 0,
        });
        entry.count += 1;
        entry.foregone += charged;
        entry.last_seen_ns = entry.last_seen_ns.max(now_ns);
        let break_even = self.config.break_even.unwrap_or(measured_break_even);
        self.built.is_none() && self.foregone_total > break_even
    }

    /// The view was built: start the amortization ledger.
    pub fn record_build(&mut self, at_ns: u64, build_cost: Duration) {
        self.built = Some(BuiltView {
            at_ns,
            build_cost,
            hits: 0,
            saved: Duration::ZERO,
            last_hit_ns: at_ns,
        });
        self.foregone_total = Duration::ZERO;
    }

    /// A query was served by the built view, saving roughly `saved`
    /// charged latency versus the unserved path.
    pub fn note_hit(&mut self, saved: Duration, now_ns: u64) {
        if let Some(b) = &mut self.built {
            b.hits += 1;
            b.saved += saved;
            b.last_hit_ns = b.last_hit_ns.max(now_ns);
        }
    }

    /// Whether the built view has earned back its build cost.
    pub fn amortized(&self) -> bool {
        self.built.is_some_and(|b| b.saved >= b.build_cost)
    }

    /// Whether the built view should be evicted: it has served nothing
    /// for the configured idle window — it never paid off.
    pub fn should_evict(&self, now_ns: u64) -> bool {
        let idle = u64::try_from(self.config.eviction_idle.as_nanos()).unwrap_or(u64::MAX);
        self.built
            .is_some_and(|b| b.hits == 0 && now_ns > b.last_hit_ns.saturating_add(idle))
    }

    /// The view was evicted; foregone-cost accumulation restarts so a
    /// genuinely hot workload can re-cross break-even later.
    pub fn record_evict(&mut self) {
        if self.built.take().is_some() {
            self.evictions += 1;
            self.foregone_total = Duration::ZERO;
            for shape in self.shapes.values_mut() {
                shape.foregone = Duration::ZERO;
            }
        }
    }

    /// Mean charged latency this shape paid per unserved occurrence —
    /// the per-hit savings estimate once a view serves it.
    pub fn mean_foregone(&self, fingerprint: u64) -> Option<Duration> {
        self.shapes
            .get(&fingerprint)
            .filter(|s| s.count > 0)
            .map(|s| s.foregone / u32::try_from(s.count.min(u64::from(u32::MAX))).unwrap_or(1))
    }

    /// Counters and state, for the advisor report and E17.
    pub fn snapshot(&self) -> AdvisorSnapshot {
        AdvisorSnapshot {
            shapes: self.shapes.len(),
            candidates: self.candidates,
            foregone: self.foregone_total,
            built: self.built.is_some(),
            build_cost: self.built.map_or(Duration::ZERO, |b| b.build_cost),
            hits: self.built.map_or(0, |b| b.hits),
            saved: self.built.map_or(Duration::ZERO, |b| b.saved),
            evictions: self.evictions,
        }
    }

    /// Observed shapes, hottest (by foregone cost) first; ties break
    /// on fingerprint for deterministic output.
    pub fn shapes(&self) -> Vec<ShapeCost> {
        let mut all: Vec<ShapeCost> = self.shapes.values().cloned().collect();
        all.sort_by(|a, b| {
            b.foregone
                .cmp(&a.foregone)
                .then_with(|| a.fingerprint.cmp(&b.fingerprint))
        });
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn advisor() -> MatviewAdvisor {
        MatviewAdvisor::new(AdvisorConfig {
            break_even: None,
            eviction_idle: ms(100),
        })
    }

    #[test]
    fn break_even_crossing_triggers_build_once() {
        let mut a = advisor();
        // 30ms break-even; three 10ms queries accumulate to it, the
        // fourth crosses.
        assert!(!a.note_candidate(1, || "agg".into(), ms(10), 1, ms(30)));
        assert!(!a.note_candidate(1, || "agg".into(), ms(10), 2, ms(30)));
        assert!(!a.note_candidate(1, || "agg".into(), ms(10), 3, ms(30)));
        assert!(a.note_candidate(1, || "agg".into(), ms(10), 4, ms(30)));
        a.record_build(4, ms(25));
        // Built: no further build requests.
        assert!(!a.note_candidate(1, || "agg".into(), ms(10), 5, ms(30)));
        let snap = a.snapshot();
        assert!(snap.built);
        assert_eq!(snap.build_cost, ms(25));
        assert_eq!(snap.candidates, 5);
    }

    #[test]
    fn config_override_beats_the_measured_proxy() {
        let mut a = MatviewAdvisor::new(AdvisorConfig {
            break_even: Some(ms(5)),
            eviction_idle: ms(100),
        });
        // Measured proxy says 1000ms, but the override (5ms) wins.
        assert!(a.note_candidate(1, || "agg".into(), ms(10), 1, ms(1_000)));
    }

    #[test]
    fn amortization_tracks_build_cost_vs_saved() {
        let mut a = advisor();
        a.note_candidate(1, || "agg".into(), ms(50), 1, ms(10));
        a.record_build(1, ms(30));
        assert!(!a.amortized());
        a.note_hit(ms(20), 2);
        assert!(!a.amortized());
        a.note_hit(ms(20), 3);
        assert!(a.amortized(), "40ms saved >= 30ms build");
        let snap = a.snapshot();
        assert_eq!(snap.hits, 2);
        assert_eq!(snap.saved, ms(40));
    }

    #[test]
    fn idle_views_evict_and_accumulation_restarts() {
        let mut a = advisor();
        a.note_candidate(1, || "agg".into(), ms(50), 1_000_000, ms(10));
        a.record_build(1_000_000, ms(30));
        // Within the idle window: keep.
        assert!(!a.should_evict(1_000_000 + ms(50).as_nanos() as u64));
        // Past it with zero hits: evict.
        assert!(a.should_evict(1_000_000 + ms(101).as_nanos() as u64));
        a.record_evict();
        let snap = a.snapshot();
        assert!(!snap.built);
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.foregone, Duration::ZERO);
        // A view that took even one hit is never idle-evicted.
        a.note_candidate(1, || "agg".into(), ms(50), 2_000_000, ms(10));
        a.record_build(2_000_000, ms(30));
        a.note_hit(ms(1), 2_000_001);
        assert!(!a.should_evict(u64::MAX));
    }

    #[test]
    fn shapes_sort_hottest_first() {
        let mut a = advisor();
        a.note_candidate(1, || "cool".into(), ms(5), 1, ms(1_000));
        a.note_candidate(2, || "hot".into(), ms(50), 2, ms(1_000));
        a.note_candidate(2, || "hot".into(), ms(50), 3, ms(1_000));
        let shapes = a.shapes();
        assert_eq!(shapes.len(), 2);
        assert_eq!(shapes[0].shape, "hot");
        assert_eq!(shapes[0].count, 2);
        assert_eq!(shapes[0].foregone, ms(100));
        assert_eq!(shapes[1].shape, "cool");
    }
}
