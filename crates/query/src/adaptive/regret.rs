//! Regret tracking: the guardrail under every adaptation.
//!
//! Each adaptation (arm) accumulates two latency populations on the
//! virtual clock: *baseline* (queries while the arm was inactive) and
//! *after* (queries once it applied). Once both sides carry enough
//! samples, an after-mean regressing past `threshold` relative to the
//! baseline mean flips the arm to *reverted* — the runtime undoes the
//! adaptation and emits an `adapt`/`revert` event. A healthy loop
//! shows **zero** reverts in steady state (E17 asserts exactly that).

use rustc_hash::FxHashMap;
use std::time::Duration;

/// Tuning for the regret guardrail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegretConfig {
    /// Samples each side needs before the arm is judged.
    pub min_samples: u64,
    /// Relative regression triggering a revert: after-mean must exceed
    /// `baseline_mean * (1 + threshold)`.
    pub threshold: f64,
}

impl Default for RegretConfig {
    fn default() -> RegretConfig {
        RegretConfig {
            min_samples: 16,
            threshold: 0.5,
        }
    }
}

/// The verdict returned when an arm crosses the regret threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegretVerdict {
    /// Mean charged latency before the adaptation, nanoseconds.
    pub baseline_mean_ns: u64,
    /// Mean charged latency after, nanoseconds.
    pub after_mean_ns: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct Arm {
    baseline_sum_ns: u128,
    baseline_n: u64,
    after_sum_ns: u128,
    after_n: u64,
    active: bool,
    reverted: bool,
}

impl Arm {
    fn mean(sum: u128, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            u64::try_from(sum / u128::from(n)).unwrap_or(u64::MAX)
        }
    }
}

/// Per-adaptation regret bookkeeping. Not itself thread-safe; the
/// adaptive runtime wraps it in a mutex.
#[derive(Debug, Default)]
pub struct RegretTracker {
    config: RegretConfig,
    arms: FxHashMap<String, Arm>,
    reverts: u64,
}

impl RegretTracker {
    /// An empty tracker.
    pub fn new(config: RegretConfig) -> RegretTracker {
        RegretTracker {
            config,
            arms: FxHashMap::default(),
            reverts: 0,
        }
    }

    /// Mark an adaptation as applied; subsequent observations feed the
    /// after-population. A reverted arm stays reverted.
    pub fn activate(&mut self, subject: &str) {
        let arm = self.arms.entry(subject.to_string()).or_default();
        if !arm.reverted {
            arm.active = true;
        }
    }

    /// Fold one charged query latency into `subject`'s bookkeeping.
    /// Returns a verdict when this observation pushes the arm past the
    /// regret threshold (the arm is marked reverted exactly once).
    pub fn observe(&mut self, subject: &str, charged: Duration) -> Option<RegretVerdict> {
        let min = self.config.min_samples;
        let threshold = self.config.threshold;
        let arm = self.arms.entry(subject.to_string()).or_default();
        let ns = charged.as_nanos();
        if !arm.active || arm.reverted {
            arm.baseline_sum_ns += ns;
            arm.baseline_n += 1;
            return None;
        }
        arm.after_sum_ns += ns;
        arm.after_n += 1;
        if arm.baseline_n < min || arm.after_n < min {
            return None;
        }
        let baseline = Arm::mean(arm.baseline_sum_ns, arm.baseline_n);
        let after = Arm::mean(arm.after_sum_ns, arm.after_n);
        if (after as f64) > (baseline as f64) * (1.0 + threshold) {
            arm.reverted = true;
            arm.active = false;
            self.reverts += 1;
            return Some(RegretVerdict {
                baseline_mean_ns: baseline,
                after_mean_ns: after,
            });
        }
        None
    }

    /// Whether `subject` has been reverted.
    pub fn is_reverted(&self, subject: &str) -> bool {
        self.arms.get(subject).is_some_and(|a| a.reverted)
    }

    /// Whether `subject` is currently applied (and not reverted).
    pub fn is_active(&self, subject: &str) -> bool {
        self.arms.get(subject).is_some_and(|a| a.active)
    }

    /// Total reverts fired.
    pub fn reverts(&self) -> u64 {
        self.reverts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn tracker(min_samples: u64, threshold: f64) -> RegretTracker {
        RegretTracker::new(RegretConfig {
            min_samples,
            threshold,
        })
    }

    #[test]
    fn healthy_adaptation_never_reverts() {
        let mut t = tracker(4, 0.5);
        for _ in 0..8 {
            assert_eq!(t.observe("learned-stats", ms(100)), None);
        }
        t.activate("learned-stats");
        // Latency improves after the adaptation: no regret.
        for _ in 0..32 {
            assert_eq!(t.observe("learned-stats", ms(60)), None);
        }
        assert!(t.is_active("learned-stats"));
        assert!(!t.is_reverted("learned-stats"));
        assert_eq!(t.reverts(), 0);
    }

    #[test]
    fn regression_past_threshold_reverts_once() {
        let mut t = tracker(4, 0.5);
        for _ in 0..4 {
            t.observe("matview", ms(100));
        }
        t.activate("matview");
        let mut verdicts = Vec::new();
        for _ in 0..8 {
            if let Some(v) = t.observe("matview", ms(200)) {
                verdicts.push(v);
            }
        }
        assert_eq!(verdicts.len(), 1, "revert fires exactly once");
        assert_eq!(verdicts[0].baseline_mean_ns, 100_000_000);
        assert!(verdicts[0].after_mean_ns > 150_000_000);
        assert!(t.is_reverted("matview"));
        assert!(!t.is_active("matview"));
        assert_eq!(t.reverts(), 1);
        // A reverted arm cannot be re-activated.
        t.activate("matview");
        assert!(!t.is_active("matview"));
    }

    #[test]
    fn no_verdict_before_min_samples() {
        let mut t = tracker(8, 0.1);
        for _ in 0..8 {
            t.observe("learned-stats", ms(10));
        }
        t.activate("learned-stats");
        for _ in 0..7 {
            assert_eq!(
                t.observe("learned-stats", ms(1_000)),
                None,
                "under-sampled arms are never judged"
            );
        }
        assert!(t.observe("learned-stats", ms(1_000)).is_some());
    }

    #[test]
    fn mild_regression_within_threshold_is_tolerated() {
        let mut t = tracker(4, 0.5);
        for _ in 0..4 {
            t.observe("matview", ms(100));
        }
        t.activate("matview");
        for _ in 0..16 {
            assert_eq!(t.observe("matview", ms(130)), None, "30% < 50% threshold");
        }
        assert_eq!(t.reverts(), 0);
    }
}
