//! Executor-side serving layer: the N-way sharded semantic cache.
//!
//! A single `Mutex<SemanticCache>` serializes every concurrent query
//! behind one lock — under M sessions the cache becomes the hottest
//! point of contention in the read path. The sharded cache splits the
//! entry space across N independent locks:
//!
//! * **Routing** — an entry lives in the shard addressed by the hash
//!   of its *pushdown predicate key* (`pred_key`). Containment-based
//!   drill-down reuse always probes the same pushdown key it inserted
//!   under (the plan validator's cache-key-consistency invariant), so
//!   parent and child queries of one exploration path land on the same
//!   shard and the cache's raison d'être survives sharding intact.
//!   Unfiltered entries (`pushdown = None`) answer *any* probe, so a
//!   filtered probe that misses its home shard falls back to the
//!   unfiltered shard. What sharding forfeits is cross-predicate
//!   bound-subsumption reuse (a `p ≥ 7` probe answered by a `p ≥ 6`
//!   entry) when the two keys hash to different shards — a hit-rate
//!   trade, never a correctness one.
//! * **Counters** — hit/miss/eviction/invalidation counts live in
//!   atomics beside the shards, so [`ShardedSemanticCache::stats`]
//!   (polled by benchmarks and dashboards mid-run) never takes a
//!   shard lock.
//! * **Budgets** — `max_entries`/`max_rows` are split evenly across
//!   shards; each shard enforces its slice independently.
//!
//! The cross-session fetch-coordination half of the serving layer
//! (single-flight, batch coalescing) lives downstream in
//! [`drugtree_sources::serve`] and is re-exported here so executor
//! users configure both halves from one place.

pub use drugtree_sources::serve::{
    pred_key, validate_coalesced, CoordinatedFetch, FetchCoordinator, ServeConfig, ServeStats,
    ServeViolation, RULE_COALESCE_BATCH, RULE_FLIGHT_PREDICATE,
};

use crate::cache::{CacheConfig, CacheHit, CacheStats, SemanticCache};
use drugtree_phylo::index::LeafInterval;
use drugtree_sources::sync::Mutex;
use drugtree_store::expr::Predicate;
use drugtree_store::value::Value;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// The N-way sharded semantic cache.
pub struct ShardedSemanticCache {
    shards: Vec<Mutex<SemanticCache>>,
    /// `shards.len() - 1`; shard count is a power of two.
    mask: usize,
    probes: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl ShardedSemanticCache {
    /// Build with `config.shards` shards (rounded up to a power of
    /// two), splitting the entry/row budgets evenly across them.
    pub fn new(config: CacheConfig) -> ShardedSemanticCache {
        let n = config.shards.max(1).next_power_of_two();
        let per_shard = CacheConfig {
            max_entries: config.max_entries.div_ceil(n).max(1),
            max_rows: config.max_rows.div_ceil(n).max(1),
            shards: 1,
        };
        ShardedSemanticCache {
            shards: (0..n)
                .map(|_| Mutex::new(SemanticCache::new(per_shard)))
                .collect(),
            mask: n - 1,
            probes: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard an entry with this pushdown key lives in.
    fn shard_of(&self, pushdown: Option<&Predicate>) -> usize {
        let mut h = rustc_hash::FxHasher::default();
        pred_key(pushdown).hash(&mut h);
        (h.finish() as usize) & self.mask
    }

    /// Probe for an entry answering `(interval, pushdown)`. Locks the
    /// home shard of the pushdown key; a filtered probe that misses
    /// additionally tries the unfiltered shard (whose `None`-pushdown
    /// entries answer any predicate).
    pub fn probe(&self, interval: LeafInterval, pushdown: Option<&Predicate>) -> Option<CacheHit> {
        self.probes.fetch_add(1, Ordering::Relaxed);
        let home = self.shard_of(pushdown);
        let mut hit = self.shards[home].lock().probe(interval, pushdown);
        if hit.is_none() && pushdown.is_some() {
            let unfiltered = self.shard_of(None);
            if unfiltered != home {
                hit = self.shards[unfiltered].lock().probe(interval, pushdown);
            }
        }
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Insert a fetch result into the pushdown key's home shard.
    pub fn insert(
        &self,
        interval: LeafInterval,
        pushdown: Option<Predicate>,
        rows: Vec<Vec<Value>>,
    ) {
        let shard = self.shard_of(pushdown.as_ref());
        let evicted = self.shards[shard].lock().insert(interval, pushdown, rows);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Drop every entry in every shard.
    pub fn invalidate_all(&self) {
        let mut dropped = 0;
        for shard in &self.shards {
            dropped += shard.lock().invalidate_all();
        }
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
    }

    /// Drop entries overlapping `interval` in every shard (a targeted
    /// refresh; each shard prunes via its interval index).
    pub fn invalidate_interval(&self, interval: LeafInterval) {
        let mut dropped = 0;
        for shard in &self.shards {
            dropped += shard.lock().invalidate_interval(interval);
        }
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
    }

    /// Cumulative counters. Reads only the atomics — never takes a
    /// shard lock, so stats polling cannot stall the serving path.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            probes: self.probes.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Live entries across all shards (takes every shard lock; for
    /// tests and diagnostics, not the serving path).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total cached rows across all shards (takes every shard lock).
    pub fn total_rows(&self) -> usize {
        self.shards.iter().map(|s| s.lock().total_rows()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drugtree_store::expr::CompareOp;

    fn iv(lo: u32, hi: u32) -> LeafInterval {
        LeafInterval { lo, hi }
    }

    fn row(rank: i64) -> Vec<Value> {
        vec![Value::Int(rank), Value::from("x")]
    }

    fn cache(shards: usize) -> ShardedSemanticCache {
        ShardedSemanticCache::new(CacheConfig {
            shards,
            ..CacheConfig::default()
        })
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(cache(1).shard_count(), 1);
        assert_eq!(cache(3).shard_count(), 4);
        assert_eq!(cache(8).shard_count(), 8);
        assert_eq!(cache(0).shard_count(), 1);
    }

    #[test]
    fn drilldown_hits_survive_sharding() {
        let c = cache(8);
        let p = Predicate::cmp("p_activity", CompareOp::Ge, 6.0);
        c.insert(iv(0, 16), Some(p.clone()), vec![row(1), row(9)]);
        // Child probe under the same pushdown key: same shard, hit.
        let hit = c.probe(iv(0, 8), Some(&p)).unwrap();
        assert_eq!(hit.rows, vec![row(1)]);
        let s = c.stats();
        assert_eq!((s.probes, s.hits, s.misses), (1, 1, 0));
    }

    #[test]
    fn unfiltered_shard_answers_filtered_probes() {
        let c = cache(8);
        c.insert(iv(0, 16), None, vec![row(3)]);
        // A filtered probe whose home shard is empty falls back to the
        // unfiltered shard.
        let p = Predicate::cmp("p_activity", CompareOp::Ge, 6.0);
        assert!(c.probe(iv(0, 4), Some(&p)).is_some());
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn stats_reads_are_consistent_and_lock_free() {
        let c = cache(4);
        c.insert(iv(0, 8), None, vec![row(1)]);
        let _ = c.probe(iv(0, 4), None);
        let _ = c.probe(iv(9, 12), None);
        // Hold every shard lock: stats() must still return (it reads
        // only atomics).
        let guards: Vec<_> = c.shards.iter().map(Mutex::lock).collect();
        let s = c.stats();
        drop(guards);
        assert_eq!(s.probes, 2);
        assert_eq!(s.hits + s.misses, s.probes);
    }

    #[test]
    fn invalidation_sweeps_every_shard() {
        let c = cache(8);
        let preds: Vec<Option<Predicate>> = (0..6)
            .map(|i| {
                if i == 0 {
                    None
                } else {
                    Some(Predicate::eq("year", 2000 + i as i64))
                }
            })
            .collect();
        for (i, p) in preds.iter().enumerate() {
            c.insert(iv(i as u32, i as u32 + 2), p.clone(), vec![row(i as i64)]);
        }
        assert_eq!(c.len(), 6);
        c.invalidate_interval(iv(0, 3));
        // Entries [0,2), [1,3), [2,4) overlap; the rest survive.
        assert_eq!(c.len(), 3);
        c.invalidate_all();
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidations, 6);
    }

    #[test]
    fn budgets_split_across_shards() {
        let c = ShardedSemanticCache::new(CacheConfig {
            max_entries: 16,
            max_rows: 1600,
            shards: 8,
        });
        // Each shard gets 2 entries / 200 rows.
        let one = c.shards[0].lock();
        assert_eq!(one.len(), 0);
        drop(one);
        // Overfill one pushdown key (one shard): evictions must kick
        // in at the per-shard budget, not the global one.
        let p = Predicate::eq("year", 2012i64);
        for i in 0..5u32 {
            c.insert(iv(10 + i, 11 + i), Some(p.clone()), vec![row(i as i64)]);
        }
        assert!(c.stats().evictions >= 3, "per-shard entry budget enforced");
    }
}
