//! Golden EXPLAIN ANALYZE tests: the analyzed rendering embeds the
//! plain EXPLAIN text unchanged (so the goldens in `explain_golden.rs`
//! remain the contract for tooling that parses plans) and appends
//! `actual:` columns plus the per-stage trace. Everything is timed on
//! the virtual clock with the jitter-free test latency model, so the
//! full rendering is deterministic and can be pinned byte-for-byte.

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree_query::dataset::test_fixtures::small_dataset;
use drugtree_query::{Executor, Optimizer, OptimizerConfig, Query, Scope, Stage};
use drugtree_store::expr::{CompareOp, Predicate};
use std::time::Duration;

fn full_caps() -> drugtree_sources::source::SourceCapabilities {
    drugtree_sources::source::SourceCapabilities::full()
}

/// The same reference query the EXPLAIN goldens pin.
fn year_query() -> Query {
    Query::activities(Scope::Subtree("cladeA".into())).filter(Predicate::cmp(
        "year",
        CompareOp::Ge,
        2012i64,
    ))
}

fn full_executor(d: &drugtree_query::Dataset) -> Executor {
    let mut e = Executor::new(Optimizer::new(OptimizerConfig::full()));
    e.collect_stats(d).unwrap();
    e
}

/// The cold-cache analyze golden. The fixed-mode estimator prices the
/// fetch off the same jitter-free latency model the fetch then runs
/// against, so estimate and actual agree exactly and the rendered
/// relative error is 0.00.
#[test]
fn golden_full_analyze() {
    let d = small_dataset(full_caps());
    let e = full_executor(&d);
    let analyzed = e.analyze(&d, &year_query()).unwrap();
    assert_eq!(
        analyzed.render(),
        "\
Plan: scope=n1 interval=[0, 2) pruned_leaves=0 est_cost=12ms est_rows=2 | actual: cost=12ms rows=2 err=0.00
  CacheProbe pushdown=year >= 2012 insert_on_miss=true | actual: miss
    miss-> SourceFetch source=assay-sim keys=2 pushdown=year >= 2012 batched=true max_batch=100 concurrent=true est_cost=12ms est_rows=2 | actual: cost=12ms rows=2 requests=1
  Residual: year >= 2012
  LigandJoin
  Collect
  # interval-rewrite: scope -> [0, 2)
  # selectivity-ordering: residual conjuncts reordered
  # pushdown: year >= 2012
  # batching: keyed lookups coalesced
  RuleTrace analyze/1: interval_rewrite=changed similarity_resolve=n/a substructure_resolve=n/a column_discovery=changed
  RuleTrace analyze/2: interval_rewrite=no-change similarity_resolve=n/a substructure_resolve=n/a column_discovery=no-change
  RuleTrace canonicalize/1: canon_nnf=no-change canon_flatten=no-change canon_fold=no-change canon_between=no-change canon_dedup=no-change
  RuleTrace optimize/1: selectivity_ordering=changed stats_pruning=no-change pushdown=changed cardinality_estimate=changed replica_selection=n/a use_matview=n/a columnar_scan=n/a semantic_cache=changed
  RuleTrace optimize/2: selectivity_ordering=no-change stats_pruning=no-change pushdown=no-change cardinality_estimate=no-change replica_selection=n/a use_matview=n/a columnar_scan=n/a semantic_cache=no-change
  RuleTrace lower/1: batching=changed concurrent_dispatch=changed lower_fetches=changed access_select=changed finish_build=changed
  RuleTrace lower/2: batching=no-change concurrent_dispatch=no-change lower_fetches=no-change access_select=no-change finish_build=no-change
  Trace:
    query: actual=12ms est=12ms
      plan: actual=0ns est=12ms candidates=0
        plan phase analyze: actual=0ns passes=2 changed=2
        plan phase canonicalize: actual=0ns passes=1 changed=0
        plan phase optimize: actual=0ns passes=2 changed=4
        plan phase lower: actual=0ns passes=2 changed=5
      cache-probe miss: actual=0ns
      fetch assay-sim: actual=12ms est=12ms rows=2 requests=1 keys=2 retries=0
      overlay: actual=0ns rows_in=2 rows_out=2
      finish collect: actual=0ns rows=2
"
    );
    assert_eq!(analyzed.access_error(), Some(0.0));
    assert_eq!(analyzed.trace.cache_hit, Some(false));
    assert_eq!(analyzed.result.rows.len(), 2);
    // The embedded EXPLAIN text is byte-identical to the plain plan
    // rendering: strip the appended columns and the trace block.
    let embedded: String = analyzed
        .render()
        .lines()
        .take_while(|l| l.trim_start() != "Trace:")
        .map(|l| l.split(" | actual:").next().unwrap())
        .fold(String::new(), |mut s, l| {
            s.push_str(l);
            s.push('\n');
            s
        });
    assert_eq!(embedded, analyzed.plan.explain());
}

/// On a warm cache the access estimate (which prices the miss path)
/// has no observed counterpart: no error column, fetch lines marked
/// not executed, probe marked hit.
#[test]
fn analyze_on_cache_hit() {
    let d = small_dataset(full_caps());
    let e = full_executor(&d);
    e.execute(&d, &year_query()).unwrap();
    let analyzed = e.analyze(&d, &year_query()).unwrap();
    assert_eq!(analyzed.trace.cache_hit, Some(true));
    assert_eq!(analyzed.access_error(), None);
    assert_eq!(analyzed.trace.access_cost, Duration::ZERO);
    let text = analyzed.render();
    assert!(text.contains("(cache hit)"), "{text}");
    assert!(
        text.contains("CacheProbe") && text.contains("| actual: hit"),
        "{text}"
    );
    assert!(text.contains("| actual: not executed"), "{text}");
    assert_eq!(analyzed.trace.stage_total(Stage::Fetch), Duration::ZERO);
}

/// The acceptance gate shared with experiment E12: a calibrated
/// cost-based plan's estimate-vs-actual error, as EXPLAIN ANALYZE
/// reports it, stays under the 0.20 calibration ceiling.
#[test]
fn calibrated_analyze_error_under_ceiling() {
    const CALIBRATED_ERROR_CEILING: f64 = 0.20;

    let d = small_dataset(full_caps());
    let mut e = Executor::new(Optimizer::new(OptimizerConfig::cost_based()));
    e.collect_stats(&d).unwrap();
    // Calibration warmup: repeated cold executions feed observed fetch
    // latencies into the cost model.
    let q = Query::activities(Scope::Tree);
    for _ in 0..4 {
        e.invalidate();
        e.execute(&d, &q).unwrap();
    }
    e.invalidate();
    let analyzed = e.analyze(&d, &q).unwrap();
    let err = analyzed.access_error().expect("cold run has access cost");
    assert!(
        err < CALIBRATED_ERROR_CEILING,
        "calibrated estimate error {err:.3} vs actual {:?} (est {:?})",
        analyzed.trace.access_cost,
        analyzed.plan.estimated_cost
    );
    let text = analyzed.render();
    assert!(text.contains("| actual: cost="), "{text}");
    assert!(
        text.contains("Candidate ["),
        "cost-based plan renders candidates: {text}"
    );
}

/// Deterministic replay: analyzing the same query from the same state
/// yields an identical trace rendering (virtual clock, zero jitter).
#[test]
fn analyze_is_deterministic() {
    let render_once = || {
        let d = small_dataset(full_caps());
        let e = full_executor(&d);
        e.analyze(&d, &year_query()).unwrap().render()
    };
    assert_eq!(render_once(), render_once());
}
