//! Tier-1 concurrency stress: 8 OS threads hammer one shared
//! serving-enabled executor with mixed query streams, and every result
//! must match a single-threaded replay of the same streams on a fresh
//! executor of the same configuration. Divergence means the sharded
//! cache, single-flight layer, or batch coalescer corrupted a result
//! under contention; the replay also pins the lock-free cache
//! accounting (`hits + misses == probes`).
//!
//! Run with: `cargo test -p drugtree-query --test concurrent_stress`

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree_chem::affinity::{ActivityRecord, ActivityType};
use drugtree_integrate::overlay::OverlayBuilder;
use drugtree_phylo::index::{LeafInterval, TreeIndex};
use drugtree_phylo::newick::parse_newick;
use drugtree_query::ast::Metric;
use drugtree_query::{Dataset, Executor, Optimizer, OptimizerConfig, Query, Scope, ServeConfig};
use drugtree_sources::assay_db::assay_source;
use drugtree_sources::clock::VirtualClock;
use drugtree_sources::federation::SourceRegistry;
use drugtree_sources::latency::LatencyModel;
use drugtree_sources::ligand_db::LigandRecord;
use drugtree_sources::protein_db::ProteinRecord;
use drugtree_sources::source::SourceCapabilities;
use drugtree_store::expr::{CompareOp, Predicate};
use drugtree_store::value::Value;
use std::sync::Arc;
use std::time::Duration;

const THREADS: usize = 8;
const QUERIES_PER_THREAD: usize = 200;
const LEAVES: usize = 24;

// ---------------------------------------------------------------------
// Deterministic PRNG (xorshift64*), as in the differential oracle.
// ---------------------------------------------------------------------

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

// ---------------------------------------------------------------------
// Deterministic 24-leaf dataset: balanced binary tree, 6 ligands,
// globally distinct value_nm so top-k never ties.
// ---------------------------------------------------------------------

fn balanced_newick(labels: &[String]) -> String {
    if labels.len() == 1 {
        return format!("{}:1", labels[0]);
    }
    let mid = labels.len() / 2;
    format!(
        "({},{}):1",
        balanced_newick(&labels[..mid]),
        balanced_newick(&labels[mid..])
    )
}

const LIGANDS: [(&str, &str, &str); 6] = [
    ("L0", "aspirin", "CC(=O)Oc1ccccc1C(=O)O"),
    ("L1", "ethanol", "CCO"),
    ("L2", "caffeine", "Cn1cnc2c1c(=O)n(C)c(=O)n2C"),
    ("L3", "benzene", "c1ccccc1"),
    ("L4", "propane", "CCC"),
    ("L5", "ethylamine", "CCN"),
];

fn build_dataset() -> Dataset {
    let labels: Vec<String> = (0..LEAVES).map(|i| format!("P{i}")).collect();
    let newick = format!("{};", balanced_newick(&labels));
    let tree = parse_newick(&newick).expect("valid newick");
    let index = TreeIndex::build(&tree);

    let proteins: Vec<ProteinRecord> = labels
        .iter()
        .map(|acc| ProteinRecord {
            accession: acc.clone(),
            name: format!("protein {acc}"),
            organism: "synthetic".into(),
            sequence: "MKVLAT".into(),
            gene: None,
        })
        .collect();
    let ligands: Vec<LigandRecord> = LIGANDS
        .iter()
        .map(|(id, name, smiles)| LigandRecord::from_smiles(*id, *name, *smiles).expect("valid"))
        .collect();

    let mut acts = Vec::new();
    let mut counter = 0u32;
    for (rank, acc) in labels.iter().enumerate() {
        if rank % 11 == 4 {
            continue; // statistics pruning fodder
        }
        for (l, (ligand, _, _)) in LIGANDS.iter().enumerate() {
            if (rank * 5 + l * 3) % 7 >= 4 {
                continue;
            }
            let exp = f64::from(counter) * 0.05;
            acts.push(ActivityRecord {
                protein_accession: acc.clone(),
                ligand_id: (*ligand).into(),
                activity_type: ActivityType::ALL[(rank + l) % ActivityType::ALL.len()],
                value_nm: 10f64.powf(exp),
                source: "chembl-sim".into(),
                year: 2004 + ((rank * 3 + l * 5) % 12) as u16,
            });
            counter += 1;
        }
    }
    assert!(acts.len() >= 60, "dataset holds {} activities", acts.len());

    let overlay = OverlayBuilder::new(&tree, &index)
        .build(&proteins, &ligands, &[])
        .expect("overlay builds");

    // max_batch 6 forces multi-chunk batched fetches over wide scopes.
    let caps = SourceCapabilities {
        eq_pushdown: true,
        range_pushdown: true,
        max_batch: 6,
    };
    let latency = LatencyModel {
        base_rtt: Duration::from_millis(10),
        per_row: Duration::from_millis(1),
        per_row_scanned: Duration::ZERO,
        jitter: 0.0,
        seed: 0,
    };
    let mut registry = SourceRegistry::new();
    registry
        .register(Arc::new(
            assay_source("assay-a", &acts, caps, latency).expect("source"),
        ))
        .expect("register");

    Dataset::new(tree, index, overlay, registry, VirtualClock::new()).expect("dataset")
}

// ---------------------------------------------------------------------
// Mixed query streams, one independent seed per thread.
// ---------------------------------------------------------------------

fn gen_query(rng: &mut XorShift) -> Query {
    let scope = match rng.below(6) {
        0 => Scope::Tree,
        1 | 2 => {
            let lo = rng.below(LEAVES as u64) as u32;
            let hi = lo + 1 + rng.below(LEAVES as u64 - u64::from(lo)) as u32;
            Scope::Interval(LeafInterval { lo, hi })
        }
        3 | 4 => {
            // Aligned power-of-two intervals: many threads request the
            // exact same clades, the single-flight/coalescer hot path.
            let span = 1u32 << rng.below(4);
            let lo = (rng.below(LEAVES as u64) as u32 / span) * span;
            LeafInterval {
                lo,
                hi: (lo + span).min(LEAVES as u32),
            }
            .into_scope()
        }
        _ => Scope::Leaves(vec![format!("P{}", rng.below(LEAVES as u64))]),
    };
    let mut q = Query::activities(scope);
    for _ in 0..rng.below(3) {
        q = q.filter(match rng.below(4) {
            0 => Predicate::cmp("p_activity", CompareOp::Ge, rng.f64_in(4.0, 8.0)),
            1 => Predicate::cmp("year", CompareOp::Ge, 2004 + rng.below(12) as i64),
            2 => Predicate::eq("ligand_id", LIGANDS[rng.below(6) as usize].0),
            _ => Predicate::eq(
                "activity_type",
                ActivityType::ALL[rng.below(4) as usize].label(),
            ),
        });
    }
    match rng.below(8) {
        0..=3 => {}
        4 | 5 => {
            let by = if rng.chance(50) {
                "p_activity"
            } else {
                "value_nm"
            };
            q = q.top_k(by, 1 + rng.below(8) as usize, rng.chance(50));
        }
        6 => {
            let metric = [
                Metric::Count,
                Metric::DistinctLigands,
                Metric::MaxPActivity,
                Metric::MeanPActivity,
            ][rng.below(4) as usize];
            q = q.aggregate(metric);
        }
        _ => q.kind = drugtree_query::ast::QueryKind::CountPerLeaf,
    }
    q
}

trait IntoScope {
    fn into_scope(self) -> Scope;
}

impl IntoScope for LeafInterval {
    fn into_scope(self) -> Scope {
        Scope::Interval(self)
    }
}

fn thread_stream(thread: usize) -> Vec<Query> {
    let mut rng = XorShift::new(0xC0FF_EE00 + thread as u64);
    (0..QUERIES_PER_THREAD)
        .map(|_| gen_query(&mut rng))
        .collect()
}

/// Round float cells (MeanPActivity sums in fetch order) and sort:
/// the finish operators define sets, not sequences.
fn normalize(rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    Value::Float(f) => Value::Float((f * 1e9).round() / 1e9),
                    other => other.clone(),
                })
                .collect()
        })
        .collect();
    out.sort();
    out
}

fn serving_executor(dataset: &Dataset) -> Executor {
    let mut config = OptimizerConfig::full();
    config.validate = true;
    let mut exec = Executor::new(Optimizer::new(config));
    exec.collect_stats(dataset).expect("stats");
    exec.build_matview(dataset).expect("matview");
    exec.enable_serving(ServeConfig::default());
    exec
}

#[test]
fn eight_threads_match_single_threaded_replay() {
    let dataset = build_dataset();
    let streams: Vec<Vec<Query>> = (0..THREADS).map(thread_stream).collect();

    // Concurrent pass: all threads share one executor.
    let shared = Arc::new(serving_executor(&dataset));
    let mut concurrent: Vec<Vec<Vec<Vec<Value>>>> = Vec::with_capacity(THREADS);
    std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(t, stream)| {
                let exec = Arc::clone(&shared);
                let dataset = &dataset;
                scope.spawn(move || {
                    stream
                        .iter()
                        .enumerate()
                        .map(|(i, q)| {
                            let r = exec.execute(dataset, q).unwrap_or_else(|e| {
                                panic!("thread {t} query #{i} `{q}` failed: {e}")
                            });
                            normalize(&r.rows)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            concurrent.push(h.join().expect("no thread panic"));
        }
    });

    // Accounting invariant: the sharded cache's lock-free counters
    // never lose a probe under contention.
    let stats = shared.cache_stats();
    assert_eq!(
        stats.hits + stats.misses,
        stats.probes,
        "cache accounting drifted: {stats:?}"
    );
    assert!(stats.probes > 0, "the streams exercised the cache");

    // Replay pass: same streams, same configuration, fresh executor,
    // strictly single-threaded, on a fresh dataset (private clock).
    let replay_dataset = build_dataset();
    let replay_exec = serving_executor(&replay_dataset);
    for (t, stream) in streams.iter().enumerate() {
        for (i, q) in stream.iter().enumerate() {
            let r = replay_exec
                .execute(&replay_dataset, q)
                .unwrap_or_else(|e| panic!("replay thread {t} query #{i} `{q}` failed: {e}"));
            assert_eq!(
                normalize(&r.rows),
                concurrent[t][i],
                "thread {t} query #{i} `{q}` diverges from single-threaded replay"
            );
        }
    }
}
