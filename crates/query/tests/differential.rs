//! Differential query oracle: the naive pipeline is the semantics.
//!
//! A deterministic generator (hand-rolled xorshift64* PRNG, no
//! external dependencies) produces several hundred queries spanning
//! every query class — activities, top-k, per-child aggregates,
//! per-leaf counts, with predicates, similarity, and substructure
//! constraints over every scope shape. Each query runs under
//! `OptimizerConfig::naive()` and under every single-rule-on config
//! plus the full config, and the normalized result sets must be
//! identical: optimizer rules may only change *how* rows are obtained,
//! never *which* rows come back. On divergence the test prints both
//! EXPLAIN outputs so the offending rewrite is immediately visible.
//!
//! Run with: `cargo test -p drugtree-query --test differential`

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree_chem::affinity::{ActivityRecord, ActivityType};
use drugtree_integrate::overlay::OverlayBuilder;
use drugtree_phylo::index::{LeafInterval, TreeIndex};
use drugtree_phylo::newick::parse_newick;
use drugtree_query::ast::{Metric, QueryKind};
use drugtree_query::{Dataset, Executor, Optimizer, OptimizerConfig, Query, Scope};
use drugtree_sources::assay_db::assay_source;
use drugtree_sources::clock::VirtualClock;
use drugtree_sources::federation::SourceRegistry;
use drugtree_sources::latency::LatencyModel;
use drugtree_sources::ligand_db::LigandRecord;
use drugtree_sources::protein_db::ProteinRecord;
use drugtree_sources::source::SourceCapabilities;
use drugtree_store::expr::{CompareOp, Predicate};
use drugtree_store::value::Value;
use std::sync::Arc;
use std::time::Duration;

/// Number of generated queries; the acceptance floor is 200.
const QUERIES: usize = 240;

// ---------------------------------------------------------------------
// Deterministic PRNG (xorshift64*): the oracle must replay identically
// offline, so no external randomness.
// ---------------------------------------------------------------------

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> XorShift {
        XorShift(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

// ---------------------------------------------------------------------
// Deterministic dataset: 12 leaves, 6 ligands, ~40 activities with
// globally distinct value_nm (so top-k never ties) and globally unique
// (protein, ligand) pairs (so replica dedup never drops a real row).
// Leaves P4 and P9 carry no activities, giving statistics pruning
// something to prune. Two exact-copy replica sources exercise replica
// selection without changing result sets.
// ---------------------------------------------------------------------

const NEWICK: &str = "((((P0:1,P1:1)c0:1,(P2:1,P3:1)c1:1)c4:1,\
                      ((P4:1,P5:1)c2:1,(P6:1,P7:1)c3:1)c5:1)c6:1,\
                      ((P8:1,P9:1)c7:1,(P10:1,P11:1)c8:1)c9:1)root;";

const LEAVES: usize = 12;
const LEAF_LABELS: [&str; LEAVES] = [
    "P0", "P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10", "P11",
];
const CLADE_LABELS: [&str; 11] = [
    "c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8", "c9", "root",
];
const LIGANDS: [(&str, &str, &str); 6] = [
    ("L0", "aspirin", "CC(=O)Oc1ccccc1C(=O)O"),
    ("L1", "ethanol", "CCO"),
    ("L2", "caffeine", "Cn1cnc2c1c(=O)n(C)c(=O)n2C"),
    ("L3", "benzene", "c1ccccc1"),
    ("L4", "propane", "CCC"),
    ("L5", "ethylamine", "CCN"),
];

fn latency(rtt_ms: u64) -> LatencyModel {
    LatencyModel {
        base_rtt: Duration::from_millis(rtt_ms),
        per_row: Duration::from_millis(1),
        per_row_scanned: Duration::ZERO,
        jitter: 0.0,
        seed: 0,
    }
}

fn build_dataset() -> Dataset {
    let tree = parse_newick(NEWICK).expect("valid newick");
    let index = TreeIndex::build(&tree);

    let proteins: Vec<ProteinRecord> = LEAF_LABELS
        .iter()
        .map(|acc| ProteinRecord {
            accession: (*acc).into(),
            name: format!("protein {acc}"),
            organism: "synthetic".into(),
            sequence: "MKVLAT".into(),
            gene: None,
        })
        .collect();
    let ligands: Vec<LigandRecord> = LIGANDS
        .iter()
        .map(|(id, name, smiles)| LigandRecord::from_smiles(*id, *name, *smiles).expect("valid"))
        .collect();

    let mut acts = Vec::new();
    let mut counter = 0u32;
    for (rank, acc) in LEAF_LABELS.iter().enumerate() {
        if rank == 4 || rank == 9 {
            continue; // statistics pruning fodder
        }
        for (l, (ligand, _, _)) in LIGANDS.iter().enumerate() {
            if (rank * 7 + l * 13) % 10 >= 6 {
                continue;
            }
            // Exponent spread over [0, 5): value_nm in [1 nM, 100 uM),
            // pActivity in (4, 9]; every value distinct.
            let exp = f64::from(counter) * 0.1;
            acts.push(ActivityRecord {
                protein_accession: (*acc).into(),
                ligand_id: (*ligand).into(),
                activity_type: ActivityType::ALL[(rank + l) % ActivityType::ALL.len()],
                value_nm: 10f64.powf(exp),
                source: if counter.is_multiple_of(2) {
                    "chembl-sim".into()
                } else {
                    "bindingdb-sim".into()
                },
                year: 2004 + ((rank * 3 + l * 5) % 12) as u16,
            });
            counter += 1;
        }
    }
    assert!(acts.len() >= 35, "dataset holds {} activities", acts.len());

    let overlay = OverlayBuilder::new(&tree, &index)
        .build(&proteins, &ligands, &[])
        .expect("overlay builds");

    // max_batch 5 forces multi-chunk batched fetches over 10 keys.
    let caps = SourceCapabilities {
        eq_pushdown: true,
        range_pushdown: true,
        max_batch: 5,
    };
    let mut registry = SourceRegistry::new();
    registry
        .register(Arc::new(
            assay_source("assay-a", &acts, caps, latency(10)).expect("source"),
        ))
        .expect("register");
    registry
        .register(Arc::new(
            assay_source("assay-b", &acts, caps, latency(25)).expect("source"),
        ))
        .expect("register");
    registry
        .declare_replicas(vec!["assay-a".into(), "assay-b".into()])
        .expect("replica group");

    Dataset::new(tree, index, overlay, registry, VirtualClock::new()).expect("dataset")
}

// ---------------------------------------------------------------------
// Query generation.
// ---------------------------------------------------------------------

fn gen_scope(rng: &mut XorShift) -> Scope {
    match rng.below(10) {
        0..=2 => Scope::Tree,
        3..=5 => {
            let all: Vec<&str> = CLADE_LABELS
                .iter()
                .chain(LEAF_LABELS.iter())
                .copied()
                .collect();
            Scope::Subtree(all[rng.below(all.len() as u64) as usize].into())
        }
        6 | 7 => {
            let lo = rng.below(LEAVES as u64 + 1) as u32;
            let hi = lo + rng.below(LEAVES as u64 + 1 - u64::from(lo)) as u32;
            Scope::Interval(LeafInterval { lo, hi })
        }
        _ => {
            let n = 1 + rng.below(3) as usize;
            Scope::Leaves(
                (0..n)
                    .map(|_| LEAF_LABELS[rng.below(LEAVES as u64) as usize].into())
                    .collect(),
            )
        }
    }
}

fn gen_conjunct(rng: &mut XorShift) -> Predicate {
    match rng.below(8) {
        0 => Predicate::cmp("p_activity", CompareOp::Ge, rng.f64_in(4.0, 9.0)),
        1 => {
            let lo = rng.f64_in(4.0, 7.5);
            Predicate::between("p_activity", lo, lo + 1.5)
        }
        2 => Predicate::cmp("year", CompareOp::Ge, 2004 + rng.below(12) as i64),
        3 => {
            let t = ActivityType::ALL[rng.below(4) as usize];
            Predicate::eq("activity_type", t.label())
        }
        4 => Predicate::cmp("mw", CompareOp::Lt, rng.f64_in(40.0, 400.0)),
        5 => Predicate::cmp("value_nm", CompareOp::Le, 10f64.powf(rng.f64_in(0.0, 5.0))),
        6 => Predicate::eq(
            "source",
            if rng.chance(50) {
                "chembl-sim"
            } else {
                "bindingdb-sim"
            },
        ),
        _ => Predicate::eq("ligand_id", LIGANDS[rng.below(6) as usize].0),
    }
}

fn gen_query(rng: &mut XorShift) -> Query {
    let mut q = Query::activities(gen_scope(rng));
    for _ in 0..rng.below(3) {
        q = q.filter(gen_conjunct(rng));
    }
    match rng.below(8) {
        0..=2 => {}
        3 | 4 => {
            // Distinct-valued columns only, so the selected set is
            // unique and set comparison is exact.
            let by = if rng.chance(50) {
                "p_activity"
            } else {
                "value_nm"
            };
            q = q.top_k(by, 1 + rng.below(10) as usize, rng.chance(50));
        }
        5 | 6 => {
            let metric = [
                Metric::Count,
                Metric::DistinctLigands,
                Metric::MaxPActivity,
                Metric::MeanPActivity,
            ][rng.below(4) as usize];
            q = q.aggregate(metric);
        }
        _ => q.kind = QueryKind::CountPerLeaf,
    }
    if rng.chance(12) {
        let reference = if rng.chance(60) {
            LIGANDS[rng.below(6) as usize].0.to_string()
        } else {
            "CCO".to_string()
        };
        q = q.similar_to(reference, rng.f64_in(0.1, 0.9));
    }
    if rng.chance(12) {
        let pattern = ["CCO", "c1ccccc1", "CC", "L2"][rng.below(4) as usize];
        q = q.containing(pattern);
    }
    q
}

/// The oracle's query stream: fixed seed, so every differential test
/// (single-threaded rule sweep, concurrent serving) replays the exact
/// same `QUERIES` queries.
fn generated_queries() -> Vec<Query> {
    let mut rng = XorShift::new(0x5EED_D1FF);
    (0..QUERIES).map(|_| gen_query(&mut rng)).collect()
}

// ---------------------------------------------------------------------
// Normalization: row order is not part of query semantics (the finish
// operators define sets / multisets), and MeanPActivity sums floats in
// fetch order, so float cells are rounded to 9 decimal places before
// comparison to absorb summation-order jitter.
// ---------------------------------------------------------------------

fn normalize(rows: &[Vec<Value>]) -> Vec<Vec<Value>> {
    let mut out: Vec<Vec<Value>> = rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|v| match v {
                    Value::Float(f) => Value::Float((f * 1e9).round() / 1e9),
                    other => other.clone(),
                })
                .collect()
        })
        .collect();
    out.sort();
    out
}

fn single_rule_configs() -> Vec<(String, OptimizerConfig)> {
    drugtree_query::phases::ablatable_rules()
        .map(|rule| {
            let mut c = OptimizerConfig::naive();
            let toggle = rule.toggle.expect("ablatable rules carry a toggle");
            toggle(&mut c, true);
            (format!("only-{}", rule.name), c)
        })
        .collect()
}

#[test]
fn optimizer_rules_preserve_query_semantics() {
    let dataset = build_dataset();

    // Persistent executor per config: the semantic cache accumulates
    // across the stream, so cache *reuse* (not just first-miss inserts)
    // is under differential test.
    let mut baseline_cfg = OptimizerConfig::naive();
    baseline_cfg.validate = true;
    let mut baseline = Executor::new(Optimizer::new(baseline_cfg));
    baseline.collect_stats(&dataset).expect("stats");

    let mut candidates: Vec<(String, Executor)> = Vec::new();
    let mut configs = single_rule_configs();
    configs.push(("full".into(), OptimizerConfig::full()));
    // The cost-based planner must be result-equivalent to the rule
    // pipeline on every generated query: plan choice may only move
    // latency, never rows. Executing the whole workload also calibrates
    // the cost model mid-run, so later queries exercise plans priced
    // with fitted (not prior) parameters.
    configs.push(("cost-based".into(), OptimizerConfig::cost_based()));
    for (name, mut config) in configs {
        config.validate = true;
        let mut exec = Executor::new(Optimizer::new(config));
        exec.collect_stats(&dataset).expect("stats");
        exec.build_matview(&dataset).expect("matview");
        exec.build_columnar(&dataset).expect("columnar");
        candidates.push((name, exec));
    }

    let mut by_kind = [0usize; 4];
    let mut divergences = Vec::new();
    for (i, query) in generated_queries().iter().enumerate() {
        by_kind[match query.kind {
            QueryKind::Activities => 0,
            QueryKind::TopK { .. } => 1,
            QueryKind::AggregateChildren { .. } => 2,
            QueryKind::CountPerLeaf => 3,
        }] += 1;

        let expected = baseline
            .execute(&dataset, query)
            .unwrap_or_else(|e| panic!("query #{i} `{query}` failed under naive: {e}"));
        let expected_rows = normalize(&expected.rows);

        for (name, exec) in &candidates {
            let got = exec
                .execute(&dataset, query)
                .unwrap_or_else(|e| panic!("query #{i} `{query}` failed under {name}: {e}"));
            let got_rows = normalize(&got.rows);
            if got_rows != expected_rows {
                let naive_explain = baseline
                    .explain(&dataset, query)
                    .unwrap_or_else(|e| e.to_string());
                let cand_explain = exec
                    .explain(&dataset, query)
                    .unwrap_or_else(|e| e.to_string());
                divergences.push(format!(
                    "query #{i} `{query}` diverges under {name}:\n\
                     naive rows:     {expected_rows:?}\n\
                     {name} rows: {got_rows:?}\n\
                     --- naive EXPLAIN ---\n{naive_explain}\
                     --- {name} EXPLAIN ---\n{cand_explain}"
                ));
            }
        }
    }

    assert!(
        divergences.is_empty(),
        "{} divergence(s):\n\n{}",
        divergences.len(),
        divergences.join("\n\n")
    );
    const { assert!(QUERIES >= 200, "acceptance floor") };
    assert!(
        by_kind.iter().all(|&n| n > 0),
        "generator covered all query classes: {by_kind:?}"
    );
}

/// The concurrent path is under the same oracle: the full query stream
/// split round-robin across 4 OS threads sharing one serving-enabled
/// `Arc<Executor>` (sharded cache + single-flight + coalescing) must
/// return exactly what the single-threaded naive baseline returns for
/// every query. This is the end-to-end guarantee that concurrency
/// machinery only changes *how many round-trips* are paid, never the
/// rows.
#[test]
fn concurrent_shared_executor_matches_naive_baseline() {
    const THREADS: usize = 4;
    let dataset = build_dataset();

    let mut baseline_cfg = OptimizerConfig::naive();
    baseline_cfg.validate = true;
    let mut baseline = Executor::new(Optimizer::new(baseline_cfg));
    baseline.collect_stats(&dataset).expect("stats");

    let queries = generated_queries();
    let expected: Vec<Vec<Vec<Value>>> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            let r = baseline
                .execute(&dataset, q)
                .unwrap_or_else(|e| panic!("query #{i} `{q}` failed under naive: {e}"));
            normalize(&r.rows)
        })
        .collect();

    let mut config = OptimizerConfig::full();
    config.validate = true;
    let mut exec = Executor::new(Optimizer::new(config));
    exec.collect_stats(&dataset).expect("stats");
    exec.build_matview(&dataset).expect("matview");
    // No columnar mirror here on purpose: a fresh mirror answers every
    // interval scope locally, and this test's subject is the shared
    // *fetch* path (coalescing, single-flight, sharded cache) under
    // concurrency — the columnar path is differentially tested above.
    exec.enable_serving(drugtree_query::ServeConfig::default());
    let exec = Arc::new(exec);

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let exec = Arc::clone(&exec);
                let dataset = &dataset;
                let queries = &queries;
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    for (i, q) in queries.iter().enumerate().skip(t).step_by(THREADS) {
                        let r = exec.execute(dataset, q).unwrap_or_else(|e| {
                            panic!("query #{i} `{q}` failed under concurrent serving: {e}")
                        });
                        mine.push((i, normalize(&r.rows)));
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            for (i, rows) in h.join().expect("no thread panic") {
                assert_eq!(
                    rows, expected[i],
                    "query #{i} `{}` diverges under concurrent shared serving",
                    queries[i]
                );
            }
        }
    });

    // Concurrency must not corrupt the lock-free accounting either.
    let stats = exec.cache_stats();
    assert_eq!(stats.hits + stats.misses, stats.probes);
    let serve = exec.serve_stats().expect("serving enabled");
    assert!(
        serve.requests_issued > 0,
        "the concurrent stream reached the sources"
    );
}
