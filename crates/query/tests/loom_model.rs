//! Loom model check for the sharded semantic cache: invalidation
//! racing concurrent probes.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the shard mutexes,
//! taken via `drugtree_sources::sync`, swap for loom's instrumented
//! types, and every schedule perturbation lands directly on the
//! probe/invalidate interleaving). Run with:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p drugtree-query --test loom_model --release
//! ```

#![cfg(loom)]
// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree_phylo::index::LeafInterval;
use drugtree_query::cache::CacheConfig;
use drugtree_query::serve::ShardedSemanticCache;
use drugtree_store::value::Value;
use std::sync::Arc;

fn iv(lo: u32, hi: u32) -> LeafInterval {
    LeafInterval { lo, hi }
}

fn row(rank: i64) -> Vec<Value> {
    vec![Value::Int(rank), Value::from("x")]
}

/// An invalidation sweeping the shards races a prober hammering the
/// same interval. Under every schedule: a hit returns the full,
/// untorn row set (never a partially-invalidated entry), hits are
/// monotone (once the prober observes the invalidation, the entry
/// never resurrects), the atomic counters account for every probe,
/// and the cache ends empty.
#[test]
fn invalidation_racing_probes_never_tears_results() {
    loom::model(|| {
        let cache = Arc::new(ShardedSemanticCache::new(CacheConfig {
            max_entries: 16,
            max_rows: 1600,
            shards: 4,
        }));
        let rows = vec![row(1), row(2), row(3)];
        cache.insert(iv(0, 8), None, rows.clone());

        let prober = {
            let (c, expect) = (Arc::clone(&cache), rows.clone());
            loom::thread::spawn(move || {
                let mut hits = Vec::new();
                for _ in 0..4 {
                    match c.probe(iv(0, 8), None) {
                        Some(hit) => {
                            assert_eq!(hit.rows, expect, "hit returned a torn row set");
                            hits.push(true);
                        }
                        None => hits.push(false),
                    }
                }
                hits
            })
        };
        let invalidator = {
            let c = Arc::clone(&cache);
            loom::thread::spawn(move || c.invalidate_interval(iv(0, 8)))
        };

        let hits = prober.join().unwrap();
        invalidator.join().unwrap();

        // Monotone: after the first miss there is no later hit —
        // nothing reinserts, so a resurrection would mean a probe saw
        // a half-swept shard state.
        let first_miss = hits.iter().position(|h| !h).unwrap_or(hits.len());
        assert!(
            hits[first_miss..].iter().all(|h| !h),
            "entry resurrected after invalidation: {hits:?}"
        );

        let stats = cache.stats();
        assert_eq!(stats.probes, stats.hits + stats.misses);
        assert_eq!(stats.hits, hits.iter().filter(|h| **h).count() as u64);
        assert!(cache.is_empty(), "invalidation must leave no entries");
    });
}
