//! Property-based tests for the query language and the optimizer's
//! Canonicalize phase: `Display` ∘ `parse` is the identity on
//! expressible queries; canonicalization reaches a fixpoint that every
//! step leaves unchanged and never alters what a predicate matches.

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree_query::ast::{Metric, Query, QueryKind, Scope};
use drugtree_store::expr::{CompareOp, Predicate};
use drugtree_store::value::Value;
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = String> {
    // Labels exercise quoting, spaces, and embedded quotes.
    prop_oneof![
        "[A-Za-z][A-Za-z0-9_]{0,8}",
        Just("clade A".to_string()),
        Just("it's".to_string()),
    ]
}

fn arb_scope() -> impl Strategy<Value = Scope> {
    prop_oneof![
        Just(Scope::Tree),
        arb_label().prop_map(Scope::Subtree),
        proptest::collection::vec(arb_label(), 1..4).prop_map(Scope::Leaves),
    ]
}

fn arb_atom() -> impl Strategy<Value = Predicate> {
    let column = prop_oneof![
        Just("p_activity".to_string()),
        Just("mw".to_string()),
        Just("year".to_string()),
        Just("ligand_id".to_string()),
    ];
    let op = prop_oneof![
        Just(CompareOp::Eq),
        Just(CompareOp::Ne),
        Just(CompareOp::Lt),
        Just(CompareOp::Le),
        Just(CompareOp::Gt),
        Just(CompareOp::Ge),
    ];
    let literal = prop_oneof![
        (-100i64..100).prop_map(Value::Int),
        (0.25f64..100.0).prop_map(Value::Float),
        "[a-z]{1,6}".prop_map(Value::Text),
    ];
    prop_oneof![
        (column.clone(), op, literal.clone()).prop_map(|(column, op, value)| Predicate::Compare {
            column,
            op,
            value
        }),
        (column.clone(), 0i64..50, 1i64..50).prop_map(|(column, lo, span)| {
            Predicate::Between {
                column,
                lo: Value::Int(lo),
                hi: Value::Int(lo + span),
            }
        }),
        (column.clone(), proptest::collection::vec(literal, 1..4))
            .prop_map(|(column, values)| Predicate::InSet { column, values }),
        column.prop_map(|column| Predicate::IsNull { column }),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    let leaf = prop_oneof![Just(Predicate::True), arb_atom()];
    leaf.prop_recursive(2, 8, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Predicate::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Predicate::Or),
            inner.prop_map(|p| Predicate::Not(Box::new(p))),
        ]
    })
}

fn arb_kind() -> impl Strategy<Value = QueryKind> {
    prop_oneof![
        Just(QueryKind::Activities),
        ("[a-z_]{2,10}", 1usize..50, any::<bool>()).prop_map(|(_, k, descending)| {
            QueryKind::TopK {
                by: "p_activity".into(),
                k,
                descending,
            }
        }),
        prop_oneof![
            Just(Metric::Count),
            Just(Metric::DistinctLigands),
            Just(Metric::MaxPActivity),
            Just(Metric::MeanPActivity),
        ]
        .prop_map(|metric| QueryKind::AggregateChildren { metric }),
        Just(QueryKind::CountPerLeaf),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        arb_scope(),
        arb_predicate(),
        proptest::option::of(("[A-Za-z0-9]{1,8}", 0.0f64..1.0)),
        proptest::option::of("[A-Za-z0-9=#]{1,8}"),
        arb_kind(),
    )
        .prop_map(|(scope, predicate, similarity, substructure, kind)| {
            let mut q = Query::activities(scope).filter(predicate);
            if let Some((reference, min)) = similarity {
                q = q.similar_to(reference, min);
            }
            if let Some(pattern) = substructure {
                q = q.containing(pattern);
            }
            q.kind = kind;
            q
        })
}

/// The five canonicalization steps in registry order.
const CANON_STEPS: [fn(Predicate) -> (Predicate, bool); 5] = [
    drugtree_query::ast::canon::nnf,
    drugtree_query::ast::canon::flatten,
    drugtree_query::ast::canon::fold,
    drugtree_query::ast::canon::between_merge,
    drugtree_query::ast::canon::dedup,
];

/// Run the canonicalization pipeline to its fixpoint, the same way the
/// optimizer's Canonicalize phase does.
fn normalize(mut p: Predicate) -> Predicate {
    for _ in 0..32 {
        let mut changed = false;
        for step in CANON_STEPS {
            let (next, c) = step(p);
            p = next;
            changed |= c;
        }
        if !changed {
            return p;
        }
    }
    panic!("canonicalization did not converge: {p:?}");
}

/// A row over the unified schema; choice 0 is NULL (the case negation
/// rewrites must not get wrong), others a type-correct value.
fn row_from_seed(seed: &[(u8, i64, f64)]) -> Vec<Value> {
    use drugtree_query::dataset::unified_schema;
    use drugtree_store::value::ValueType;
    unified_schema()
        .columns()
        .iter()
        .zip(seed.iter().cycle())
        .map(|(c, (choice, i, f))| {
            if *choice == 0 {
                return Value::Null;
            }
            match c.ty {
                ValueType::Int => Value::Int(*i),
                ValueType::Float => Value::Float(*f),
                ValueType::Text => Value::Text(format!("t{}", i.rem_euclid(5))),
                _ => Value::Null,
            }
        })
        .collect()
}

proptest! {
    #[test]
    fn display_parse_roundtrip(q in arb_query()) {
        let text = q.to_string();
        let parsed = Query::parse(&text);
        let parsed = parsed.unwrap_or_else(|e| panic!("{text:?}: {e}"));
        // Float literals may lose nothing (Display uses full precision),
        // so exact equality is expected.
        prop_assert_eq!(parsed, q, "{}", text);
    }

    #[test]
    fn parse_never_panics(text in "\\PC{0,60}") {
        let _ = Query::parse(&text);
    }

    #[test]
    fn predicate_and_flattening_preserves_semantics(
        preds in proptest::collection::vec(arb_atom(), 1..5)
    ) {
        // Folding with `and` then evaluating equals evaluating each
        // conjunct — over a row universe built from the unified schema.
        use drugtree_query::dataset::unified_schema;
        let schema = unified_schema();
        let row: Vec<Value> = schema
            .columns()
            .iter()
            .map(|c| match c.ty {
                drugtree_store::value::ValueType::Int => Value::Int(7),
                drugtree_store::value::ValueType::Float => Value::Float(6.5),
                drugtree_store::value::ValueType::Text => Value::from("abc"),
                _ => Value::Null,
            })
            .collect();
        let folded = preds
            .iter()
            .cloned()
            .fold(Predicate::True, Predicate::and);
        let each: bool = preds
            .iter()
            .all(|p| p.bind(&schema).unwrap().matches(&row));
        prop_assert_eq!(folded.bind(&schema).unwrap().matches(&row), each);
    }

    /// The Canonicalize phase's fixpoint contract (enforced at the
    /// phase boundary by the plan validator): once the pipeline
    /// converges, every individual step reports no change.
    #[test]
    fn canonicalization_is_idempotent(p in arb_predicate()) {
        let n = normalize(p);
        for step in CANON_STEPS {
            let (next, changed) = step(n.clone());
            prop_assert!(!changed, "step changed a normalized predicate: {n:?} -> {next:?}");
            prop_assert_eq!(&next, &n);
        }
    }

    /// Canonicalization is exact under the evaluator's two-valued
    /// `matches` semantics: the normalized predicate accepts exactly
    /// the rows the original accepts — including rows with NULL cells,
    /// where a careless `not (c = v)` → `c != v` rewrite would differ.
    #[test]
    fn canonicalization_preserves_semantics(
        p in arb_predicate(),
        seed in proptest::collection::vec((0u8..4, -50i64..50, 0.0f64..10.0), 40),
    ) {
        use drugtree_query::dataset::unified_schema;
        let schema = unified_schema();
        let row = row_from_seed(&seed);
        let n = normalize(p.clone());
        let original = p.bind(&schema).unwrap().matches(&row);
        let canonical = n.bind(&schema).unwrap().matches(&row);
        prop_assert_eq!(original, canonical, "original {:?} vs canonical {:?}", p, n);
    }
}
