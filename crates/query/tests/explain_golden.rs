//! Golden EXPLAIN tests: the rendered plan text is the contract
//! between `OptimizerConfig` and the rest of the system (experiment
//! logs, the differential oracle's divergence reports, DESIGN.md
//! walkthroughs all quote it). Two exact-text goldens pin the full and
//! naive renderings, and one test per optimizer rule asserts that
//! toggling exactly that rule changes exactly the plan text it owns.

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree_chem::affinity::ActivityType;
use drugtree_query::ast::Metric;
use drugtree_query::dataset::test_fixtures::{small_dataset, test_latency};
use drugtree_query::matview::MaterializedAggregates;
use drugtree_query::plan::PhysicalPlan;
use drugtree_query::stats::OverlayStats;
use drugtree_query::{Dataset, Optimizer, OptimizerConfig, Query, Scope};
use drugtree_store::expr::{CompareOp, Predicate};
use std::time::Duration;

fn planned(d: &Dataset, config: OptimizerConfig, q: &Query) -> PhysicalPlan {
    let stats = OverlayStats::collect(d).expect("stats");
    let view = MaterializedAggregates::build(d).expect("view");
    Optimizer::new(config)
        .plan(d, Some(&stats), Some(&view), q)
        .expect("plans")
}

fn full_caps() -> drugtree_sources::source::SourceCapabilities {
    drugtree_sources::source::SourceCapabilities::full()
}

/// The reference query for fetch-path goldens: a subtree scope with a
/// pushable integer conjunct (kept integer so the rendered predicate
/// text has no float noise).
fn year_query() -> Query {
    Query::activities(Scope::Subtree("cladeA".into())).filter(Predicate::cmp(
        "year",
        CompareOp::Ge,
        2012i64,
    ))
}

#[test]
fn golden_full_explain() {
    let d = small_dataset(full_caps());
    let plan = planned(&d, OptimizerConfig::full(), &year_query());
    assert_eq!(
        plan.explain(),
        "\
Plan: scope=n1 interval=[0, 2) pruned_leaves=0 est_cost=12ms est_rows=2
  CacheProbe pushdown=year >= 2012 insert_on_miss=true
    miss-> SourceFetch source=assay-sim keys=2 pushdown=year >= 2012 batched=true max_batch=100 concurrent=true est_cost=12ms est_rows=2
  Residual: year >= 2012
  LigandJoin
  Collect
  # interval-rewrite: scope -> [0, 2)
  # selectivity-ordering: residual conjuncts reordered
  # pushdown: year >= 2012
  # batching: keyed lookups coalesced
  RuleTrace analyze/1: interval_rewrite=changed similarity_resolve=n/a substructure_resolve=n/a column_discovery=changed
  RuleTrace analyze/2: interval_rewrite=no-change similarity_resolve=n/a substructure_resolve=n/a column_discovery=no-change
  RuleTrace canonicalize/1: canon_nnf=no-change canon_flatten=no-change canon_fold=no-change canon_between=no-change canon_dedup=no-change
  RuleTrace optimize/1: selectivity_ordering=changed stats_pruning=no-change pushdown=changed cardinality_estimate=changed replica_selection=n/a use_matview=n/a columnar_scan=n/a semantic_cache=changed
  RuleTrace optimize/2: selectivity_ordering=no-change stats_pruning=no-change pushdown=no-change cardinality_estimate=no-change replica_selection=n/a use_matview=n/a columnar_scan=n/a semantic_cache=no-change
  RuleTrace lower/1: batching=changed concurrent_dispatch=changed lower_fetches=changed access_select=changed finish_build=changed
  RuleTrace lower/2: batching=no-change concurrent_dispatch=no-change lower_fetches=no-change access_select=no-change finish_build=no-change
"
    );
}

#[test]
fn golden_naive_explain() {
    let d = small_dataset(full_caps());
    let plan = planned(&d, OptimizerConfig::naive(), &year_query());
    assert_eq!(
        plan.explain(),
        "\
Plan: scope=n1 interval=[0, 2) pruned_leaves=0 est_cost=23ms est_rows=3
  Fetch concurrent_sources=false
    SourceFetch source=assay-sim keys=2 pushdown=- batched=false max_batch=1 concurrent=false est_cost=23ms est_rows=3
  Residual: year >= 2012
  LigandJoin
  Collect
  # interval-rewrite: scope -> [0, 2)
  RuleTrace analyze/1: interval_rewrite=changed similarity_resolve=n/a substructure_resolve=n/a column_discovery=changed
  RuleTrace analyze/2: interval_rewrite=no-change similarity_resolve=n/a substructure_resolve=n/a column_discovery=no-change
  RuleTrace canonicalize/1: canon_nnf=off canon_flatten=off canon_fold=off canon_between=off canon_dedup=off
  RuleTrace optimize/1: selectivity_ordering=off stats_pruning=off pushdown=off cardinality_estimate=changed replica_selection=off use_matview=off columnar_scan=off semantic_cache=off
  RuleTrace optimize/2: selectivity_ordering=off stats_pruning=off pushdown=off cardinality_estimate=no-change replica_selection=off use_matview=off columnar_scan=off semantic_cache=off
  RuleTrace lower/1: batching=off concurrent_dispatch=off lower_fetches=changed access_select=changed finish_build=changed
  RuleTrace lower/2: batching=off concurrent_dispatch=off lower_fetches=no-change access_select=no-change finish_build=no-change
"
    );
}

/// EXPLAIN under `full()` and under `ablate(rule)` for a query.
fn toggled(d: &Dataset, rule: &str, q: &Query) -> (String, String) {
    let on = planned(d, OptimizerConfig::full(), q).explain();
    let off = planned(d, OptimizerConfig::ablate(rule).expect("known rule"), q).explain();
    (on, off)
}

#[test]
fn toggle_pushdown() {
    let d = small_dataset(full_caps());
    let (on, off) = toggled(&d, "pushdown", &year_query());
    assert!(on.contains("pushdown=year >= 2012"), "{on}");
    assert!(on.contains("# pushdown: year >= 2012"), "{on}");
    assert!(off.contains("pushdown=-"), "{off}");
    assert!(!off.contains("# pushdown"), "{off}");
}

#[test]
fn toggle_batching() {
    let d = small_dataset(full_caps());
    let (on, off) = toggled(&d, "batching", &year_query());
    assert!(on.contains("batched=true max_batch=100"), "{on}");
    assert!(on.contains("# batching: keyed lookups coalesced"), "{on}");
    assert!(off.contains("batched=false max_batch=1"), "{off}");
    assert!(!off.contains("# batching"), "{off}");
}

#[test]
fn toggle_concurrent_dispatch() {
    let d = small_dataset(full_caps());
    let (on, off) = toggled(&d, "concurrent_dispatch", &year_query());
    assert!(on.contains("concurrent=true"), "{on}");
    assert!(off.contains("concurrent=false"), "{off}");
    assert!(!off.contains("concurrent=true"), "{off}");
}

#[test]
fn toggle_stats_pruning() {
    let d = small_dataset(full_caps());
    // Only P3 (1 nM -> p = 9) clears the bound; the other three leaves
    // are pruned by per-leaf count/max statistics.
    let q = Query::activities(Scope::Tree).filter(Predicate::cmp("p_activity", CompareOp::Ge, 8.5));
    let (on, off) = toggled(&d, "stats_pruning", &q);
    assert!(on.contains("pruned_leaves=3"), "{on}");
    assert!(on.contains("# stats-pruning: 3 leaves dropped"), "{on}");
    assert!(on.contains("keys=1"), "{on}");
    assert!(off.contains("pruned_leaves=0"), "{off}");
    assert!(off.contains("keys=4"), "{off}");
    assert!(!off.contains("# stats-pruning"), "{off}");
}

#[test]
fn toggle_semantic_cache() {
    let d = small_dataset(full_caps());
    let (on, off) = toggled(&d, "semantic_cache", &year_query());
    assert!(on.contains("CacheProbe"), "{on}");
    assert!(on.contains("insert_on_miss=true"), "{on}");
    assert!(off.contains("Fetch concurrent_sources=true"), "{off}");
    assert!(!off.contains("CacheProbe"), "{off}");
}

#[test]
fn toggle_selectivity_ordering() {
    let d = small_dataset(full_caps());
    let q = Query::activities(Scope::Tree)
        .filter(Predicate::cmp("p_activity", CompareOp::Ge, 5.0))
        .filter(Predicate::cmp("p_activity", CompareOp::Ge, 8.9));
    let (on, off) = toggled(&d, "selectivity_ordering", &q);
    assert!(
        on.contains("# selectivity-ordering: residual conjuncts reordered"),
        "{on}"
    );
    assert!(!off.contains("# selectivity-ordering"), "{off}");
}

#[test]
fn toggle_use_matview() {
    let d = small_dataset(full_caps());
    let q = Query::activities(Scope::Tree).aggregate(Metric::Count);
    let (on, off) = toggled(&d, "use_matview", &q);
    assert!(on.contains("MaterializedView"), "{on}");
    assert!(
        on.contains("# matview: aggregate served from materialized view"),
        "{on}"
    );
    assert!(!off.contains("MaterializedView"), "{off}");
    assert!(off.contains("AggregateChildren metric=count"), "{off}");
}

/// A two-leaf dataset with a declared replica pair: `assay-near`
/// (10 ms RTT) and `assay-far` (80 ms RTT) carrying identical records.
/// The shared fixture has a single source; replica selection needs a
/// declared group, with one member measurably slower.
fn replica_dataset() -> Dataset {
    use drugtree_chem::affinity::ActivityRecord;
    use drugtree_integrate::overlay::OverlayBuilder;
    use drugtree_phylo::index::TreeIndex;
    use drugtree_phylo::newick::parse_newick;
    use drugtree_sources::assay_db::assay_source;
    use drugtree_sources::clock::VirtualClock;
    use drugtree_sources::federation::SourceRegistry;
    use drugtree_sources::ligand_db::LigandRecord;
    use drugtree_sources::protein_db::ProteinRecord;
    use std::sync::Arc;

    let tree = parse_newick("(P1:1,P2:1)root;").expect("newick");
    let index = TreeIndex::build(&tree);
    let proteins: Vec<ProteinRecord> = ["P1", "P2"]
        .iter()
        .map(|acc| ProteinRecord {
            accession: (*acc).into(),
            name: format!("protein {acc}"),
            organism: "synthetic".into(),
            sequence: "MKVLAT".into(),
            gene: None,
        })
        .collect();
    let ligands = vec![LigandRecord::from_smiles("L1", "ethanol", "CCO").expect("smiles")];
    let acts = vec![ActivityRecord {
        protein_accession: "P1".into(),
        ligand_id: "L1".into(),
        activity_type: ActivityType::Ki,
        value_nm: 10.0,
        source: "sim".into(),
        year: 2012,
    }];
    let overlay = OverlayBuilder::new(&tree, &index)
        .build(&proteins, &ligands, &[])
        .expect("overlay");
    let mut registry = SourceRegistry::new();
    let mut slow = test_latency();
    slow.base_rtt = Duration::from_millis(80);
    registry
        .register(Arc::new(
            assay_source("assay-near", &acts, full_caps(), test_latency()).expect("source"),
        ))
        .expect("register");
    registry
        .register(Arc::new(
            assay_source("assay-far", &acts, full_caps(), slow).expect("source"),
        ))
        .expect("register");
    registry
        .declare_replicas(vec!["assay-near".into(), "assay-far".into()])
        .expect("group");
    Dataset::new(tree, index, overlay, registry, VirtualClock::new()).expect("dataset")
}

#[test]
fn toggle_replica_selection() {
    let d = replica_dataset();
    let q = Query::activities(Scope::Tree);
    let (on, off) = toggled(&d, "replica_selection", &q);
    assert!(
        on.contains("# replica-selection: assay-near chosen from"),
        "{on}"
    );
    assert!(on.contains("source=assay-near"), "{on}");
    assert!(!on.contains("source=assay-far"), "{on}");
    assert!(off.contains("source=assay-near"), "{off}");
    assert!(off.contains("source=assay-far"), "{off}");
    assert!(!off.contains("# replica-selection"), "{off}");
}

/// The cost-based plan-choice golden: after calibration reveals that
/// `assay-near` (the fixed heuristic's pick — 10 ms declared RTT vs
/// 80 ms) actually costs 200 ms per round trip plus 1 ms per row, the
/// planner routes the fetch to `assay-far`, still priced at the prior.
/// Every enumerated candidate appears in the rendering with its
/// estimate.
#[test]
fn golden_cost_based_explain() {
    use drugtree_query::cost::CostModel;
    use drugtree_query::stats::OverlayStats;

    let d = replica_dataset();
    let model = CostModel::new();
    // Four observations whose exact least-squares fit is 200 ms RTT +
    // 1 ms/row for assay-near (estimates passed here only feed the
    // error tracker, which this golden does not render).
    for (reqs, rows, obs_ms) in [
        (1u64, 10u64, 210u64),
        (2, 50, 450),
        (1, 200, 400),
        (3, 30, 630),
    ] {
        model.observe(
            "assay-near",
            reqs,
            rows,
            Duration::from_millis(obs_ms),
            Duration::ZERO,
        );
    }

    let stats = OverlayStats::collect(&d).expect("stats");
    let plan = Optimizer::new(OptimizerConfig::cost_based())
        .plan_with(
            &d,
            Some(&stats),
            None,
            Some(&model),
            &Query::activities(Scope::Tree),
        )
        .expect("plans");
    assert_eq!(
        plan.explain(),
        "\
Plan: scope=n0 interval=[0, 2) pruned_leaves=1 est_cost=50.02ms est_rows=1
  CacheProbe pushdown=- insert_on_miss=true
    miss-> SourceFetch source=assay-far keys=1 pushdown=- batched=true max_batch=100 concurrent=true est_cost=50.02ms est_rows=1
  Candidate [replica:assay-near] assay-near: est_cost=201ms est_rows=1
  Candidate [replica:assay-near] assay-far: est_cost=50.02ms est_rows=1 (chosen)
  Candidate [access] batched-fetch: est_cost=50.02ms est_rows=1 (chosen)
  Candidate [access] per-key-fetch: est_cost=50.02ms est_rows=1
  Candidate [cache] cache-probe: est_cost=50.02ms est_rows=1 (chosen)
  Candidate [cache] direct: est_cost=50.02ms est_rows=1
  Residual: true
  LigandJoin
  Collect
  # interval-rewrite: scope -> [0, 2)
  # selectivity-ordering: residual conjuncts reordered
  # stats-pruning: 1 leaves dropped
  # replica-selection: assay-far chosen from [\"assay-near\", \"assay-far\"]
  # cost-based: access=batched-fetch est=50.02ms est_rows=1
  RuleTrace analyze/1: interval_rewrite=changed similarity_resolve=n/a substructure_resolve=n/a column_discovery=changed
  RuleTrace analyze/2: interval_rewrite=no-change similarity_resolve=n/a substructure_resolve=n/a column_discovery=no-change
  RuleTrace canonicalize/1: canon_nnf=no-change canon_flatten=no-change canon_fold=no-change canon_between=no-change canon_dedup=no-change
  RuleTrace optimize/1: selectivity_ordering=changed stats_pruning=changed pushdown=n/a cardinality_estimate=changed replica_selection=changed use_matview=n/a columnar_scan=n/a semantic_cache=changed
  RuleTrace optimize/2: selectivity_ordering=no-change stats_pruning=no-change pushdown=n/a cardinality_estimate=no-change replica_selection=no-change use_matview=n/a columnar_scan=n/a semantic_cache=no-change
  RuleTrace lower/1: batching=n/a concurrent_dispatch=changed lower_fetches=n/a access_select=changed finish_build=changed
  RuleTrace lower/2: batching=n/a concurrent_dispatch=no-change lower_fetches=n/a access_select=no-change finish_build=no-change
"
    );
}
