//! Predicate expressions over rows.
//!
//! Predicates reference columns by name, are compiled ("bound") to
//! column indexes against a schema once, and then evaluated per row.
//! The query optimizer also inspects predicate structure for pushdown
//! and index-selection decisions, so the AST is deliberately
//! transparent.

use crate::schema::Schema;
use crate::value::Value;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CompareOp {
    /// Evaluate the operator on an ordering result.
    pub fn matches(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CompareOp::Eq => ord == Equal,
            CompareOp::Ne => ord != Equal,
            CompareOp::Lt => ord == Less,
            CompareOp::Le => ord != Greater,
            CompareOp::Gt => ord == Greater,
            CompareOp::Ge => ord != Less,
        }
    }

    /// SQL-ish symbol, for EXPLAIN output.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }
}

/// A predicate over named columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Predicate {
    /// Always true.
    True,
    /// `column <op> literal`. NULL cells never match (SQL semantics).
    Compare {
        /// Column name.
        column: String,
        /// Comparison operator.
        op: CompareOp,
        /// Literal to compare against.
        value: Value,
    },
    /// `column BETWEEN lo AND hi` (inclusive).
    Between {
        /// Column name.
        column: String,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// `column IN (v1, v2, …)`.
    InSet {
        /// Column name.
        column: String,
        /// Accepted values.
        values: Vec<Value>,
    },
    /// `column IS NULL`.
    IsNull {
        /// Column name.
        column: String,
    },
    /// Conjunction.
    And(Vec<Predicate>),
    /// Disjunction.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Shorthand for an equality comparison.
    pub fn eq(column: impl Into<String>, value: impl Into<Value>) -> Predicate {
        Predicate::Compare {
            column: column.into(),
            op: CompareOp::Eq,
            value: value.into(),
        }
    }

    /// Shorthand for a comparison.
    pub fn cmp(column: impl Into<String>, op: CompareOp, value: impl Into<Value>) -> Predicate {
        Predicate::Compare {
            column: column.into(),
            op,
            value: value.into(),
        }
    }

    /// Shorthand for a between-range.
    pub fn between(
        column: impl Into<String>,
        lo: impl Into<Value>,
        hi: impl Into<Value>,
    ) -> Predicate {
        Predicate::Between {
            column: column.into(),
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// Conjunction of two predicates, flattening nested `And`s and
    /// dropping `True`s.
    pub fn and(self, other: Predicate) -> Predicate {
        let mut parts = Vec::new();
        for p in [self, other] {
            match p {
                Predicate::True => {}
                Predicate::And(mut inner) => parts.append(&mut inner),
                p => parts.push(p),
            }
        }
        match (parts.pop(), parts.is_empty()) {
            (None, _) => Predicate::True,
            (Some(only), true) => only,
            (Some(last), false) => {
                parts.push(last);
                Predicate::And(parts)
            }
        }
    }

    /// All column names referenced by the predicate.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Predicate::True => {}
            Predicate::Compare { column, .. }
            | Predicate::Between { column, .. }
            | Predicate::InSet { column, .. }
            | Predicate::IsNull { column } => out.push(column),
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }

    /// Bind column names to indexes against a schema.
    pub fn bind(&self, schema: &Schema) -> Result<BoundPredicate> {
        Ok(match self {
            Predicate::True => BoundPredicate::True,
            Predicate::Compare { column, op, value } => BoundPredicate::Compare {
                column: schema.column_index(column)?,
                op: *op,
                value: value.clone(),
            },
            Predicate::Between { column, lo, hi } => BoundPredicate::Between {
                column: schema.column_index(column)?,
                lo: lo.clone(),
                hi: hi.clone(),
            },
            Predicate::InSet { column, values } => BoundPredicate::InSet {
                column: schema.column_index(column)?,
                values: values.iter().cloned().collect(),
            },
            Predicate::IsNull { column } => BoundPredicate::IsNull {
                column: schema.column_index(column)?,
            },
            Predicate::And(ps) => BoundPredicate::And(
                ps.iter()
                    .map(|p| p.bind(schema))
                    .collect::<Result<Vec<_>>>()?,
            ),
            Predicate::Or(ps) => BoundPredicate::Or(
                ps.iter()
                    .map(|p| p.bind(schema))
                    .collect::<Result<Vec<_>>>()?,
            ),
            Predicate::Not(p) => BoundPredicate::Not(Box::new(p.bind(schema)?)),
        })
    }

    /// Convenience: bind and evaluate against one row.
    pub fn evaluate(&self, schema: &Schema, row: &[Value]) -> Result<bool> {
        Ok(self.bind(schema)?.matches(row))
    }
}

/// A predicate with column references resolved to indexes (the bound
/// mirror of [`Predicate`]; variants correspond one-to-one).
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub enum BoundPredicate {
    True,
    Compare {
        column: usize,
        op: CompareOp,
        value: Value,
    },
    Between {
        column: usize,
        lo: Value,
        hi: Value,
    },
    InSet {
        column: usize,
        values: std::collections::BTreeSet<Value>,
    },
    IsNull {
        column: usize,
    },
    And(Vec<BoundPredicate>),
    Or(Vec<BoundPredicate>),
    Not(Box<BoundPredicate>),
}

impl BoundPredicate {
    /// Evaluate against a row. NULL cells fail every comparison except
    /// `IsNull` (two-valued simplification of SQL's three-valued logic:
    /// unknown collapses to false).
    pub fn matches(&self, row: &[Value]) -> bool {
        match self {
            BoundPredicate::True => true,
            BoundPredicate::Compare { column, op, value } => {
                let cell = &row[*column];
                !cell.is_null() && !value.is_null() && op.matches(cell.cmp(value))
            }
            BoundPredicate::Between { column, lo, hi } => {
                let cell = &row[*column];
                !cell.is_null() && cell >= lo && cell <= hi
            }
            BoundPredicate::InSet { column, values } => {
                let cell = &row[*column];
                !cell.is_null() && values.contains(cell)
            }
            BoundPredicate::IsNull { column } => row[*column].is_null(),
            BoundPredicate::And(ps) => ps.iter().all(|p| p.matches(row)),
            BoundPredicate::Or(ps) => ps.iter().any(|p| p.matches(row)),
            BoundPredicate::Not(p) => !p.matches(row),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::ValueType;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::required("id", ValueType::Int),
            Column::required("name", ValueType::Text),
            Column::nullable("mw", ValueType::Float),
        ])
    }

    fn row(id: i64, name: &str, mw: Option<f64>) -> Vec<Value> {
        vec![
            Value::Int(id),
            Value::from(name),
            mw.map_or(Value::Null, Value::Float),
        ]
    }

    #[test]
    fn comparisons() {
        let s = schema();
        let r = row(5, "abc", Some(150.0));
        assert!(Predicate::eq("id", 5i64).evaluate(&s, &r).unwrap());
        assert!(!Predicate::eq("id", 6i64).evaluate(&s, &r).unwrap());
        assert!(Predicate::cmp("mw", CompareOp::Lt, 200.0)
            .evaluate(&s, &r)
            .unwrap());
        assert!(Predicate::cmp("mw", CompareOp::Ge, 150.0)
            .evaluate(&s, &r)
            .unwrap());
        assert!(Predicate::cmp("name", CompareOp::Gt, "aaa")
            .evaluate(&s, &r)
            .unwrap());
    }

    #[test]
    fn null_semantics() {
        let s = schema();
        let r = row(1, "x", None);
        // NULL fails all comparisons...
        assert!(!Predicate::cmp("mw", CompareOp::Lt, 1e9)
            .evaluate(&s, &r)
            .unwrap());
        assert!(!Predicate::eq("mw", 0.0).evaluate(&s, &r).unwrap());
        assert!(!Predicate::cmp("mw", CompareOp::Ne, 0.0)
            .evaluate(&s, &r)
            .unwrap());
        // ...but IS NULL matches.
        assert!(Predicate::IsNull {
            column: "mw".into()
        }
        .evaluate(&s, &r)
        .unwrap());
        // NOT(compare on NULL) is true under two-valued collapse.
        let p = Predicate::Not(Box::new(Predicate::eq("mw", 0.0)));
        assert!(p.evaluate(&s, &r).unwrap());
    }

    #[test]
    fn between_and_in() {
        let s = schema();
        let r = row(5, "abc", Some(150.0));
        assert!(Predicate::between("mw", 100.0, 200.0)
            .evaluate(&s, &r)
            .unwrap());
        assert!(!Predicate::between("mw", 160.0, 200.0)
            .evaluate(&s, &r)
            .unwrap());
        // Inclusive bounds.
        assert!(Predicate::between("mw", 150.0, 150.0)
            .evaluate(&s, &r)
            .unwrap());
        let p = Predicate::InSet {
            column: "id".into(),
            values: vec![Value::Int(3), Value::Int(5)],
        };
        assert!(p.evaluate(&s, &r).unwrap());
    }

    #[test]
    fn boolean_composition() {
        let s = schema();
        let r = row(5, "abc", Some(150.0));
        let p = Predicate::And(vec![
            Predicate::eq("id", 5i64),
            Predicate::cmp("mw", CompareOp::Lt, 200.0),
        ]);
        assert!(p.evaluate(&s, &r).unwrap());
        let p = Predicate::Or(vec![
            Predicate::eq("id", 9i64),
            Predicate::eq("name", "abc"),
        ]);
        assert!(p.evaluate(&s, &r).unwrap());
        assert!(Predicate::True.evaluate(&s, &r).unwrap());
    }

    #[test]
    fn and_flattens() {
        let p = Predicate::eq("a", 1i64)
            .and(Predicate::True)
            .and(Predicate::eq("b", 2i64).and(Predicate::eq("c", 3i64)));
        match &p {
            Predicate::And(parts) => assert_eq!(parts.len(), 3),
            other => panic!("expected flat And, got {other:?}"),
        }
        assert_eq!(Predicate::True.and(Predicate::True), Predicate::True);
        let single = Predicate::True.and(Predicate::eq("x", 1i64));
        assert!(matches!(single, Predicate::Compare { .. }));
    }

    #[test]
    fn columns_collected() {
        let p = Predicate::And(vec![
            Predicate::eq("b", 1i64),
            Predicate::Or(vec![
                Predicate::eq("a", 2i64),
                Predicate::Not(Box::new(Predicate::IsNull { column: "b".into() })),
            ]),
        ]);
        assert_eq!(p.columns(), vec!["a", "b"]);
    }

    #[test]
    fn bind_rejects_unknown_column() {
        let s = schema();
        assert!(Predicate::eq("bogus", 1i64).bind(&s).is_err());
    }

    #[test]
    fn int_float_compare_across_types() {
        let s = schema();
        let r = row(5, "abc", Some(150.0));
        // Int literal against Float column.
        assert!(Predicate::eq("mw", 150i64).evaluate(&s, &r).unwrap());
        // Float literal against Int column.
        assert!(Predicate::cmp("id", CompareOp::Lt, 5.5)
            .evaluate(&s, &r)
            .unwrap());
    }
}
