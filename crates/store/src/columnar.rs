//! Columnar tables: one typed [`Segment`] per schema column.
//!
//! A [`ColumnarTable`] is the column-oriented counterpart of
//! [`crate::Table`]: same schema language, same predicate semantics,
//! but rows live as contiguous typed buffers so the query executor can
//! take zero-copy [`ColumnSlice`] views and run vectorized kernels
//! over row ranges instead of gathering row ids. A table sorted by an
//! integer column (the Euler-tour leaf rank, in the query engine's
//! use) answers interval scopes with a binary search that yields a
//! contiguous row range — the optimizer's interval rewrite becomes a
//! range-slice, not a row-id gather.
//!
//! Snapshots are canonical: dictionaries are re-coded in
//! first-occurrence row order on save, so save→load→save is
//! byte-identical regardless of intern history.

use crate::bitmap::Bitmap;
use crate::dict::Dictionary;
use crate::expr::BoundPredicate;
use crate::kernel;
use crate::schema::Schema;
use crate::segment::{ColumnSlice, Segment, SegmentData};
use crate::value::{Value, ValueType};
use crate::{Result, StoreError};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A column-oriented table with optional sort metadata.
#[derive(Debug, Clone)]
pub struct ColumnarTable {
    name: String,
    schema: Schema,
    segments: Vec<Segment>,
    len: usize,
    /// Column index declared ascending-sorted (non-null Int), if any.
    sorted_by: Option<usize>,
}

impl ColumnarTable {
    /// An empty columnar table for a schema. Every column must have a
    /// storable type (no `ValueType::Null` columns).
    pub fn new(name: impl Into<String>, schema: Schema) -> Result<ColumnarTable> {
        let segments = schema
            .columns()
            .iter()
            .map(|c| Segment::new(c.ty))
            .collect::<Result<Vec<_>>>()?;
        Ok(ColumnarTable {
            name: name.into(),
            schema,
            segments,
            len: 0,
            sorted_by: None,
        })
    }

    /// Build a table by appending rows in order.
    pub fn from_rows<I>(name: impl Into<String>, schema: Schema, rows: I) -> Result<ColumnarTable>
    where
        I: IntoIterator,
        I::Item: AsRef<[Value]>,
    {
        let mut t = ColumnarTable::new(name, schema)?;
        for row in rows {
            t.append_row(row.as_ref())?;
        }
        Ok(t)
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The declared sort column, if [`declare_sorted`] has run.
    ///
    /// [`declare_sorted`]: ColumnarTable::declare_sorted
    pub fn sorted_by(&self) -> Option<usize> {
        self.sorted_by
    }

    /// Append one validated row to every segment.
    pub fn append_row(&mut self, row: &[Value]) -> Result<()> {
        self.schema.validate_row(row)?;
        // Pre-check the one failure `validate_row` cannot see (Int in
        // a Float column too wide to widen exactly) so a mid-row error
        // cannot leave segments at different lengths.
        for (cell, seg) in row.iter().zip(&self.segments) {
            if seg.value_type() == ValueType::Float {
                if let Value::Int(i) = cell {
                    if i.abs() > (1 << 53) {
                        return Err(StoreError::Columnar(format!(
                            "integer {i} in a Float column is not exactly representable as f64"
                        )));
                    }
                }
            }
        }
        if let Some(col) = self.sorted_by {
            let last = self
                .len
                .checked_sub(1)
                .map(|i| self.segments[col].slice().value_at(i));
            if row[col].is_null() || matches!(&last, Some(prev) if prev > &row[col]) {
                return Err(StoreError::Columnar(format!(
                    "append violates declared sort order on column {col}"
                )));
            }
        }
        for (cell, seg) in row.iter().zip(&mut self.segments) {
            seg.push_value(cell)?;
        }
        self.len += 1;
        Ok(())
    }

    /// Declare `column` ascending-sorted; verifies it is a fully
    /// non-NULL Int column in non-decreasing order. Enables
    /// [`range_of_i64`] binary searches.
    ///
    /// [`range_of_i64`]: ColumnarTable::range_of_i64
    pub fn declare_sorted(&mut self, column: &str) -> Result<()> {
        let col = self.schema.column_index(column)?;
        let seg = &self.segments[col];
        let SegmentData::Int(data) = seg.data() else {
            return Err(StoreError::Columnar(format!(
                "sort column {column:?} must be Int, is {:?}",
                seg.value_type()
            )));
        };
        if seg.validity().count_ones() != self.len {
            return Err(StoreError::Columnar(format!(
                "sort column {column:?} contains NULLs"
            )));
        }
        if data.windows(2).any(|w| w[0] > w[1]) {
            return Err(StoreError::Columnar(format!(
                "column {column:?} is not sorted ascending"
            )));
        }
        self.sorted_by = Some(col);
        Ok(())
    }

    /// The contiguous row range whose sort-column values fall in the
    /// half-open interval `[lo, hi)`. Errors unless a sort column has
    /// been declared.
    pub fn range_of_i64(&self, lo: i64, hi: i64) -> Result<Range<usize>> {
        let col = self.sorted_by.ok_or_else(|| {
            StoreError::Columnar("range_of_i64 requires a declared sort column".to_string())
        })?;
        let SegmentData::Int(data) = self.segments[col].data() else {
            unreachable!("declare_sorted only accepts Int columns");
        };
        let start = data.partition_point(|&v| v < lo);
        let end = data.partition_point(|&v| v < hi);
        Ok(start..end.max(start))
    }

    /// Zero-copy view of one column.
    pub fn column(&self, index: usize) -> ColumnSlice<'_> {
        self.segments[index].slice()
    }

    /// Zero-copy views of every column, in schema order.
    pub fn columns(&self) -> Vec<ColumnSlice<'_>> {
        self.segments.iter().map(Segment::slice).collect()
    }

    /// Materialize one row (generic fallback; hot paths read columns).
    pub fn get_row(&self, index: usize) -> Vec<Value> {
        self.segments
            .iter()
            .map(|s| s.slice().value_at(index))
            .collect()
    }

    /// Evaluate a bound predicate over a row range with the vectorized
    /// kernels, returning a selection bitmap over the whole table.
    pub fn eval(&self, pred: &BoundPredicate, rows: Range<usize>) -> Bitmap {
        let columns = self.columns();
        kernel::eval_predicate(pred, &columns, rows, self.len)
    }
}

/// Serializable segment payload. String segments store the dictionary
/// inline as a code-ordered value list.
#[derive(Debug, Serialize, Deserialize)]
enum SegmentDataSnapshot {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Float(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Dictionary codes plus the code-ordered value list.
    Str {
        codes: Vec<u32>,
        values: Vec<String>,
    },
}

#[derive(Debug, Serialize, Deserialize)]
struct SegmentSnapshot {
    data: SegmentDataSnapshot,
    validity: Bitmap,
}

/// Serializable columnar-table state.
#[derive(Debug, Serialize, Deserialize)]
struct ColumnarSnapshot {
    version: u32,
    name: String,
    schema: Schema,
    sorted_by: Option<usize>,
    columns: Vec<SegmentSnapshot>,
}

const COLUMNAR_SNAPSHOT_VERSION: u32 = 1;

/// Serialize a columnar table to a canonical JSON string: dictionary
/// codes are remapped to first-occurrence row order, so the output is
/// independent of intern history and save→load→save is byte-identical.
pub fn save_columnar(table: &ColumnarTable) -> Result<String> {
    let columns = table
        .segments
        .iter()
        .map(|seg| {
            let validity = seg.validity().clone();
            let data = match seg.data() {
                SegmentData::Int(d) => SegmentDataSnapshot::Int(d.clone()),
                SegmentData::Float(d) => SegmentDataSnapshot::Float(d.clone()),
                SegmentData::Bool(d) => SegmentDataSnapshot::Bool(d.clone()),
                SegmentData::Str { codes, dict } => {
                    let (codes, values) = canonicalize_dict(codes, dict, &validity);
                    SegmentDataSnapshot::Str { codes, values }
                }
            };
            SegmentSnapshot { data, validity }
        })
        .collect();
    serde_json::to_string(&ColumnarSnapshot {
        version: COLUMNAR_SNAPSHOT_VERSION,
        name: table.name.clone(),
        schema: table.schema.clone(),
        sorted_by: table.sorted_by,
        columns,
    })
    .map_err(|e| StoreError::Snapshot(e.to_string()))
}

/// Remap codes to first-occurrence row order, dropping dictionary
/// entries no live row references. NULL rows emit placeholder code 0.
fn canonicalize_dict(
    codes: &[u32],
    dict: &Dictionary,
    validity: &Bitmap,
) -> (Vec<u32>, Vec<String>) {
    let mut remap: Vec<Option<u32>> = vec![None; dict.len()];
    let mut values: Vec<String> = Vec::new();
    let mut out = Vec::with_capacity(codes.len());
    for (i, &c) in codes.iter().enumerate() {
        if !validity.get(i) {
            out.push(0);
            continue;
        }
        let slot = &mut remap[c as usize];
        let code = *slot.get_or_insert_with(|| {
            values.push(dict.value_of(c).unwrap_or_default().to_string());
            (values.len() - 1) as u32
        });
        out.push(code);
    }
    (out, values)
}

/// Restore a columnar table from a JSON string produced by
/// [`save_columnar`]. Re-verifies the declared sort order.
pub fn load_columnar(json: &str) -> Result<ColumnarTable> {
    let snap: ColumnarSnapshot =
        serde_json::from_str(json).map_err(|e| StoreError::Snapshot(e.to_string()))?;
    if snap.version != COLUMNAR_SNAPSHOT_VERSION {
        return Err(StoreError::Snapshot(format!(
            "unsupported columnar snapshot version {} (expected {COLUMNAR_SNAPSHOT_VERSION})",
            snap.version
        )));
    }
    if snap.columns.len() != snap.schema.arity() {
        return Err(StoreError::Columnar(format!(
            "snapshot has {} columns but schema arity is {}",
            snap.columns.len(),
            snap.schema.arity()
        )));
    }
    let mut len = None;
    let segments = snap
        .columns
        .into_iter()
        .map(|col| {
            let data = match col.data {
                SegmentDataSnapshot::Int(d) => SegmentData::Int(d),
                SegmentDataSnapshot::Float(d) => SegmentData::Float(d),
                SegmentDataSnapshot::Bool(d) => SegmentData::Bool(d),
                SegmentDataSnapshot::Str { codes, values } => SegmentData::Str {
                    codes,
                    dict: Dictionary::from_values(values)?,
                },
            };
            let seg = Segment::from_parts(data, col.validity)?;
            match len {
                None => len = Some(seg.len()),
                Some(l) if l != seg.len() => {
                    return Err(StoreError::Columnar(format!(
                        "segment lengths disagree: {l} vs {}",
                        seg.len()
                    )))
                }
                Some(_) => {}
            }
            Ok(seg)
        })
        .collect::<Result<Vec<_>>>()?;
    let mut table = ColumnarTable {
        name: snap.name,
        schema: snap.schema,
        len: len.unwrap_or(0),
        segments,
        sorted_by: None,
    };
    if let Some(col) = snap.sorted_by {
        let name = table
            .schema
            .columns()
            .get(col)
            .ok_or_else(|| StoreError::Columnar(format!("sort column {col} out of range")))?
            .name
            .clone();
        table.declare_sorted(&name)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CompareOp, Predicate};
    use crate::schema::Column;

    fn activity_schema() -> Schema {
        Schema::new(vec![
            Column::required("leaf_rank", ValueType::Int),
            Column::required("source", ValueType::Text),
            Column::nullable("value_nm", ValueType::Float),
        ])
    }

    fn sample() -> ColumnarTable {
        let rows: Vec<Vec<Value>> = vec![
            vec![Value::Int(0), Value::from("assay-a"), Value::Float(10.0)],
            vec![Value::Int(2), Value::from("assay-b"), Value::Float(100.0)],
            vec![Value::Int(2), Value::from("assay-a"), Value::Null],
            vec![Value::Int(5), Value::from("assay-b"), Value::Float(2.5)],
            vec![Value::Int(9), Value::from("assay-a"), Value::Float(7.0)],
        ];
        let mut t = ColumnarTable::from_rows("activity", activity_schema(), rows).unwrap();
        t.declare_sorted("leaf_rank").unwrap();
        t
    }

    #[test]
    fn append_and_read_back() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(
            t.get_row(2),
            vec![Value::Int(2), Value::from("assay-a"), Value::Null]
        );
        assert_eq!(t.sorted_by(), Some(0));
    }

    #[test]
    fn interval_range_binary_search() {
        let t = sample();
        assert_eq!(t.range_of_i64(2, 6).unwrap(), 1..4);
        assert_eq!(t.range_of_i64(0, 10).unwrap(), 0..5);
        assert_eq!(t.range_of_i64(3, 5).unwrap(), 3..3);
        assert_eq!(t.range_of_i64(10, 20).unwrap(), 5..5);
        let unsorted = ColumnarTable::new("x", activity_schema()).unwrap();
        assert!(unsorted.range_of_i64(0, 1).is_err());
    }

    #[test]
    fn sorted_declaration_verifies() {
        let rows = vec![
            vec![Value::Int(5), Value::from("a"), Value::Null],
            vec![Value::Int(3), Value::from("a"), Value::Null],
        ];
        let mut t = ColumnarTable::from_rows("x", activity_schema(), rows).unwrap();
        assert!(t.declare_sorted("leaf_rank").is_err());
        assert!(t.declare_sorted("source").is_err());
        // Appends that would break a declared order are rejected.
        let mut t = sample();
        let bad = vec![Value::Int(1), Value::from("a"), Value::Null];
        assert!(t.append_row(&bad).is_err());
        let ok = vec![Value::Int(9), Value::from("a"), Value::Null];
        t.append_row(&ok).unwrap();
    }

    #[test]
    fn eval_matches_row_semantics() {
        let t = sample();
        let pred = Predicate::And(vec![
            Predicate::eq("source", "assay-a"),
            Predicate::cmp("value_nm", CompareOp::Le, 10.0),
        ])
        .bind(t.schema())
        .unwrap();
        let sel = t.eval(&pred, 0..t.len());
        let expect: Vec<usize> = (0..t.len())
            .filter(|&i| pred.matches(&t.get_row(i)))
            .collect();
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), expect);
        assert_eq!(expect, vec![0, 4]);
    }

    #[test]
    fn snapshot_roundtrip_preserves_rows() {
        let t = sample();
        let json = save_columnar(&t).unwrap();
        let back = load_columnar(&json).unwrap();
        assert_eq!(back.len(), t.len());
        assert_eq!(back.sorted_by(), Some(0));
        for i in 0..t.len() {
            assert_eq!(back.get_row(i), t.get_row(i));
        }
        // Canonical: a second round-trip is byte-identical.
        assert_eq!(save_columnar(&back).unwrap(), json);
    }

    #[test]
    fn snapshot_dictionary_remap_is_stable() {
        // Rows referencing "zeta" first, "alpha" second — but the
        // crafted snapshot stores the dictionary in the opposite order
        // and includes an entry no row references. Loading and
        // re-saving must canonicalize to first-occurrence order with
        // the dead entry dropped, matching the natural build exactly.
        let schema = Schema::new(vec![
            Column::required("leaf_rank", ValueType::Int),
            Column::required("source", ValueType::Text),
        ]);
        let crafted = serde_json::to_string(&ColumnarSnapshot {
            version: COLUMNAR_SNAPSHOT_VERSION,
            name: "t".to_string(),
            schema: schema.clone(),
            sorted_by: None,
            columns: vec![
                SegmentSnapshot {
                    data: SegmentDataSnapshot::Int(vec![0, 1, 2]),
                    validity: Bitmap::full(3),
                },
                SegmentSnapshot {
                    data: SegmentDataSnapshot::Str {
                        codes: vec![2, 0, 2],
                        values: vec!["alpha".into(), "unused".into(), "zeta".into()],
                    },
                    validity: Bitmap::full(3),
                },
            ],
        })
        .unwrap();
        let loaded = load_columnar(&crafted).unwrap();
        assert_eq!(loaded.get_row(0)[1], Value::from("zeta"));
        assert_eq!(loaded.get_row(1)[1], Value::from("alpha"));
        let natural = ColumnarTable::from_rows(
            "t",
            schema,
            vec![
                vec![Value::Int(0), Value::from("zeta")],
                vec![Value::Int(1), Value::from("alpha")],
                vec![Value::Int(2), Value::from("zeta")],
            ],
        )
        .unwrap();
        let canonical = save_columnar(&natural).unwrap();
        assert_eq!(save_columnar(&loaded).unwrap(), canonical);
        assert!(!canonical.contains("unused"));
        // And the canonical form is a fixed point.
        let again = load_columnar(&canonical).unwrap();
        assert_eq!(save_columnar(&again).unwrap(), canonical);
    }

    #[test]
    fn snapshot_empty_table_edge_case() {
        let t = ColumnarTable::new("empty", activity_schema()).unwrap();
        let json = save_columnar(&t).unwrap();
        let back = load_columnar(&json).unwrap();
        assert_eq!(back.len(), 0);
        assert!(back.is_empty());
        assert_eq!(back.schema(), t.schema());
        assert_eq!(save_columnar(&back).unwrap(), json);
        // An all-NULL string column also survives (placeholder codes
        // with an empty dictionary).
        let mut t = ColumnarTable::new(
            "nulls",
            Schema::new(vec![
                Column::required("leaf_rank", ValueType::Int),
                Column::nullable("tag", ValueType::Text),
            ]),
        )
        .unwrap();
        t.append_row(&[Value::Int(1), Value::Null]).unwrap();
        let json = save_columnar(&t).unwrap();
        let back = load_columnar(&json).unwrap();
        assert_eq!(back.get_row(0), vec![Value::Int(1), Value::Null]);
    }

    #[test]
    fn snapshot_version_and_malformed_rejected() {
        let t = sample();
        let json = save_columnar(&t)
            .unwrap()
            .replace("\"version\":1", "\"version\":9");
        assert!(load_columnar(&json).is_err());
        assert!(load_columnar("{nope").is_err());
    }
}
