//! Packed bitmaps: selection vectors and validity masks for the
//! columnar engine.
//!
//! A [`Bitmap`] is a length-aware `Vec<u64>` with the tail bits of the
//! last word kept at zero, so whole-word operations (`and`, `or`,
//! `count_ones`) never see garbage past the logical end. Filter
//! kernels produce one selection bitmap per predicate leaf and combine
//! them wordwise; the same type doubles as a column's validity
//! (non-NULL) mask.

use serde::{Deserialize, Serialize};

/// A fixed-length bitmap over row positions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An all-zeros bitmap covering `len` positions.
    pub fn new(len: usize) -> Bitmap {
        Bitmap {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// An all-ones bitmap covering `len` positions (tail masked).
    pub fn full(len: usize) -> Bitmap {
        let mut b = Bitmap {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.mask_tail();
        b
    }

    /// Number of positions covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitmap covers zero positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set position `i` to one.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i >> 6] |= 1u64 << (i & 63);
    }

    /// Read position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Append one position at the end (grows the bitmap by one).
    pub fn push(&mut self, bit: bool) {
        if self.len & 63 == 0 {
            self.words.push(0);
        }
        if bit {
            self.words[self.len >> 6] |= 1u64 << (self.len & 63);
        }
        self.len += 1;
    }

    /// Set every position in `lo..hi` to one.
    pub fn set_range(&mut self, lo: usize, hi: usize) {
        let hi = hi.min(self.len);
        if lo >= hi {
            return;
        }
        let (first, last) = (lo >> 6, (hi - 1) >> 6);
        let head = u64::MAX << (lo & 63);
        let tail = u64::MAX >> (63 - ((hi - 1) & 63));
        if first == last {
            self.words[first] |= head & tail;
        } else {
            self.words[first] |= head;
            for w in &mut self.words[first + 1..last] {
                *w = u64::MAX;
            }
            self.words[last] |= tail;
        }
    }

    /// Number of set positions.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self &= other`. Lengths must match.
    pub fn and_assign(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `self |= other`. Lengths must match.
    pub fn or_assign(&mut self, other: &Bitmap) {
        debug_assert_eq!(self.len, other.len);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self = domain & !self`: complement restricted to `domain` (the
    /// row range a kernel is evaluating over), so NOT never sets bits
    /// outside the rows under consideration.
    pub fn complement_within(&mut self, domain: &Bitmap) {
        debug_assert_eq!(self.len, domain.len);
        for (a, d) in self.words.iter_mut().zip(&domain.words) {
            *a = d & !*a;
        }
        self.mask_tail();
    }

    /// Iterate set positions in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            std::iter::successors((word != 0).then_some(word), |w| {
                let next = w & (w - 1);
                (next != 0).then_some(next)
            })
            .map(move |w| (wi << 6) + w.trailing_zeros() as usize)
        })
    }

    /// The backing words (tail bits of the last word are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable view of the backing words, for kernels that assemble
    /// selection bits a word at a time. Callers must keep the tail
    /// bits of the last word zero.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    fn mask_tail(&mut self) {
        let tail = self.len & 63;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> (64 - tail);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_count() {
        let mut b = Bitmap::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        b.set(0);
        b.set(63);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(63) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(128));
        assert_eq!(b.count_ones(), 4);
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
    }

    #[test]
    fn full_masks_tail() {
        let b = Bitmap::full(70);
        assert_eq!(b.count_ones(), 70);
        assert_eq!(*b.words().last().unwrap(), (1u64 << 6) - 1);
        assert!(Bitmap::full(0).is_empty());
        assert_eq!(Bitmap::full(64).count_ones(), 64);
    }

    #[test]
    fn set_range_spans_words() {
        for (lo, hi) in [(0, 0), (3, 9), (60, 70), (0, 64), (5, 200), (199, 200)] {
            let mut b = Bitmap::new(200);
            b.set_range(lo, hi);
            let expect: Vec<usize> = (lo..hi).collect();
            assert_eq!(b.iter_ones().collect::<Vec<_>>(), expect, "[{lo}, {hi})");
        }
        // Clamped at the logical end.
        let mut b = Bitmap::new(10);
        b.set_range(5, 99);
        assert_eq!(b.count_ones(), 5);
    }

    #[test]
    fn boolean_combinators() {
        let mut a = Bitmap::new(100);
        a.set_range(10, 50);
        let mut b = Bitmap::new(100);
        b.set_range(40, 80);
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(
            and.iter_ones().collect::<Vec<_>>(),
            (40..50).collect::<Vec<_>>()
        );
        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(or.count_ones(), 70);
        // NOT restricted to a domain.
        let mut domain = Bitmap::new(100);
        domain.set_range(0, 60);
        let mut not_a = a.clone();
        not_a.complement_within(&domain);
        let expect: Vec<usize> = (0..10).chain(50..60).collect();
        assert_eq!(not_a.iter_ones().collect::<Vec<_>>(), expect);
    }

    #[test]
    fn push_matches_set() {
        let mut grown = Bitmap::new(0);
        let pattern = [true, false, true, true, false];
        for i in 0..130 {
            grown.push(pattern[i % pattern.len()]);
        }
        let mut fixed = Bitmap::new(130);
        for i in 0..130 {
            if pattern[i % pattern.len()] {
                fixed.set(i);
            }
        }
        assert_eq!(grown, fixed);
    }

    #[test]
    fn serde_roundtrip() {
        let mut b = Bitmap::new(77);
        b.set_range(3, 30);
        b.set(76);
        let json = serde_json::to_string(&b).unwrap();
        let back: Bitmap = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}
