//! Typed columnar segments and zero-copy column views.
//!
//! A [`Segment`] stores one column as a contiguous typed buffer — one
//! `Vec<i64>`/`Vec<f64>`/`Vec<bool>` per numeric/boolean column, or a
//! `Vec<u32>` of codes plus a [`Dictionary`] for strings — paired with
//! a validity [`Bitmap`] (bit set ⇔ cell non-NULL). NULL cells occupy
//! a default slot in the typed buffer so offsets stay dense.
//!
//! Executors never copy the data out: a [`ColumnSlice`] borrows the
//! buffers and is `Copy`, so kernels receive plain slices the compiler
//! can auto-vectorize over.

use crate::bitmap::Bitmap;
use crate::dict::Dictionary;
use crate::value::{Value, ValueType};
use crate::{Result, StoreError};

/// Largest `i64` magnitude exactly representable as `f64`. Ints wider
/// than this cannot be widened into a Float segment without changing
/// comparison results versus the row path's exact `i64` ordering.
const MAX_EXACT_INT_IN_F64: i64 = 1 << 53;

/// The typed buffer behind one column.
#[derive(Debug, Clone, PartialEq)]
pub enum SegmentData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats (`Int` cells widened where exact).
    Float(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Dictionary-encoded strings: one code per row.
    Str {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// The intern table the codes point into.
        dict: Dictionary,
    },
}

/// One column of a columnar table: typed data plus validity.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    data: SegmentData,
    validity: Bitmap,
}

impl Segment {
    /// An empty segment for a declared column type. `ValueType::Null`
    /// is not a storable column type.
    pub fn new(ty: ValueType) -> Result<Segment> {
        let data = match ty {
            ValueType::Int => SegmentData::Int(Vec::new()),
            ValueType::Float => SegmentData::Float(Vec::new()),
            ValueType::Bool => SegmentData::Bool(Vec::new()),
            ValueType::Text => SegmentData::Str {
                codes: Vec::new(),
                dict: Dictionary::new(),
            },
            ValueType::Null => {
                return Err(StoreError::Columnar(
                    "Null is not a storable column type".to_string(),
                ))
            }
        };
        Ok(Segment {
            data,
            validity: Bitmap::new(0),
        })
    }

    /// Number of rows (valid or not).
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// True when the segment holds zero rows.
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Append one cell. NULL stores a default slot with validity 0;
    /// type mismatches (beyond the schema's Int→Float widening) error.
    pub fn push_value(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            match &mut self.data {
                SegmentData::Int(d) => d.push(0),
                SegmentData::Float(d) => d.push(0.0),
                SegmentData::Bool(d) => d.push(false),
                SegmentData::Str { codes, .. } => codes.push(0),
            }
            self.validity.push(false);
            return Ok(());
        }
        match (&mut self.data, v) {
            (SegmentData::Int(d), Value::Int(i)) => d.push(*i),
            (SegmentData::Float(d), Value::Float(f)) => d.push(*f),
            // The schema admits Int cells in Float columns; widen only
            // where exact so kernel comparisons replicate `Value::cmp`.
            (SegmentData::Float(d), Value::Int(i)) => {
                if i.abs() > MAX_EXACT_INT_IN_F64 {
                    return Err(StoreError::Columnar(format!(
                        "integer {i} in a Float column is not exactly representable as f64"
                    )));
                }
                d.push(*i as f64);
            }
            (SegmentData::Bool(d), Value::Bool(b)) => d.push(*b),
            (SegmentData::Str { codes, dict }, Value::Text(s)) => {
                codes.push(dict.intern(s));
            }
            (_, v) => {
                return Err(StoreError::TypeMismatch {
                    column: String::new(),
                    expected: self.value_type(),
                    got: v.value_type(),
                })
            }
        }
        self.validity.push(true);
        Ok(())
    }

    /// The declared column type.
    pub fn value_type(&self) -> ValueType {
        match &self.data {
            SegmentData::Int(_) => ValueType::Int,
            SegmentData::Float(_) => ValueType::Float,
            SegmentData::Bool(_) => ValueType::Bool,
            SegmentData::Str { .. } => ValueType::Text,
        }
    }

    /// Zero-copy view of the whole segment.
    pub fn slice(&self) -> ColumnSlice<'_> {
        let data = match &self.data {
            SegmentData::Int(d) => ColumnData::Int(d),
            SegmentData::Float(d) => ColumnData::Float(d),
            SegmentData::Bool(d) => ColumnData::Bool(d),
            SegmentData::Str { codes, dict } => ColumnData::Str { codes, dict },
        };
        ColumnSlice {
            data,
            validity: &self.validity,
        }
    }

    /// The raw typed buffer (row-aligned with `validity`).
    pub fn data(&self) -> &SegmentData {
        &self.data
    }

    /// The validity bitmap (bit set ⇔ non-NULL).
    pub fn validity(&self) -> &Bitmap {
        &self.validity
    }

    /// Rebuild a segment from raw parts (snapshot loading).
    pub(crate) fn from_parts(data: SegmentData, validity: Bitmap) -> Result<Segment> {
        let rows = match &data {
            SegmentData::Int(d) => d.len(),
            SegmentData::Float(d) => d.len(),
            SegmentData::Bool(d) => d.len(),
            SegmentData::Str { codes, dict } => {
                // NULL rows carry a placeholder code; only codes at
                // valid rows must resolve in the dictionary.
                for (i, &c) in codes.iter().enumerate() {
                    if i < validity.len() && validity.get(i) && (c as usize) >= dict.len() {
                        return Err(StoreError::Columnar(format!(
                            "dictionary code {c} out of range ({} entries)",
                            dict.len()
                        )));
                    }
                }
                codes.len()
            }
        };
        if rows != validity.len() {
            return Err(StoreError::Columnar(format!(
                "segment data has {rows} rows but validity covers {}",
                validity.len()
            )));
        }
        Ok(Segment { data, validity })
    }
}

/// Borrowed typed column data.
#[derive(Debug, Clone, Copy)]
pub enum ColumnData<'a> {
    /// 64-bit integers.
    Int(&'a [i64]),
    /// 64-bit floats.
    Float(&'a [f64]),
    /// Booleans.
    Bool(&'a [bool]),
    /// Dictionary codes plus the intern table.
    Str {
        /// Per-row dictionary codes.
        codes: &'a [u32],
        /// The intern table the codes point into.
        dict: &'a Dictionary,
    },
}

/// A zero-copy view of one column: typed buffer plus validity. `Copy`,
/// so kernels take it by value.
#[derive(Debug, Clone, Copy)]
pub struct ColumnSlice<'a> {
    /// The typed buffer.
    pub data: ColumnData<'a>,
    /// Validity bitmap (bit set ⇔ non-NULL).
    pub validity: &'a Bitmap,
}

impl ColumnSlice<'_> {
    /// Number of rows in the view.
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// True when the view covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Materialize one cell as a [`Value`] (generic fallback path;
    /// kernels use the typed buffers directly).
    pub fn value_at(&self, i: usize) -> Value {
        if !self.validity.get(i) {
            return Value::Null;
        }
        match self.data {
            ColumnData::Int(d) => Value::Int(d[i]),
            ColumnData::Float(d) => Value::Float(d[i]),
            ColumnData::Bool(d) => Value::Bool(d[i]),
            ColumnData::Str { codes, dict } => {
                Value::Text(dict.value_of(codes[i]).unwrap_or_default().to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_push_and_read_back() {
        let mut s = Segment::new(ValueType::Int).unwrap();
        s.push_value(&Value::Int(5)).unwrap();
        s.push_value(&Value::Null).unwrap();
        s.push_value(&Value::Int(-3)).unwrap();
        assert_eq!(s.len(), 3);
        let v = s.slice();
        assert_eq!(v.value_at(0), Value::Int(5));
        assert_eq!(v.value_at(1), Value::Null);
        assert_eq!(v.value_at(2), Value::Int(-3));
        assert!(matches!(s.data(), SegmentData::Int(d) if d == &[5, 0, -3]));
    }

    #[test]
    fn float_widens_exact_ints_only() {
        let mut s = Segment::new(ValueType::Float).unwrap();
        s.push_value(&Value::Int(7)).unwrap();
        s.push_value(&Value::Float(2.5)).unwrap();
        assert_eq!(s.slice().value_at(0), Value::Float(7.0));
        let giant = Value::Int((1 << 53) + 1);
        assert!(matches!(s.push_value(&giant), Err(StoreError::Columnar(_))));
    }

    #[test]
    fn strings_dictionary_encode() {
        let mut s = Segment::new(ValueType::Text).unwrap();
        for v in ["a", "b", "a", "a"] {
            s.push_value(&Value::from(v)).unwrap();
        }
        match s.data() {
            SegmentData::Str { codes, dict } => {
                assert_eq!(codes, &[0, 1, 0, 0]);
                assert_eq!(dict.len(), 2);
            }
            other => panic!("unexpected data {other:?}"),
        }
        assert_eq!(s.slice().value_at(3), Value::from("a"));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut s = Segment::new(ValueType::Int).unwrap();
        assert!(matches!(
            s.push_value(&Value::from("x")),
            Err(StoreError::TypeMismatch { .. })
        ));
        assert!(Segment::new(ValueType::Null).is_err());
    }

    #[test]
    fn from_parts_validates_lengths_and_codes() {
        let bad = Segment::from_parts(SegmentData::Int(vec![1, 2]), Bitmap::full(3));
        assert!(bad.is_err());
        let mut dict = Dictionary::new();
        dict.intern("only");
        let bad = Segment::from_parts(
            SegmentData::Str {
                codes: vec![0, 7],
                dict,
            },
            Bitmap::full(2),
        );
        assert!(bad.is_err());
    }
}
