#![warn(missing_docs)]

//! Embedded in-memory relational store for the DrugTree reproduction.
//!
//! The wrapper/mediator integration layer materializes unified records
//! into this store; the query engine then evaluates residual predicates
//! and index scans against it. Deliberately small but real:
//!
//! * [`value`] — dynamically-typed cell values with a total order.
//! * [`schema`] — column/table schemas.
//! * [`expr`] — predicate expressions evaluated against rows.
//! * [`table`] — row tables with secondary indexes (hash + B-tree).
//! * [`catalog`] — a named collection of tables.
//! * [`snapshot`] — JSON snapshot persistence for catalogs.
//!
//! The columnar engine lives alongside the row path (same schema and
//! predicate language, byte-identical selection semantics):
//!
//! * [`bitmap`] — packed selection/validity bitmaps.
//! * [`dict`] — dictionary encoding for low-cardinality strings.
//! * [`segment`] — typed column buffers with zero-copy slices.
//! * [`kernel`] — vectorized filter/aggregate kernels.
//! * [`columnar`] — columnar tables with sort-aware range slicing and
//!   canonical snapshots.

pub mod bitmap;
pub mod catalog;
pub mod columnar;
pub mod dict;
pub mod error;
pub mod expr;
pub mod kernel;
pub mod schema;
pub mod segment;
pub mod snapshot;
pub mod table;
pub mod value;

pub use bitmap::Bitmap;
pub use catalog::Catalog;
pub use columnar::{load_columnar, save_columnar, ColumnarTable};
pub use dict::Dictionary;
pub use error::StoreError;
pub use expr::{CompareOp, Predicate};
pub use schema::{Column, Schema};
pub use segment::{ColumnData, ColumnSlice, Segment, SegmentData};
pub use table::{RowId, Table};
pub use value::{Value, ValueType};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StoreError>;
