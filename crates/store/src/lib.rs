#![warn(missing_docs)]

//! Embedded in-memory relational store for the DrugTree reproduction.
//!
//! The wrapper/mediator integration layer materializes unified records
//! into this store; the query engine then evaluates residual predicates
//! and index scans against it. Deliberately small but real:
//!
//! * [`value`] — dynamically-typed cell values with a total order.
//! * [`schema`] — column/table schemas.
//! * [`expr`] — predicate expressions evaluated against rows.
//! * [`table`] — row tables with secondary indexes (hash + B-tree).
//! * [`catalog`] — a named collection of tables.
//! * [`snapshot`] — JSON snapshot persistence for catalogs.

pub mod catalog;
pub mod error;
pub mod expr;
pub mod schema;
pub mod snapshot;
pub mod table;
pub mod value;

pub use catalog::Catalog;
pub use error::StoreError;
pub use expr::{CompareOp, Predicate};
pub use schema::{Column, Schema};
pub use table::{RowId, Table};
pub use value::{Value, ValueType};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StoreError>;
