//! Error type for the embedded store.

use crate::value::ValueType;
use std::fmt;

/// Errors from schema validation, inserts, queries, or snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A column name that does not exist in the schema.
    UnknownColumn(String),
    /// A table name that does not exist in the catalog.
    UnknownTable(String),
    /// A table with the same name already exists.
    DuplicateTable(String),
    /// A row's arity or a cell's type does not match the schema.
    TypeMismatch {
        /// Offending column.
        column: String,
        /// Schema type.
        expected: ValueType,
        /// Supplied type.
        got: ValueType,
    },
    /// Row arity differs from the schema's column count.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Supplied arity.
        got: usize,
    },
    /// NULL in a non-nullable column.
    NullViolation(String),
    /// A row id outside the table.
    UnknownRow(u64),
    /// Snapshot (de)serialization failed.
    Snapshot(String),
    /// An index already exists or is missing.
    Index(String),
    /// Columnar-segment invariant violation (sort order, dictionary
    /// codes, exact-widening limits).
    Columnar(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownColumn(c) => write!(f, "unknown column {c:?}"),
            StoreError::UnknownTable(t) => write!(f, "unknown table {t:?}"),
            StoreError::DuplicateTable(t) => write!(f, "table {t:?} already exists"),
            StoreError::TypeMismatch {
                column,
                expected,
                got,
            } => {
                write!(f, "column {column:?} expects {expected:?}, got {got:?}")
            }
            StoreError::ArityMismatch { expected, got } => {
                write!(f, "row arity {got} does not match schema arity {expected}")
            }
            StoreError::NullViolation(c) => {
                write!(f, "NULL in non-nullable column {c:?}")
            }
            StoreError::UnknownRow(id) => write!(f, "unknown row id {id}"),
            StoreError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            StoreError::Index(msg) => write!(f, "index error: {msg}"),
            StoreError::Columnar(msg) => write!(f, "columnar error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = StoreError::TypeMismatch {
            column: "mw".into(),
            expected: ValueType::Float,
            got: ValueType::Text,
        };
        let s = e.to_string();
        assert!(s.contains("mw") && s.contains("Float") && s.contains("Text"));
    }
}
