//! Vectorized filter and aggregate kernels over column slices.
//!
//! Each predicate leaf becomes one tight loop over a typed buffer that
//! produces a selection [`Bitmap`]; `AND`/`OR`/`NOT` combine bitmaps
//! wordwise. The literal's type and the comparison operator are
//! resolved once before the loop, verdict bits are packed a 64-row
//! word at a time, and validity is applied as one word-AND per block —
//! the per-row work is a bare typed comparison the compiler can
//! vectorize. The loops replicate [`crate::Value`]'s comparison
//! semantics exactly — including `Int`/`Float` widening via
//! `f64::total_cmp`, cross-type ordering by type rank, and NULL
//! failing every comparison — so a kernel evaluation over a columnar
//! table selects byte-identical row sets to the row path's
//! `BoundPredicate::matches` scan.
//!
//! String columns are dictionary-encoded, so string kernels first
//! compute one verdict per distinct dictionary code and then loop over
//! the `u32` code buffer; per-row work never touches string bytes.

use crate::bitmap::Bitmap;
use crate::expr::{BoundPredicate, CompareOp};
use crate::segment::{ColumnData, ColumnSlice};
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::ops::Range;

/// `Value::Int(v).cmp(lit)` without materializing the cell.
#[inline]
fn cmp_int(v: i64, lit: &Value) -> Ordering {
    match lit {
        Value::Int(b) => v.cmp(b),
        Value::Float(f) => (v as f64).total_cmp(f),
        Value::Text(_) => Ordering::Less,
        Value::Null | Value::Bool(_) => Ordering::Greater,
    }
}

/// `Value::Float(v).cmp(lit)` without materializing the cell.
#[inline]
fn cmp_float(v: f64, lit: &Value) -> Ordering {
    match lit {
        Value::Int(b) => v.total_cmp(&(*b as f64)),
        Value::Float(f) => v.total_cmp(f),
        Value::Text(_) => Ordering::Less,
        Value::Null | Value::Bool(_) => Ordering::Greater,
    }
}

/// `Value::Bool(v).cmp(lit)` without materializing the cell.
#[inline]
fn cmp_bool(v: bool, lit: &Value) -> Ordering {
    match lit {
        Value::Bool(b) => v.cmp(b),
        Value::Null => Ordering::Greater,
        Value::Int(_) | Value::Float(_) | Value::Text(_) => Ordering::Less,
    }
}

/// `Value::Text(v).cmp(lit)` without materializing the cell.
#[inline]
fn cmp_str(v: &str, lit: &Value) -> Ordering {
    match lit {
        Value::Text(s) => v.cmp(s.as_str()),
        Value::Null | Value::Bool(_) | Value::Int(_) | Value::Float(_) => Ordering::Greater,
    }
}

/// Apply `pred` to every cell of `data` in `rows`, restricting matches
/// to valid (non-NULL) rows. Works a 64-row word at a time: per-row
/// verdicts are packed into one register word, ANDed with the validity
/// word, and ORed into the output with a single store. The word-aligned
/// body iterates 64-element `chunks_exact` slices, so the packing loop
/// carries no bounds checks and the compiler can vectorize the bare
/// typed comparison. `pred` runs on NULL rows too (their buffer cells
/// hold type defaults, see [`crate::segment`]), so it must be pure;
/// validity masking discards whatever it says there.
#[inline]
fn fill_map<T, F: Fn(&T) -> bool>(
    out: &mut Bitmap,
    col: ColumnSlice<'_>,
    rows: Range<usize>,
    data: &[T],
    pred: F,
) {
    if rows.start >= rows.end {
        return;
    }
    debug_assert!(rows.end <= col.validity.len() && rows.end <= out.len());
    debug_assert!(rows.end <= data.len());
    let vwords = col.validity.words();
    let owords = out.words_mut();
    // Partial head word (up to the first 64-row boundary), bit by bit.
    let head_end = rows.start.next_multiple_of(64).min(rows.end);
    if rows.start < head_end {
        let w = rows.start >> 6;
        let base = rows.start & 63;
        let mut bits = 0u64;
        for (j, v) in data[rows.start..head_end].iter().enumerate() {
            bits |= u64::from(pred(v)) << (base + j);
        }
        owords[w] |= bits & vwords[w];
    }
    // Aligned body: whole 64-row words from 64-element chunks.
    let body_end = head_end + ((rows.end - head_end) & !63);
    for (k, chunk) in data[head_end..body_end].chunks_exact(64).enumerate() {
        let w = (head_end >> 6) + k;
        let mut bits = 0u64;
        for (j, v) in chunk.iter().enumerate() {
            bits |= u64::from(pred(v)) << j;
        }
        owords[w] |= bits & vwords[w];
    }
    // Partial tail word, bit by bit.
    if body_end < rows.end {
        let w = body_end >> 6;
        let mut bits = 0u64;
        for (j, v) in data[body_end..rows.end].iter().enumerate() {
            bits |= u64::from(pred(v)) << j;
        }
        owords[w] |= bits & vwords[w];
    }
}

/// Row-independent verdict: `true` selects every valid row in the
/// range (validity words masked to `rows`, no data pass at all),
/// `false` selects nothing. Cross-type comparisons (a numeric column
/// against a Text/Bool/NULL literal) constant-fold to this.
#[inline]
fn fill_const(out: &mut Bitmap, col: ColumnSlice<'_>, rows: Range<usize>, verdict: bool) {
    if !verdict || rows.start >= rows.end {
        return;
    }
    debug_assert!(rows.end <= col.validity.len() && rows.end <= out.len());
    let vwords = col.validity.words();
    let owords = out.words_mut();
    let (first, last) = (rows.start >> 6, (rows.end - 1) >> 6);
    for w in first..=last {
        let mut mask = u64::MAX;
        if w == first {
            mask &= u64::MAX << (rows.start & 63);
        }
        if w == last {
            mask &= u64::MAX >> (63 - ((rows.end - 1) & 63));
        }
        owords[w] |= vwords[w] & mask;
    }
}

/// [`fill_map`] over a dictionary-code column with one precomputed
/// verdict per code. NULL rows may carry placeholder codes outside the
/// dictionary (snapshot loads only validate codes at valid rows), so
/// the lookup is bounds-tolerant; validity masking drops those rows
/// regardless.
#[inline]
fn fill_verdict(
    out: &mut Bitmap,
    col: ColumnSlice<'_>,
    codes: &[u32],
    verdict: &[bool],
    rows: Range<usize>,
) {
    fill_map(out, col, rows, codes, |&c| {
        verdict.get(c as usize).copied().unwrap_or(false)
    });
}

/// [`fill_map`] for `op` applied to a per-cell [`Ordering`]: the
/// operator dispatch is hoisted out of the loop so each arm is one
/// tight, branch-free comparison loop the compiler can vectorize.
#[inline]
fn fill_ord<T, F: Fn(&T) -> Ordering>(
    out: &mut Bitmap,
    col: ColumnSlice<'_>,
    rows: Range<usize>,
    data: &[T],
    op: CompareOp,
    ord: F,
) {
    use Ordering::*;
    match op {
        CompareOp::Eq => fill_map(out, col, rows, data, |v| ord(v) == Equal),
        CompareOp::Ne => fill_map(out, col, rows, data, |v| ord(v) != Equal),
        CompareOp::Lt => fill_map(out, col, rows, data, |v| ord(v) == Less),
        CompareOp::Le => fill_map(out, col, rows, data, |v| ord(v) != Greater),
        CompareOp::Gt => fill_map(out, col, rows, data, |v| ord(v) == Greater),
        CompareOp::Ge => fill_map(out, col, rows, data, |v| ord(v) != Less),
    }
}

/// `column <op> literal` with the literal's type resolved once, before
/// the loop. Does NOT special-case a NULL literal — [`filter_compare`]
/// rejects it up front, while BETWEEN bounds flow through [`cmp_int`]/
/// [`cmp_float`]'s NULL rank exactly like the row path's `Value`
/// ordering.
fn filter_compare_inner(
    out: &mut Bitmap,
    col: ColumnSlice<'_>,
    op: CompareOp,
    value: &Value,
    rows: Range<usize>,
) {
    match col.data {
        ColumnData::Int(d) => match *value {
            Value::Int(b) => fill_ord(out, col, rows, d, op, |v| v.cmp(&b)),
            Value::Float(f) => fill_ord(out, col, rows, d, op, |&v| (v as f64).total_cmp(&f)),
            ref lit => fill_const(out, col, rows, op.matches(cmp_int(0, lit))),
        },
        ColumnData::Float(d) => match *value {
            Value::Int(b) => {
                let b = b as f64;
                fill_ord(out, col, rows, d, op, move |v| v.total_cmp(&b));
            }
            Value::Float(f) => fill_ord(out, col, rows, d, op, |v| v.total_cmp(&f)),
            ref lit => fill_const(out, col, rows, op.matches(cmp_float(0.0, lit))),
        },
        ColumnData::Bool(d) => fill_map(out, col, rows, d, |&v| op.matches(cmp_bool(v, value))),
        ColumnData::Str { codes, dict } => {
            let verdict: Vec<bool> = dict
                .values()
                .iter()
                .map(|s| op.matches(cmp_str(s, value)))
                .collect();
            fill_verdict(out, col, codes, &verdict, rows);
        }
    }
}

/// Filter kernel for `column <op> literal` over `rows`, producing a
/// selection bitmap of length `len` (bits only inside `rows`).
pub fn filter_compare(
    col: ColumnSlice<'_>,
    op: CompareOp,
    value: &Value,
    rows: Range<usize>,
    len: usize,
) -> Bitmap {
    let mut out = Bitmap::new(len);
    if value.is_null() {
        return out; // comparisons against NULL never match
    }
    filter_compare_inner(&mut out, col, op, value, rows);
    out
}

/// Filter kernel for `column BETWEEN lo AND hi` (inclusive) over
/// `rows`. Numeric columns with numeric bounds fuse both edge tests
/// into one pass over the buffer; anything else (cross-type or NULL
/// bounds) falls back to two specialized compare passes (`>= lo`,
/// `<= hi`) combined wordwise. A NULL bound ranks below every non-null
/// cell in `Value`'s ordering (a NULL `lo` unbounds the range, a NULL
/// `hi` empties it) — identical to the row path's
/// `cell >= lo && cell <= hi`.
pub fn filter_between(
    col: ColumnSlice<'_>,
    lo: &Value,
    hi: &Value,
    rows: Range<usize>,
    len: usize,
) -> Bitmap {
    use Ordering::{Greater, Less};
    let mut out = Bitmap::new(len);
    match col.data {
        ColumnData::Int(d) => match (lo, hi) {
            (&Value::Int(l), &Value::Int(h)) => {
                fill_map(&mut out, col, rows, d, |&v| v >= l && v <= h);
            }
            (&Value::Int(l), &Value::Float(h)) => {
                fill_map(&mut out, col, rows, d, |&v| {
                    v >= l && (v as f64).total_cmp(&h) != Greater
                });
            }
            (&Value::Float(l), &Value::Int(h)) => {
                fill_map(&mut out, col, rows, d, |&v| {
                    (v as f64).total_cmp(&l) != Less && v <= h
                });
            }
            (&Value::Float(l), &Value::Float(h)) => {
                fill_map(&mut out, col, rows, d, |&v| {
                    let v = v as f64;
                    v.total_cmp(&l) != Less && v.total_cmp(&h) != Greater
                });
            }
            _ => between_fallback(&mut out, col, lo, hi, rows, len),
        },
        ColumnData::Float(d) => {
            let as_f64 = |v: &Value| match *v {
                Value::Int(b) => Some(b as f64),
                Value::Float(f) => Some(f),
                _ => None,
            };
            match (as_f64(lo), as_f64(hi)) {
                (Some(l), Some(h)) => {
                    fill_map(&mut out, col, rows, d, |v| {
                        v.total_cmp(&l) != Less && v.total_cmp(&h) != Greater
                    });
                }
                _ => between_fallback(&mut out, col, lo, hi, rows, len),
            }
        }
        ColumnData::Bool(d) => {
            fill_map(&mut out, col, rows, d, |&v| {
                cmp_bool(v, lo) != Less && cmp_bool(v, hi) != Greater
            });
        }
        ColumnData::Str { codes, dict } => {
            let verdict: Vec<bool> = dict
                .values()
                .iter()
                .map(|s| cmp_str(s, lo) != Less && cmp_str(s, hi) != Greater)
                .collect();
            fill_verdict(&mut out, col, codes, &verdict, rows);
        }
    }
    out
}

/// The general BETWEEN path: `>= lo` and `<= hi` as two compare
/// passes, ANDed wordwise.
fn between_fallback(
    out: &mut Bitmap,
    col: ColumnSlice<'_>,
    lo: &Value,
    hi: &Value,
    rows: Range<usize>,
    len: usize,
) {
    filter_compare_inner(out, col, CompareOp::Ge, lo, rows.clone());
    let mut upper = Bitmap::new(len);
    filter_compare_inner(&mut upper, col, CompareOp::Le, hi, rows);
    out.and_assign(&upper);
}

/// Filter kernel for `column IN (set)` over `rows`. String columns get
/// a per-dictionary-code membership verdict; numeric columns probe the
/// set with a stack-allocated `Value` (cross-type `Int == Float`
/// equality comes from `Value`'s own ordering).
pub fn filter_in_set(
    col: ColumnSlice<'_>,
    values: &BTreeSet<Value>,
    rows: Range<usize>,
    len: usize,
) -> Bitmap {
    let mut out = Bitmap::new(len);
    match col.data {
        ColumnData::Int(d) => {
            fill_map(&mut out, col, rows, d, |&v| values.contains(&Value::Int(v)));
        }
        ColumnData::Float(d) => fill_map(&mut out, col, rows, d, |&v| {
            values.contains(&Value::Float(v))
        }),
        ColumnData::Bool(d) => fill_map(&mut out, col, rows, d, |&v| {
            values.contains(&Value::Bool(v))
        }),
        ColumnData::Str { codes, dict } => {
            let verdict: Vec<bool> = dict
                .values()
                .iter()
                .map(|s| values.contains(&Value::Text(s.clone())))
                .collect();
            fill_verdict(&mut out, col, codes, &verdict, rows);
        }
    }
    out
}

/// Filter kernel for `column IS NULL` over `rows`: the complemented
/// validity words, masked to the row range.
pub fn filter_is_null(col: ColumnSlice<'_>, rows: Range<usize>, len: usize) -> Bitmap {
    let mut out = Bitmap::new(len);
    if rows.start >= rows.end {
        return out;
    }
    debug_assert!(rows.end <= col.validity.len() && rows.end <= len);
    let vwords = col.validity.words();
    let owords = out.words_mut();
    let (first, last) = (rows.start >> 6, (rows.end - 1) >> 6);
    for w in first..=last {
        let mut mask = u64::MAX;
        if w == first {
            mask &= u64::MAX << (rows.start & 63);
        }
        if w == last {
            mask &= u64::MAX >> (63 - ((rows.end - 1) & 63));
        }
        owords[w] |= !vwords[w] & mask;
    }
    out
}

/// Evaluate a bound predicate over `rows`, returning a selection
/// bitmap of length `len`. `columns[i]` must be the slice for bound
/// column index `i`. Selection semantics are identical to filtering
/// rows through [`BoundPredicate::matches`].
pub fn eval_predicate(
    pred: &BoundPredicate,
    columns: &[ColumnSlice<'_>],
    rows: Range<usize>,
    len: usize,
) -> Bitmap {
    match pred {
        BoundPredicate::True => {
            let mut out = Bitmap::new(len);
            out.set_range(rows.start, rows.end);
            out
        }
        BoundPredicate::Compare { column, op, value } => {
            filter_compare(columns[*column], *op, value, rows, len)
        }
        BoundPredicate::Between { column, lo, hi } => {
            filter_between(columns[*column], lo, hi, rows, len)
        }
        BoundPredicate::InSet { column, values } => {
            filter_in_set(columns[*column], values, rows, len)
        }
        BoundPredicate::IsNull { column } => filter_is_null(columns[*column], rows, len),
        BoundPredicate::And(ps) => {
            let mut out = Bitmap::new(len);
            out.set_range(rows.start, rows.end);
            for p in ps {
                let part = eval_predicate(p, columns, rows.clone(), len);
                out.and_assign(&part);
            }
            out
        }
        BoundPredicate::Or(ps) => {
            let mut out = Bitmap::new(len);
            for p in ps {
                let part = eval_predicate(p, columns, rows.clone(), len);
                out.or_assign(&part);
            }
            out
        }
        BoundPredicate::Not(p) => {
            let mut out = eval_predicate(p, columns, rows.clone(), len);
            let mut domain = Bitmap::new(len);
            domain.set_range(rows.start, rows.end);
            out.complement_within(&domain);
            out
        }
    }
}

/// Count of selected rows.
pub fn count(selection: &Bitmap) -> usize {
    selection.count_ones()
}

/// Visit every selected AND valid row index in ascending order,
/// merging the two bitmaps a word at a time.
#[inline]
fn for_each_selected_valid<F: FnMut(usize)>(selection: &Bitmap, validity: &Bitmap, mut f: F) {
    debug_assert_eq!(selection.len(), validity.len());
    for (wi, (&s, &v)) in selection.words().iter().zip(validity.words()).enumerate() {
        let mut w = s & v;
        while w != 0 {
            f((wi << 6) + w.trailing_zeros() as usize);
            w &= w - 1;
        }
    }
}

/// Sum of the numeric view (`Int` widened to `f64`) over selected,
/// valid rows, accumulated in ascending row order so float rounding
/// matches a row-order scan. Non-numeric columns contribute nothing.
pub fn sum_f64(col: ColumnSlice<'_>, selection: &Bitmap) -> f64 {
    let mut sum = 0.0;
    match col.data {
        ColumnData::Int(d) => {
            for_each_selected_valid(selection, col.validity, |i| sum += d[i] as f64);
        }
        ColumnData::Float(d) => for_each_selected_valid(selection, col.validity, |i| sum += d[i]),
        ColumnData::Bool(_) | ColumnData::Str { .. } => {}
    }
    sum
}

/// Minimum value over selected, valid rows (`Value` ordering; `None`
/// when nothing valid is selected).
pub fn min_value(col: ColumnSlice<'_>, selection: &Bitmap) -> Option<Value> {
    fold_extreme(col, selection, Ordering::Less)
}

/// Maximum value over selected, valid rows (`Value` ordering; `None`
/// when nothing valid is selected).
pub fn max_value(col: ColumnSlice<'_>, selection: &Bitmap) -> Option<Value> {
    fold_extreme(col, selection, Ordering::Greater)
}

fn fold_extreme(col: ColumnSlice<'_>, selection: &Bitmap, keep: Ordering) -> Option<Value> {
    match col.data {
        ColumnData::Int(d) => {
            let mut best: Option<i64> = None;
            for_each_selected_valid(selection, col.validity, |i| {
                best = Some(best.map_or(d[i], |b| if d[i].cmp(&b) == keep { d[i] } else { b }));
            });
            best.map(Value::Int)
        }
        ColumnData::Float(d) => {
            let mut best: Option<f64> = None;
            for_each_selected_valid(selection, col.validity, |i| {
                best =
                    Some(best.map_or(d[i], |b| if d[i].total_cmp(&b) == keep { d[i] } else { b }));
            });
            best.map(Value::Float)
        }
        ColumnData::Bool(_) | ColumnData::Str { .. } => {
            let mut best: Option<Value> = None;
            for i in selection.iter_ones() {
                let v = col.value_at(i);
                if v.is_null() {
                    continue;
                }
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        if v.cmp(&b) == keep {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            best
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::Segment;
    use crate::value::ValueType;

    fn int_col(vals: &[Option<i64>]) -> Segment {
        let mut s = Segment::new(ValueType::Int).unwrap();
        for v in vals {
            s.push_value(&v.map_or(Value::Null, Value::Int)).unwrap();
        }
        s
    }

    #[test]
    fn compare_matches_row_semantics() {
        let seg = int_col(&[Some(1), None, Some(5), Some(-2), Some(5)]);
        let sel = filter_compare(seg.slice(), CompareOp::Ge, &Value::Int(1), 0..5, 5);
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![0, 2, 4]);
        // NULL literal matches nothing, even with Ne.
        let sel = filter_compare(seg.slice(), CompareOp::Ne, &Value::Null, 0..5, 5);
        assert_eq!(sel.count_ones(), 0);
        // Cross-type: Int cells vs Float literal widen.
        let sel = filter_compare(seg.slice(), CompareOp::Lt, &Value::Float(1.5), 0..5, 5);
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![0, 3]);
        // Cross-type-rank: every Int sorts below any Text.
        let sel = filter_compare(seg.slice(), CompareOp::Lt, &Value::from("z"), 0..5, 5);
        assert_eq!(sel.count_ones(), 4); // all non-null rows
    }

    #[test]
    fn range_restricts_rows() {
        let seg = int_col(&[Some(1), Some(2), Some(3), Some(4)]);
        let sel = filter_compare(seg.slice(), CompareOp::Ge, &Value::Int(0), 1..3, 4);
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn between_and_in_set() {
        let seg = int_col(&[Some(1), Some(5), None, Some(9)]);
        let sel = filter_between(seg.slice(), &Value::Int(2), &Value::Float(9.0), 0..4, 4);
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![1, 3]);
        let set: BTreeSet<Value> = [Value::Float(5.0), Value::Int(9)].into_iter().collect();
        let sel = filter_in_set(seg.slice(), &set, 0..4, 4);
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn string_kernels_use_dictionary_verdicts() {
        let mut seg = Segment::new(ValueType::Text).unwrap();
        for v in [Some("b"), Some("a"), None, Some("c"), Some("a")] {
            seg.push_value(&v.map_or(Value::Null, Value::from)).unwrap();
        }
        let sel = filter_compare(seg.slice(), CompareOp::Le, &Value::from("b"), 0..5, 5);
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![0, 1, 4]);
        let set: BTreeSet<Value> = [Value::from("a"), Value::from("z")].into_iter().collect();
        let sel = filter_in_set(seg.slice(), &set, 0..5, 5);
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![1, 4]);
        let sel = filter_is_null(seg.slice(), 0..5, 5);
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn boolean_composition_and_not_domain() {
        let seg = int_col(&[Some(1), Some(2), Some(3), None, Some(5)]);
        let cols = [seg.slice()];
        let pred = BoundPredicate::Not(Box::new(BoundPredicate::Compare {
            column: 0,
            op: CompareOp::Lt,
            value: Value::Int(3),
        }));
        // NOT over rows 0..5: NULL row fails the comparison, so NOT
        // matches it — exactly the row path's two-valued collapse.
        let sel = eval_predicate(&pred, &cols, 0..5, 5);
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![2, 3, 4]);
        // ...but never outside the evaluated range.
        let sel = eval_predicate(&pred, &cols, 1..4, 5);
        assert_eq!(sel.iter_ones().collect::<Vec<_>>(), vec![2, 3]);
        let both = BoundPredicate::And(vec![
            BoundPredicate::Compare {
                column: 0,
                op: CompareOp::Gt,
                value: Value::Int(1),
            },
            BoundPredicate::Or(vec![BoundPredicate::IsNull { column: 0 }]),
        ]);
        assert_eq!(eval_predicate(&both, &cols, 0..5, 5).count_ones(), 0);
    }

    #[test]
    fn aggregates() {
        let seg = int_col(&[Some(1), Some(2), None, Some(4)]);
        let mut sel = Bitmap::new(4);
        sel.set_range(0, 4);
        assert_eq!(count(&sel), 4);
        assert_eq!(sum_f64(seg.slice(), &sel), 7.0);
        assert_eq!(min_value(seg.slice(), &sel), Some(Value::Int(1)));
        assert_eq!(max_value(seg.slice(), &sel), Some(Value::Int(4)));
        let empty = Bitmap::new(4);
        assert_eq!(min_value(seg.slice(), &empty), None);
        let mut only_null = Bitmap::new(4);
        only_null.set(2);
        assert_eq!(max_value(seg.slice(), &only_null), None);
        assert_eq!(sum_f64(seg.slice(), &only_null), 0.0);
    }
}
