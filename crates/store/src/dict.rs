//! Dictionary encoding for low-cardinality string columns.
//!
//! Predicate columns like `source` and `activity_type` hold a handful
//! of distinct strings repeated across millions of rows. A
//! [`Dictionary`] interns each distinct string once and the segment
//! stores one `u32` code per row, so equality and set-membership
//! kernels compare integers (or pre-computed per-code verdicts)
//! instead of walking bytes.

use rustc_hash::FxHashMap;

/// An append-only intern table mapping strings to dense `u32` codes.
///
/// Codes are assigned in first-intern order and never change, so a
/// segment's code vector stays valid as new values arrive.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dictionary {
    values: Vec<String>,
    map: FxHashMap<String, u32>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Rebuild a dictionary from a code-ordered value list (snapshot
    /// loading). Duplicate values would make codes ambiguous.
    pub fn from_values(values: Vec<String>) -> crate::Result<Dictionary> {
        let mut map = FxHashMap::default();
        for (code, v) in values.iter().enumerate() {
            if map.insert(v.clone(), code as u32).is_some() {
                return Err(crate::StoreError::Columnar(format!(
                    "duplicate dictionary value {v:?}"
                )));
            }
        }
        Ok(Dictionary { values, map })
    }

    /// Intern `s`, returning its code (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.map.get(s) {
            return code;
        }
        let code = self.values.len() as u32;
        self.values.push(s.to_owned());
        self.map.insert(s.to_owned(), code);
        code
    }

    /// The code for `s`, if it has been interned.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.map.get(s).copied()
    }

    /// The string for `code`.
    pub fn value_of(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All interned strings in code order.
    pub fn values(&self) -> &[String] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        assert!(d.is_empty());
        let a = d.intern("assay-a");
        let b = d.intern("assay-b");
        assert_eq!(d.intern("assay-a"), a);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
        assert_eq!(d.code_of("assay-b"), Some(b));
        assert_eq!(d.code_of("assay-c"), None);
        assert_eq!(d.value_of(a), Some("assay-a"));
        assert_eq!(d.value_of(99), None);
        assert_eq!(d.values(), &["assay-a".to_owned(), "assay-b".to_owned()]);
    }
}
