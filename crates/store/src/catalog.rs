//! A named collection of tables.

use crate::table::Table;
use crate::{Result, StoreError};
use rustc_hash::FxHashMap;

/// The store's top-level namespace.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: FxHashMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table; the table's own name is used as the key.
    pub fn create_table(&mut self, table: Table) -> Result<()> {
        let name = table.name().to_string();
        if self.tables.contains_key(&name) {
            return Err(StoreError::DuplicateTable(name));
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Borrow a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| StoreError::UnknownTable(name.to_string()))
    }

    /// Mutably borrow a table.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StoreError::UnknownTable(name.to_string()))
    }

    /// Drop a table, returning it.
    pub fn drop_table(&mut self, name: &str) -> Result<Table> {
        self.tables
            .remove(name)
            .ok_or_else(|| StoreError::UnknownTable(name.to_string()))
    }

    /// Table names in sorted order.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterate over tables (unordered).
    pub fn iter(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::ValueType;

    fn table(name: &str) -> Table {
        Table::new(
            name,
            Schema::new(vec![Column::required("id", ValueType::Int)]),
        )
    }

    #[test]
    fn create_lookup_drop() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.create_table(table("proteins")).unwrap();
        c.create_table(table("ligands")).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.table_names(), vec!["ligands", "proteins"]);
        assert!(c.table("proteins").is_ok());
        assert!(c.table("nope").is_err());
        assert!(c.table_mut("ligands").is_ok());

        assert!(matches!(
            c.create_table(table("proteins")),
            Err(StoreError::DuplicateTable(_))
        ));

        let dropped = c.drop_table("proteins").unwrap();
        assert_eq!(dropped.name(), "proteins");
        assert!(c.drop_table("proteins").is_err());
        assert_eq!(c.len(), 1);
    }
}
