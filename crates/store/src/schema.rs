//! Column and table schemas.

use crate::value::{Value, ValueType};
use crate::{Result, StoreError};
use serde::{Deserialize, Serialize};

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (unique within the schema).
    pub name: String,
    /// Cell type.
    pub ty: ValueType,
    /// Whether NULL cells are accepted.
    pub nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn required(name: impl Into<String>, ty: ValueType) -> Column {
        Column {
            name: name.into(),
            ty,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, ty: ValueType) -> Column {
        Column {
            name: name.into(),
            ty,
            nullable: true,
        }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema; panics on duplicate column names (a programming
    /// error, caught at table-definition time).
    pub fn new(columns: Vec<Column>) -> Schema {
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].iter().any(|other| other.name == c.name),
                "duplicate column name {:?}",
                c.name
            );
        }
        Schema { columns }
    }

    /// Columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StoreError::UnknownColumn(name.to_string()))
    }

    /// Borrow a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.column_index(name)?])
    }

    /// Validate a row against the schema (arity, types, nullability).
    pub fn validate_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(StoreError::ArityMismatch {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for (cell, col) in row.iter().zip(&self.columns) {
            if cell.is_null() {
                if !col.nullable {
                    return Err(StoreError::NullViolation(col.name.clone()));
                }
                continue;
            }
            let got = cell.value_type();
            // Ints are accepted in Float columns (common numeric
            // widening); everything else must match exactly.
            let compatible = got == col.ty || (col.ty == ValueType::Float && got == ValueType::Int);
            if !compatible {
                return Err(StoreError::TypeMismatch {
                    column: col.name.clone(),
                    expected: col.ty,
                    got,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::required("id", ValueType::Int),
            Column::required("name", ValueType::Text),
            Column::nullable("mw", ValueType::Float),
        ])
    }

    #[test]
    fn lookup() {
        let s = schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.column_index("mw").unwrap(), 2);
        assert!(matches!(
            s.column_index("zz"),
            Err(StoreError::UnknownColumn(_))
        ));
        assert_eq!(s.column("name").unwrap().ty, ValueType::Text);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        Schema::new(vec![
            Column::required("x", ValueType::Int),
            Column::required("x", ValueType::Text),
        ]);
    }

    #[test]
    fn validation() {
        let s = schema();
        assert!(s
            .validate_row(&[Value::Int(1), Value::from("a"), Value::Float(2.0)])
            .is_ok());
        // NULL allowed only in nullable column.
        assert!(s
            .validate_row(&[Value::Int(1), Value::from("a"), Value::Null])
            .is_ok());
        assert!(matches!(
            s.validate_row(&[Value::Null, Value::from("a"), Value::Null]),
            Err(StoreError::NullViolation(_))
        ));
        // Arity.
        assert!(matches!(
            s.validate_row(&[Value::Int(1)]),
            Err(StoreError::ArityMismatch {
                expected: 3,
                got: 1
            })
        ));
        // Type.
        assert!(matches!(
            s.validate_row(&[Value::from("x"), Value::from("a"), Value::Null]),
            Err(StoreError::TypeMismatch { .. })
        ));
        // Int widens into Float column.
        assert!(s
            .validate_row(&[Value::Int(1), Value::from("a"), Value::Int(3)])
            .is_ok());
        // But not the reverse.
        assert!(matches!(
            s.validate_row(&[Value::Float(1.0), Value::from("a"), Value::Null]),
            Err(StoreError::TypeMismatch { .. })
        ));
    }
}
