//! Row tables with secondary indexes.

use crate::expr::BoundPredicate;
use crate::schema::Schema;
use crate::value::Value;
use crate::{Result, StoreError};
use rustc_hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Bound;

/// Identifier of a row within one table. Stable across deletes
/// (deleted ids are never reused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RowId(pub u64);

/// Secondary index flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IndexKind {
    /// Equality-only hash index.
    Hash,
    /// Ordered B-tree index: equality + range scans.
    BTree,
}

#[derive(Debug, Clone)]
enum IndexData {
    Hash(FxHashMap<Value, Vec<RowId>>),
    BTree(BTreeMap<Value, Vec<RowId>>),
}

#[derive(Debug, Clone)]
struct SecondaryIndex {
    column: usize,
    kind: IndexKind,
    data: IndexData,
}

impl SecondaryIndex {
    fn new(column: usize, kind: IndexKind) -> SecondaryIndex {
        let data = match kind {
            IndexKind::Hash => IndexData::Hash(FxHashMap::default()),
            IndexKind::BTree => IndexData::BTree(BTreeMap::new()),
        };
        SecondaryIndex { column, kind, data }
    }

    fn insert(&mut self, key: Value, id: RowId) {
        match &mut self.data {
            IndexData::Hash(m) => m.entry(key).or_default().push(id),
            IndexData::BTree(m) => m.entry(key).or_default().push(id),
        }
    }

    fn remove(&mut self, key: &Value, id: RowId) {
        let bucket = match &mut self.data {
            IndexData::Hash(m) => m.get_mut(key),
            IndexData::BTree(m) => m.get_mut(key),
        };
        if let Some(bucket) = bucket {
            bucket.retain(|&r| r != id);
        }
    }

    fn lookup(&self, key: &Value) -> &[RowId] {
        let bucket = match &self.data {
            IndexData::Hash(m) => m.get(key),
            IndexData::BTree(m) => m.get(key),
        };
        bucket.map_or(&[], Vec::as_slice)
    }
}

/// A named row table with optional secondary indexes.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    /// Row storage; `None` marks a deleted row (tombstone).
    rows: Vec<Option<Vec<Value>>>,
    live_rows: usize,
    indexes: Vec<SecondaryIndex>,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            live_rows: 0,
            indexes: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live_rows
    }

    /// True when the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live_rows == 0
    }

    /// Insert a validated row, maintaining all indexes.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<RowId> {
        self.schema.validate_row(&row)?;
        let id = RowId(self.rows.len() as u64);
        for idx in &mut self.indexes {
            idx.insert(row[idx.column].clone(), id);
        }
        self.rows.push(Some(row));
        self.live_rows += 1;
        Ok(id)
    }

    /// Fetch a row by id.
    pub fn get(&self, id: RowId) -> Result<&[Value]> {
        self.rows
            .get(id.0 as usize)
            .and_then(|r| r.as_deref())
            .ok_or(StoreError::UnknownRow(id.0))
    }

    /// Delete a row by id (tombstoned; the id is never reused).
    pub fn delete(&mut self, id: RowId) -> Result<()> {
        let slot = self
            .rows
            .get_mut(id.0 as usize)
            .ok_or(StoreError::UnknownRow(id.0))?;
        let row = slot.take().ok_or(StoreError::UnknownRow(id.0))?;
        for idx in &mut self.indexes {
            idx.remove(&row[idx.column], id);
        }
        self.live_rows -= 1;
        Ok(())
    }

    /// Replace a row in place, maintaining indexes.
    pub fn update(&mut self, id: RowId, new_row: Vec<Value>) -> Result<()> {
        self.schema.validate_row(&new_row)?;
        let slot = self
            .rows
            .get_mut(id.0 as usize)
            .ok_or(StoreError::UnknownRow(id.0))?;
        let old = slot.as_ref().ok_or(StoreError::UnknownRow(id.0))?.clone();
        for idx in &mut self.indexes {
            if old[idx.column] != new_row[idx.column] {
                idx.remove(&old[idx.column], id);
                idx.insert(new_row[idx.column].clone(), id);
            }
        }
        *slot = Some(new_row);
        Ok(())
    }

    /// Iterate over all live rows.
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &[Value])> + '_ {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_deref().map(|row| (RowId(i as u64), row)))
    }

    /// Full-scan selection with a bound predicate. Lazy: no
    /// intermediate `Vec<RowId>` is materialized; callers that need
    /// one can `collect()`.
    pub fn select<'a>(&'a self, pred: &'a BoundPredicate) -> impl Iterator<Item = RowId> + 'a {
        self.scan()
            .filter(move |(_, row)| pred.matches(row))
            .map(|(id, _)| id)
    }

    /// Create a secondary index over a column; backfills existing rows.
    pub fn create_index(&mut self, column: &str, kind: IndexKind) -> Result<()> {
        let col = self.schema.column_index(column)?;
        if self
            .indexes
            .iter()
            .any(|i| i.column == col && i.kind == kind)
        {
            return Err(StoreError::Index(format!(
                "{kind:?} index on {column:?} already exists"
            )));
        }
        let mut index = SecondaryIndex::new(col, kind);
        for (id, row) in self.scan() {
            index.insert(row[col].clone(), id);
        }
        self.indexes.push(index);
        Ok(())
    }

    /// True when any index covers the column.
    pub fn has_index(&self, column: &str) -> bool {
        self.schema
            .column_index(column)
            .is_ok_and(|c| self.indexes.iter().any(|i| i.column == c))
    }

    /// True when an ordered index covers the column.
    pub fn has_range_index(&self, column: &str) -> bool {
        self.schema.column_index(column).is_ok_and(|c| {
            self.indexes
                .iter()
                .any(|i| i.column == c && i.kind == IndexKind::BTree)
        })
    }

    /// Equality lookup via the best available index; falls back to a
    /// full scan when the column is unindexed.
    pub fn lookup_eq(&self, column: &str, key: &Value) -> Result<Vec<RowId>> {
        let col = self.schema.column_index(column)?;
        if let Some(index) = self.indexes.iter().find(|i| i.column == col) {
            return Ok(index.lookup(key).to_vec());
        }
        Ok(self
            .scan()
            .filter(|(_, row)| &row[col] == key)
            .map(|(id, _)| id)
            .collect())
    }

    /// Inclusive range scan via a B-tree index; falls back to a full
    /// scan when no ordered index exists. Lazy: ids stream straight
    /// out of the index buckets (or the scan) with no intermediate
    /// `Vec<RowId>`.
    pub fn lookup_range<'a>(
        &'a self,
        column: &str,
        lo: Bound<&'a Value>,
        hi: Bound<&'a Value>,
    ) -> Result<impl Iterator<Item = RowId> + 'a> {
        let col = self.schema.column_index(column)?;
        let btree = self
            .indexes
            .iter()
            .find_map(|i| match (&i.data, i.column == col) {
                (IndexData::BTree(m), true) => Some(m),
                _ => None,
            });
        Ok(match btree {
            Some(m) => EitherIter::Index(
                m.range::<Value, _>((lo, hi))
                    .flat_map(|(_, ids)| ids.iter().copied()),
            ),
            None => {
                let in_range = move |v: &Value| {
                    let lo_ok = match lo {
                        Bound::Included(b) => v >= b,
                        Bound::Excluded(b) => v > b,
                        Bound::Unbounded => true,
                    };
                    let hi_ok = match hi {
                        Bound::Included(b) => v <= b,
                        Bound::Excluded(b) => v < b,
                        Bound::Unbounded => true,
                    };
                    lo_ok && hi_ok && !v.is_null()
                };
                EitherIter::Scan(
                    self.scan()
                        .filter(move |(_, row)| in_range(&row[col]))
                        .map(|(id, _)| id),
                )
            }
        })
    }

    /// Snapshot view of (schema, live rows, index definitions) used by
    /// [`crate::snapshot`].
    pub(crate) fn to_snapshot(&self) -> TableSnapshot {
        TableSnapshot {
            name: self.name.clone(),
            schema: self.schema.clone(),
            rows: self.scan().map(|(_, r)| r.to_vec()).collect(),
            indexes: self.indexes.iter().map(|i| (i.column, i.kind)).collect(),
        }
    }

    /// Rebuild a table from a snapshot (row ids are re-densified).
    pub(crate) fn from_snapshot(snap: TableSnapshot) -> Result<Table> {
        let mut table = Table::new(snap.name, snap.schema);
        for (column, kind) in snap.indexes {
            let name = table.schema.columns()[column].name.clone();
            table.create_index(&name, kind)?;
        }
        for row in snap.rows {
            table.insert(row)?;
        }
        Ok(table)
    }
}

/// Two-armed iterator so [`Table::lookup_range`] can stream from
/// either the B-tree buckets or the fallback scan without boxing.
enum EitherIter<L, R> {
    Index(L),
    Scan(R),
}

impl<L, R, T> Iterator for EitherIter<L, R>
where
    L: Iterator<Item = T>,
    R: Iterator<Item = T>,
{
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match self {
            EitherIter::Index(it) => it.next(),
            EitherIter::Scan(it) => it.next(),
        }
    }
}

/// Serializable table state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct TableSnapshot {
    pub(crate) name: String,
    pub(crate) schema: Schema,
    pub(crate) rows: Vec<Vec<Value>>,
    pub(crate) indexes: Vec<(usize, IndexKind)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CompareOp, Predicate};
    use crate::schema::Column;
    use crate::value::ValueType;

    fn ligand_table() -> Table {
        let schema = Schema::new(vec![
            Column::required("id", ValueType::Int),
            Column::required("name", ValueType::Text),
            Column::required("mw", ValueType::Float),
        ]);
        let mut t = Table::new("ligand", schema);
        for (id, name, mw) in [
            (1, "aspirin", 180.2),
            (2, "caffeine", 194.2),
            (3, "ibuprofen", 206.3),
        ] {
            t.insert(vec![Value::Int(id), Value::from(name), Value::Float(mw)])
                .unwrap();
        }
        t
    }

    #[test]
    fn insert_get_len() {
        let t = ligand_table();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(RowId(1)).unwrap()[1], Value::from("caffeine"));
        assert!(t.get(RowId(9)).is_err());
    }

    #[test]
    fn insert_validates() {
        let mut t = ligand_table();
        assert!(t.insert(vec![Value::Int(4)]).is_err());
        assert!(t
            .insert(vec![Value::from("x"), Value::from("y"), Value::Float(1.0)])
            .is_err());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn delete_tombstones() {
        let mut t = ligand_table();
        t.delete(RowId(1)).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.get(RowId(1)).is_err());
        assert!(t.delete(RowId(1)).is_err(), "double delete");
        // Remaining rows still reachable; new inserts get fresh ids.
        let id = t
            .insert(vec![
                Value::Int(4),
                Value::from("naproxen"),
                Value::Float(230.3),
            ])
            .unwrap();
        assert_eq!(id, RowId(3));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn update_rewrites_row_and_indexes() {
        let mut t = ligand_table();
        t.create_index("name", IndexKind::Hash).unwrap();
        t.update(
            RowId(0),
            vec![
                Value::Int(1),
                Value::from("acetylsalicylic acid"),
                Value::Float(180.2),
            ],
        )
        .unwrap();
        assert!(t
            .lookup_eq("name", &Value::from("aspirin"))
            .unwrap()
            .is_empty());
        assert_eq!(
            t.lookup_eq("name", &Value::from("acetylsalicylic acid"))
                .unwrap(),
            vec![RowId(0)]
        );
    }

    #[test]
    fn select_with_predicate() {
        let t = ligand_table();
        let pred = Predicate::cmp("mw", CompareOp::Gt, 190.0)
            .bind(t.schema())
            .unwrap();
        let ids: Vec<RowId> = t.select(&pred).collect();
        assert_eq!(ids, vec![RowId(1), RowId(2)]);
    }

    #[test]
    fn hash_index_lookup() {
        let mut t = ligand_table();
        t.create_index("name", IndexKind::Hash).unwrap();
        assert!(t.has_index("name"));
        assert!(!t.has_range_index("name"));
        assert_eq!(
            t.lookup_eq("name", &Value::from("caffeine")).unwrap(),
            vec![RowId(1)]
        );
        assert!(t
            .lookup_eq("name", &Value::from("nope"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn btree_index_range() {
        let mut t = ligand_table();
        t.create_index("mw", IndexKind::BTree).unwrap();
        assert!(t.has_range_index("mw"));
        let lo = Value::Float(190.0);
        let hi = Value::Float(200.0);
        let ids: Vec<RowId> = t
            .lookup_range("mw", Bound::Included(&lo), Bound::Included(&hi))
            .unwrap()
            .collect();
        assert_eq!(ids, vec![RowId(1)]);
        // Unbounded below.
        let ids: Vec<RowId> = t
            .lookup_range("mw", Bound::Unbounded, Bound::Excluded(&lo))
            .unwrap()
            .collect();
        assert_eq!(ids, vec![RowId(0)]);
    }

    #[test]
    fn range_without_index_falls_back_to_scan() {
        let t = ligand_table();
        let lo = Value::Float(190.0);
        assert_eq!(
            t.lookup_range("mw", Bound::Included(&lo), Bound::Unbounded)
                .unwrap()
                .count(),
            2
        );
    }

    #[test]
    fn eq_without_index_falls_back_to_scan() {
        let t = ligand_table();
        assert_eq!(t.lookup_eq("id", &Value::Int(3)).unwrap(), vec![RowId(2)]);
    }

    #[test]
    fn index_backfill_and_maintenance() {
        let mut t = ligand_table();
        t.create_index("mw", IndexKind::BTree).unwrap();
        // Backfilled:
        assert_eq!(
            t.lookup_eq("mw", &Value::Float(194.2)).unwrap(),
            vec![RowId(1)]
        );
        // Maintained on insert:
        t.insert(vec![Value::Int(4), Value::from("x"), Value::Float(194.2)])
            .unwrap();
        assert_eq!(t.lookup_eq("mw", &Value::Float(194.2)).unwrap().len(), 2);
        // Maintained on delete:
        t.delete(RowId(1)).unwrap();
        assert_eq!(
            t.lookup_eq("mw", &Value::Float(194.2)).unwrap(),
            vec![RowId(3)]
        );
        // Duplicate index rejected:
        assert!(t.create_index("mw", IndexKind::BTree).is_err());
        // But a different kind on the same column is fine:
        assert!(t.create_index("mw", IndexKind::Hash).is_ok());
    }

    #[test]
    fn index_and_scan_agree() {
        let mut t = ligand_table();
        t.create_index("mw", IndexKind::BTree).unwrap();
        for probe in [180.2, 194.2, 206.3, 999.0] {
            let key = Value::Float(probe);
            let mut via_index = t.lookup_eq("mw", &key).unwrap();
            let mut via_scan: Vec<RowId> = t
                .scan()
                .filter(|(_, r)| r[2] == key)
                .map(|(id, _)| id)
                .collect();
            via_index.sort();
            via_scan.sort();
            assert_eq!(via_index, via_scan, "probe {probe}");
        }
    }
}
