//! JSON snapshot persistence for catalogs.
//!
//! DrugTree's mediator warms its local store from sources once, then
//! snapshots it so later sessions (and the benchmark harness) can skip
//! the integration pass.

use crate::catalog::Catalog;
use crate::table::{Table, TableSnapshot};
use crate::{Result, StoreError};
use serde::{Deserialize, Serialize};

/// Serializable catalog state.
#[derive(Debug, Serialize, Deserialize)]
struct CatalogSnapshot {
    /// Format version for forward compatibility.
    version: u32,
    tables: Vec<TableSnapshot>,
}

const SNAPSHOT_VERSION: u32 = 1;

/// Serialize a catalog to a JSON string.
pub fn save_catalog(catalog: &Catalog) -> Result<String> {
    let mut tables: Vec<TableSnapshot> = catalog.iter().map(Table::to_snapshot).collect();
    // Deterministic output regardless of hash-map order.
    tables.sort_by(|a, b| a.name.cmp(&b.name));
    serde_json::to_string(&CatalogSnapshot {
        version: SNAPSHOT_VERSION,
        tables,
    })
    .map_err(|e| StoreError::Snapshot(e.to_string()))
}

/// Restore a catalog from a JSON string produced by [`save_catalog`].
pub fn load_catalog(json: &str) -> Result<Catalog> {
    let snap: CatalogSnapshot =
        serde_json::from_str(json).map_err(|e| StoreError::Snapshot(e.to_string()))?;
    if snap.version != SNAPSHOT_VERSION {
        return Err(StoreError::Snapshot(format!(
            "unsupported snapshot version {} (expected {SNAPSHOT_VERSION})",
            snap.version
        )));
    }
    let mut catalog = Catalog::new();
    for table_snap in snap.tables {
        catalog.create_table(Table::from_snapshot(table_snap)?)?;
    }
    Ok(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::table::IndexKind;
    use crate::value::{Value, ValueType};

    fn sample_catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![
            Column::required("id", ValueType::Int),
            Column::nullable("name", ValueType::Text),
        ]);
        let mut t = Table::new("ligand", schema);
        t.create_index("id", IndexKind::BTree).unwrap();
        t.insert(vec![Value::Int(1), Value::from("aspirin")])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::Null]).unwrap();
        c.create_table(t).unwrap();
        c.create_table(Table::new(
            "empty",
            Schema::new(vec![Column::required("x", ValueType::Float)]),
        ))
        .unwrap();
        c
    }

    #[test]
    fn roundtrip() {
        let c = sample_catalog();
        let json = save_catalog(&c).unwrap();
        let back = load_catalog(&json).unwrap();
        assert_eq!(back.table_names(), vec!["empty", "ligand"]);
        let t = back.table("ligand").unwrap();
        assert_eq!(t.len(), 2);
        // Index definitions survive and are functional.
        assert!(t.has_range_index("id"));
        assert_eq!(t.lookup_eq("id", &Value::Int(2)).unwrap().len(), 1);
        // Null cells survive.
        let null_rows: Vec<_> = t.scan().filter(|(_, r)| r[1].is_null()).collect();
        assert_eq!(null_rows.len(), 1);
    }

    #[test]
    fn deterministic_output() {
        let a = save_catalog(&sample_catalog()).unwrap();
        let b = save_catalog(&sample_catalog()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn version_check() {
        let json = save_catalog(&sample_catalog())
            .unwrap()
            .replace("\"version\":1", "\"version\":99");
        assert!(matches!(load_catalog(&json), Err(StoreError::Snapshot(_))));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(matches!(
            load_catalog("{not json"),
            Err(StoreError::Snapshot(_))
        ));
    }

    #[test]
    fn tombstones_compact_on_save() {
        let mut c = sample_catalog();
        let t = c.table_mut("ligand").unwrap();
        let id = t.insert(vec![Value::Int(3), Value::from("x")]).unwrap();
        t.delete(id).unwrap();
        let json = save_catalog(&c).unwrap();
        let back = load_catalog(&json).unwrap();
        assert_eq!(back.table("ligand").unwrap().len(), 2);
    }
}
