//! Dynamically-typed cell values with a total order.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// The type of a [`Value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ValueType {
    Null,
    Bool,
    Int,
    Float,
    Text,
}

/// One table cell.
///
/// `Float` cells are ordered with `f64::total_cmp`, so `Value` has a
/// total order and can key B-tree indexes. NaNs are representable but
/// sort after all other floats; inserting them is discouraged.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float (totally ordered via `total_cmp`).
    Float(f64),
    /// UTF-8 text.
    Text(String),
}

impl Value {
    /// The value's type tag.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Null => ValueType::Null,
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Text(_) => ValueType::Text,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer view (exact `Int` only).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Numeric view: `Int` widened to `f64`, `Float` as-is.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Bool view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Type-tag rank used to order values of different types.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // ints and floats compare numerically
            Value::Text(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            // Cross numeric comparison: widen to f64 (total_cmp keeps
            // the order total).
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float must hash identically when they compare
            // equal; hash the f64 bit pattern of the numeric value,
            // normalizing integral floats through i64 where exact.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Float(1.5) < Value::Float(2.5));
        assert!(Value::Text("a".into()) < Value::Text("b".into()));
        assert!(Value::Bool(false) < Value::Bool(true));
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.9) < Value::Int(2));
    }

    #[test]
    fn nulls_sort_first() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Text(String::new()));
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
        assert_eq!(
            hash_of(&Value::Text("x".into())),
            hash_of(&Value::Text("x".into()))
        );
    }

    #[test]
    fn total_order_with_nan() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Float(1.0);
        // total_cmp: NaN (positive) sorts above all numbers.
        assert!(nan > one);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
    }

    #[test]
    fn views() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Text("hi".into()).as_text(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Text("hi".into()).as_int(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
        assert_eq!(Value::from("x"), Value::Text("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Text("a".into()).to_string(), "\"a\"");
    }
}
