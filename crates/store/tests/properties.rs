//! Property-based tests for the embedded store.

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree_store::columnar::{load_columnar, save_columnar, ColumnarTable};
use drugtree_store::expr::{CompareOp, Predicate};
use drugtree_store::schema::{Column, Schema};
use drugtree_store::snapshot::{load_catalog, save_catalog};
use drugtree_store::table::{IndexKind, RowId, Table};
use drugtree_store::value::{Value, ValueType};
use drugtree_store::Catalog;
use proptest::prelude::*;
use std::ops::Bound;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::Int),
        (-50.0f64..50.0).prop_map(Value::Float),
        "[a-e]{0,3}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        Just(Value::Null),
    ]
}

fn test_schema() -> Schema {
    Schema::new(vec![
        Column::required("k", ValueType::Int),
        Column::nullable("v", ValueType::Float),
    ])
}

/// Four-typed schema exercising every segment kind.
fn wide_schema() -> Schema {
    Schema::new(vec![
        Column::required("k", ValueType::Int),
        Column::nullable("v", ValueType::Float),
        Column::nullable("s", ValueType::Text),
        Column::nullable("b", ValueType::Bool),
    ])
}

/// One row for [`wide_schema`]. The float column mixes `Int` cells in
/// (the schema's numeric widening) so kernels must replicate the row
/// path's exact `Int`/`Float` comparison semantics.
fn arb_wide_row() -> impl Strategy<Value = Vec<Value>> {
    (
        -20i64..20,
        prop_oneof![
            Just(Value::Null),
            (-6i64..6).prop_map(Value::Int),
            (-5.0f64..5.0).prop_map(Value::Float),
        ],
        proptest::option::of("[a-c]{0,2}"),
        proptest::option::of(any::<bool>()),
    )
        .prop_map(|(k, v, s, b)| {
            vec![
                Value::Int(k),
                v,
                s.map_or(Value::Null, Value::Text),
                b.map_or(Value::Null, Value::Bool),
            ]
        })
}

fn arb_column_name() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("k".to_string()),
        Just("v".to_string()),
        Just("s".to_string()),
        Just("b".to_string()),
    ]
}

fn arb_compare_op() -> impl Strategy<Value = CompareOp> {
    prop_oneof![
        Just(CompareOp::Eq),
        Just(CompareOp::Ne),
        Just(CompareOp::Lt),
        Just(CompareOp::Le),
        Just(CompareOp::Gt),
        Just(CompareOp::Ge),
    ]
}

/// One predicate leaf — literals deliberately cross types (an Int
/// probe against the Text column, NULL literals, …) so the kernels'
/// type-rank and NULL handling get exercised, not just the happy path.
fn arb_predicate_leaf() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (arb_column_name(), arb_compare_op(), arb_value())
            .prop_map(|(column, op, value)| { Predicate::Compare { column, op, value } }),
        (arb_column_name(), arb_value(), arb_value())
            .prop_map(|(column, lo, hi)| { Predicate::Between { column, lo, hi } }),
        (
            arb_column_name(),
            proptest::collection::vec(arb_value(), 0..4)
        )
            .prop_map(|(column, values)| Predicate::InSet { column, values }),
        arb_column_name().prop_map(|column| Predicate::IsNull { column }),
        Just(Predicate::True),
    ]
}

/// Bounded-depth predicate tree over the leaves.
fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        arb_predicate_leaf(),
        proptest::collection::vec(arb_predicate_leaf(), 0..4).prop_map(Predicate::And),
        proptest::collection::vec(arb_predicate_leaf(), 0..4).prop_map(Predicate::Or),
        arb_predicate_leaf().prop_map(|p| Predicate::Not(Box::new(p))),
    ]
}

proptest! {
    #[test]
    fn value_ordering_is_total_and_consistent(
        a in arb_value(), b in arb_value(), c in arb_value()
    ) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity (spot check through sort stability).
        let mut v = [a.clone(), b.clone(), c.clone()];
        v.sort();
        prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        // Reflexivity.
        prop_assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn equal_values_hash_equal(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish(), "{:?} vs {:?}", a, b);
        }
    }

    #[test]
    fn index_agrees_with_scan(
        rows in proptest::collection::vec((-20i64..20, proptest::option::of(-5.0f64..5.0)), 0..60),
        probe in -20i64..20,
        lo in -5.0f64..5.0,
        span in 0.0f64..5.0,
    ) {
        let mut indexed = Table::new("t", test_schema());
        indexed.create_index("k", IndexKind::BTree).unwrap();
        indexed.create_index("v", IndexKind::BTree).unwrap();
        let mut plain = Table::new("t", test_schema());
        for (k, v) in &rows {
            let row = vec![Value::Int(*k), v.map_or(Value::Null, Value::Float)];
            indexed.insert(row.clone()).unwrap();
            plain.insert(row).unwrap();
        }

        // Equality.
        let key = Value::Int(probe);
        let mut a = indexed.lookup_eq("k", &key).unwrap();
        let mut b = plain.lookup_eq("k", &key).unwrap();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);

        // Range over the float column. NULLs must be excluded by both
        // paths; the B-tree never stores a NULL match for a float range
        // because Null sorts below every float we probe with.
        let lo_v = Value::Float(lo);
        let hi_v = Value::Float(lo + span);
        let mut a: Vec<RowId> = indexed
            .lookup_range("v", Bound::Included(&lo_v), Bound::Included(&hi_v))
            .unwrap()
            .collect();
        let mut b: Vec<RowId> = plain
            .lookup_range("v", Bound::Included(&lo_v), Bound::Included(&hi_v))
            .unwrap()
            .collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn predicate_push_equivalence(
        rows in proptest::collection::vec((-20i64..20, proptest::option::of(-5.0f64..5.0)), 0..50),
        threshold in -5.0f64..5.0,
    ) {
        // select(pred) must equal filtering a full scan by hand.
        let mut t = Table::new("t", test_schema());
        for (k, v) in &rows {
            t.insert(vec![Value::Int(*k), v.map_or(Value::Null, Value::Float)]).unwrap();
        }
        let pred = Predicate::cmp("v", CompareOp::Ge, threshold).bind(t.schema()).unwrap();
        let selected: Vec<RowId> = t.select(&pred).collect();
        let manual: Vec<RowId> = t
            .scan()
            .filter(|(_, r)| r[1].as_f64().is_some_and(|v| v >= threshold))
            .map(|(id, _)| id)
            .collect();
        prop_assert_eq!(selected, manual);
    }

    #[test]
    fn snapshot_roundtrip(
        rows in proptest::collection::vec((-20i64..20, proptest::option::of(-5.0f64..5.0)), 0..40)
    ) {
        let mut c = Catalog::new();
        let mut t = Table::new("t", test_schema());
        t.create_index("k", IndexKind::Hash).unwrap();
        for (k, v) in &rows {
            t.insert(vec![Value::Int(*k), v.map_or(Value::Null, Value::Float)]).unwrap();
        }
        c.create_table(t).unwrap();

        let json = save_catalog(&c).unwrap();
        let back = load_catalog(&json).unwrap();
        let t1 = c.table("t").unwrap();
        let t2 = back.table("t").unwrap();
        prop_assert_eq!(t1.len(), t2.len());
        let rows1: Vec<Vec<Value>> = t1.scan().map(|(_, r)| r.to_vec()).collect();
        let rows2: Vec<Vec<Value>> = t2.scan().map(|(_, r)| r.to_vec()).collect();
        prop_assert_eq!(rows1, rows2);
        // Double round-trip is byte-identical.
        prop_assert_eq!(save_catalog(&back).unwrap(), json);
    }

    #[test]
    fn columnar_kernels_match_row_scan(
        rows in proptest::collection::vec(arb_wide_row(), 0..60),
        pred in arb_predicate(),
        cut in 0usize..60,
    ) {
        // The same rows in a row table and a columnar table; kernel
        // evaluation must select exactly the ids the row path selects.
        let schema = wide_schema();
        let mut t = Table::new("t", schema.clone());
        let mut ct = ColumnarTable::new("t", schema.clone()).unwrap();
        for row in &rows {
            t.insert(row.clone()).unwrap();
            ct.append_row(row).unwrap();
        }
        let bound = pred.bind(&schema).unwrap();

        let via_rows: Vec<usize> = t.select(&bound).map(|id| id.0 as usize).collect();
        let via_kernels: Vec<usize> = ct.eval(&bound, 0..ct.len()).iter_ones().collect();
        prop_assert_eq!(&via_kernels, &via_rows, "pred {:?}", pred);

        // A restricted row range must agree with filtering the same
        // window of the row scan.
        let cut = cut.min(rows.len());
        let windowed: Vec<usize> = via_rows.iter().copied().filter(|&i| i < cut).collect();
        let via_range: Vec<usize> = ct.eval(&bound, 0..cut).iter_ones().collect();
        prop_assert_eq!(via_range, windowed, "pred {:?} cut {}", pred, cut);

        // And the columnar snapshot round-trip preserves evaluation.
        let json = save_columnar(&ct).unwrap();
        let back = load_columnar(&json).unwrap();
        let after: Vec<usize> = back.eval(&bound, 0..back.len()).iter_ones().collect();
        prop_assert_eq!(after, via_kernels);
        prop_assert_eq!(save_columnar(&back).unwrap(), json);
    }

    #[test]
    fn deletes_never_resurface(
        rows in proptest::collection::vec(-20i64..20, 1..40),
        delete_mask in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut t = Table::new("t", test_schema());
        t.create_index("k", IndexKind::BTree).unwrap();
        let mut ids = Vec::new();
        for k in &rows {
            ids.push(t.insert(vec![Value::Int(*k), Value::Null]).unwrap());
        }
        let mut live = rows.len();
        for (i, (&id, del)) in ids.iter().zip(&delete_mask).enumerate() {
            if *del {
                t.delete(id).unwrap();
                live -= 1;
                // Deleted row gone from index and scan.
                prop_assert!(!t.lookup_eq("k", &Value::Int(rows[i])).unwrap().contains(&id));
                prop_assert!(t.get(id).is_err());
            }
        }
        prop_assert_eq!(t.len(), live);
        prop_assert_eq!(t.scan().count(), live);
    }
}
