//! Property-based tests for the embedded store.

// Test code: panicking on a malformed fixture is the right failure.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use drugtree_store::expr::{CompareOp, Predicate};
use drugtree_store::schema::{Column, Schema};
use drugtree_store::snapshot::{load_catalog, save_catalog};
use drugtree_store::table::{IndexKind, RowId, Table};
use drugtree_store::value::{Value, ValueType};
use drugtree_store::Catalog;
use proptest::prelude::*;
use std::ops::Bound;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-50i64..50).prop_map(Value::Int),
        (-50.0f64..50.0).prop_map(Value::Float),
        "[a-e]{0,3}".prop_map(Value::Text),
        any::<bool>().prop_map(Value::Bool),
        Just(Value::Null),
    ]
}

fn test_schema() -> Schema {
    Schema::new(vec![
        Column::required("k", ValueType::Int),
        Column::nullable("v", ValueType::Float),
    ])
}

proptest! {
    #[test]
    fn value_ordering_is_total_and_consistent(
        a in arb_value(), b in arb_value(), c in arb_value()
    ) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Transitivity (spot check through sort stability).
        let mut v = [a.clone(), b.clone(), c.clone()];
        v.sort();
        prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        // Reflexivity.
        prop_assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn equal_values_hash_equal(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish(), "{:?} vs {:?}", a, b);
        }
    }

    #[test]
    fn index_agrees_with_scan(
        rows in proptest::collection::vec((-20i64..20, proptest::option::of(-5.0f64..5.0)), 0..60),
        probe in -20i64..20,
        lo in -5.0f64..5.0,
        span in 0.0f64..5.0,
    ) {
        let mut indexed = Table::new("t", test_schema());
        indexed.create_index("k", IndexKind::BTree).unwrap();
        indexed.create_index("v", IndexKind::BTree).unwrap();
        let mut plain = Table::new("t", test_schema());
        for (k, v) in &rows {
            let row = vec![Value::Int(*k), v.map_or(Value::Null, Value::Float)];
            indexed.insert(row.clone()).unwrap();
            plain.insert(row).unwrap();
        }

        // Equality.
        let key = Value::Int(probe);
        let mut a = indexed.lookup_eq("k", &key).unwrap();
        let mut b = plain.lookup_eq("k", &key).unwrap();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);

        // Range over the float column. NULLs must be excluded by both
        // paths; the B-tree never stores a NULL match for a float range
        // because Null sorts below every float we probe with.
        let lo_v = Value::Float(lo);
        let hi_v = Value::Float(lo + span);
        let mut a = indexed
            .lookup_range("v", Bound::Included(&lo_v), Bound::Included(&hi_v))
            .unwrap();
        let mut b = plain
            .lookup_range("v", Bound::Included(&lo_v), Bound::Included(&hi_v))
            .unwrap();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn predicate_push_equivalence(
        rows in proptest::collection::vec((-20i64..20, proptest::option::of(-5.0f64..5.0)), 0..50),
        threshold in -5.0f64..5.0,
    ) {
        // select(pred) must equal filtering a full scan by hand.
        let mut t = Table::new("t", test_schema());
        for (k, v) in &rows {
            t.insert(vec![Value::Int(*k), v.map_or(Value::Null, Value::Float)]).unwrap();
        }
        let pred = Predicate::cmp("v", CompareOp::Ge, threshold).bind(t.schema()).unwrap();
        let selected = t.select(&pred);
        let manual: Vec<RowId> = t
            .scan()
            .filter(|(_, r)| r[1].as_f64().is_some_and(|v| v >= threshold))
            .map(|(id, _)| id)
            .collect();
        prop_assert_eq!(selected, manual);
    }

    #[test]
    fn snapshot_roundtrip(
        rows in proptest::collection::vec((-20i64..20, proptest::option::of(-5.0f64..5.0)), 0..40)
    ) {
        let mut c = Catalog::new();
        let mut t = Table::new("t", test_schema());
        t.create_index("k", IndexKind::Hash).unwrap();
        for (k, v) in &rows {
            t.insert(vec![Value::Int(*k), v.map_or(Value::Null, Value::Float)]).unwrap();
        }
        c.create_table(t).unwrap();

        let json = save_catalog(&c).unwrap();
        let back = load_catalog(&json).unwrap();
        let t1 = c.table("t").unwrap();
        let t2 = back.table("t").unwrap();
        prop_assert_eq!(t1.len(), t2.len());
        let rows1: Vec<Vec<Value>> = t1.scan().map(|(_, r)| r.to_vec()).collect();
        let rows2: Vec<Vec<Value>> = t2.scan().map(|(_, r)| r.to_vec()).collect();
        prop_assert_eq!(rows1, rows2);
        // Double round-trip is byte-identical.
        prop_assert_eq!(save_catalog(&back).unwrap(), json);
    }

    #[test]
    fn deletes_never_resurface(
        rows in proptest::collection::vec(-20i64..20, 1..40),
        delete_mask in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut t = Table::new("t", test_schema());
        t.create_index("k", IndexKind::BTree).unwrap();
        let mut ids = Vec::new();
        for k in &rows {
            ids.push(t.insert(vec![Value::Int(*k), Value::Null]).unwrap());
        }
        let mut live = rows.len();
        for (i, (&id, del)) in ids.iter().zip(&delete_mask).enumerate() {
            if *del {
                t.delete(id).unwrap();
                live -= 1;
                // Deleted row gone from index and scan.
                prop_assert!(!t.lookup_eq("k", &Value::Int(rows[i])).unwrap().contains(&id));
                prop_assert!(t.get(id).is_err());
            }
        }
        prop_assert_eq!(t.len(), live);
        prop_assert_eq!(t.scan().count(), live);
    }
}
